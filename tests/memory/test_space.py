"""Tests for memory spaces."""

import pytest

from repro.memory.space import MemorySpace


class TestMemorySpace:
    def test_unbounded_by_default(self):
        s = MemorySpace("host")
        assert not s.is_bounded
        assert s.free_bytes() is None
        assert s.fits(10**15)

    def test_bounded_capacity(self):
        s = MemorySpace("gpu", capacity=100)
        assert s.is_bounded
        assert s.free_bytes() == 100
        assert s.fits(100)
        assert not s.fits(101)

    def test_allocate_and_release(self):
        s = MemorySpace("gpu", capacity=100)
        s.allocate(60)
        assert s.used_bytes == 60
        assert s.free_bytes() == 40
        s.release(60)
        assert s.used_bytes == 0

    def test_overallocation_raises(self):
        s = MemorySpace("gpu", capacity=100)
        s.allocate(80)
        with pytest.raises(MemoryError):
            s.allocate(21)

    def test_release_more_than_used_raises(self):
        s = MemorySpace("gpu", capacity=100)
        s.allocate(10)
        with pytest.raises(ValueError):
            s.release(11)

    def test_negative_amounts_rejected(self):
        s = MemorySpace("gpu", capacity=100)
        with pytest.raises(ValueError):
            s.allocate(-1)
        with pytest.raises(ValueError):
            s.release(-1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemorySpace("x", capacity=0)

    def test_fits_accounts_current_usage(self):
        s = MemorySpace("gpu", capacity=100)
        s.allocate(50)
        assert s.fits(50)
        assert not s.fits(51)
