"""Tests for the transfer engine and Tx accounting."""

import pytest

from repro.memory.directory import TransferRequest
from repro.memory.transfers import TransferEngine, TransferStats, TxCategory
from repro.runtime.dataregion import DataRegion
from repro.sim.engine import SimEngine
from repro.sim.topology import minotauro_node

MB = 1024**2


def setup(n_gpus=2):
    eng = SimEngine()
    machine = minotauro_node(1, n_gpus, noise_cv=0.0)
    te = TransferEngine(eng, machine)
    return eng, machine, te


def req(key, nbytes, src, dst):
    return TransferRequest(DataRegion(key, nbytes), src, dst)


class TestClassification:
    def test_input(self):
        assert TxCategory.classify("host", "gpu0") is TxCategory.INPUT

    def test_output(self):
        assert TxCategory.classify("gpu0", "host") is TxCategory.OUTPUT

    def test_device(self):
        assert TxCategory.classify("gpu0", "gpu1") is TxCategory.DEVICE

    def test_host_to_host_rejected(self):
        with pytest.raises(ValueError):
            TxCategory.classify("host", "host")


class TestTransferStats:
    def test_accumulation(self):
        s = TransferStats()
        s.record("host", "gpu0", 10)
        s.record("host", "gpu1", 20)
        s.record("gpu0", "host", 5)
        s.record("gpu0", "gpu1", 7)
        assert s.input_tx == 30
        assert s.output_tx == 5
        assert s.device_tx == 7
        assert s.total_bytes == 42
        assert s.total_count == 4

    def test_as_dict(self):
        s = TransferStats()
        s.record("host", "gpu0", 10)
        assert s.as_dict() == {"input_tx": 10, "output_tx": 0, "device_tx": 0}


class TestTransferEngine:
    def test_completion_time_is_wire_time(self):
        eng, machine, te = setup()
        end = te.issue(req("x", 6 * 10**9, "host", "gpu0"))
        assert end == pytest.approx(1.0 + 15e-6)

    def test_link_serialises_fifo(self):
        eng, machine, te = setup()
        e1 = te.issue(req("a", 6 * 10**9, "host", "gpu0"))
        e2 = te.issue(req("b", 6 * 10**9, "host", "gpu0"))
        assert e2 == pytest.approx(e1 + 1.0 + 15e-6)

    def test_different_links_parallel(self):
        eng, machine, te = setup()
        e1 = te.issue(req("a", 6 * 10**9, "host", "gpu0"))
        e2 = te.issue(req("b", 6 * 10**9, "host", "gpu1"))
        assert e1 == pytest.approx(e2)

    def test_opposite_directions_parallel(self):
        eng, machine, te = setup()
        e1 = te.issue(req("a", 6 * 10**9, "host", "gpu0"))
        e2 = te.issue(req("b", 6 * 10**9, "gpu0", "host"))
        assert e1 == pytest.approx(e2)

    def test_earliest_respected(self):
        eng, machine, te = setup()
        end = te.issue(req("x", 6 * 10**9, "host", "gpu0"), earliest=5.0)
        assert end == pytest.approx(6.0 + 15e-6)

    def test_callback_fires_at_completion(self):
        eng, machine, te = setup()
        seen = []
        te.issue(req("x", 6 * 10**9, "host", "gpu0"),
                 on_complete=lambda: seen.append(eng.now))
        eng.run()
        assert seen == [pytest.approx(1.0 + 15e-6)]

    def test_stats_recorded(self):
        eng, machine, te = setup()
        te.issue(req("x", 4 * MB, "host", "gpu0"))
        te.issue(req("y", MB, "gpu0", "gpu1"))
        assert te.stats.input_tx == 4 * MB
        assert te.stats.device_tx == MB

    def test_trace_records_transfers(self):
        from repro.sim.trace import Trace

        eng = SimEngine()
        machine = minotauro_node(1, 1, noise_cv=0.0)
        trace = Trace()
        te = TransferEngine(eng, machine, trace=trace)
        te.issue(req("x", MB, "host", "gpu0"))
        recs = trace.by_category("transfer")
        assert len(recs) == 1
        assert recs[0].worker == "link:host->gpu0"

    def test_missing_link_raises(self):
        eng, machine, te = setup(n_gpus=1)
        with pytest.raises(KeyError):
            te.issue(req("x", MB, "gpu0", "gpu7"))
