"""Tests for the coherence directory, including protocol-invariant
property tests over random operation sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.directory import Directory, TransferRequest
from repro.runtime.dataregion import DataRegion

SPACES = ["host", "gpu0", "gpu1"]


def reg(key="x", nbytes=100):
    return DataRegion(key, nbytes)


class TestRegistration:
    def test_new_region_valid_at_home_only(self):
        d = Directory()
        r = reg()
        d.register(r)
        assert d.valid_spaces(r) == {"host"}
        assert d.dirty_owner(r) is None

    def test_register_idempotent(self):
        d = Directory()
        r = reg()
        d.register(r)
        d.mark_valid(r, "gpu0")
        d.register(r)  # must not reset state
        assert d.valid_spaces(r) == {"host", "gpu0"}

    def test_queries_auto_register(self):
        d = Directory()
        assert d.is_valid(reg(), "host")


class TestReadProtocol:
    def test_read_at_valid_space_needs_nothing(self):
        d = Directory()
        assert d.reads_needed(reg(), "host") is None

    def test_read_elsewhere_needs_transfer_from_home(self):
        d = Directory()
        r = reg()
        req = d.reads_needed(r, "gpu0")
        assert req == TransferRequest(r, "host", "gpu0")

    def test_choose_source_prefers_home(self):
        d = Directory()
        r = reg()
        d.mark_valid(r, "gpu0")
        assert d.choose_source(r, "gpu1") == "host"

    def test_choose_source_peer_when_home_invalid(self):
        d = Directory()
        r = reg()
        d.note_write(r, "gpu0")
        assert d.choose_source(r, "gpu1") == "gpu0"

    def test_choose_source_rejects_already_valid(self):
        d = Directory()
        with pytest.raises(ValueError, match="already valid"):
            d.choose_source(reg(), "host")

    def test_mark_valid_adds_replica(self):
        d = Directory()
        r = reg()
        d.mark_valid(r, "gpu0")
        assert d.valid_spaces(r) == {"host", "gpu0"}


class TestWriteProtocol:
    def test_write_invalidates_others(self):
        d = Directory()
        r = reg()
        d.mark_valid(r, "gpu0")
        d.mark_valid(r, "gpu1")
        d.note_write(r, "gpu0")
        assert d.valid_spaces(r) == {"gpu0"}
        assert d.dirty_owner(r) == "gpu0"

    def test_host_write_is_clean(self):
        d = Directory()
        r = reg()
        d.mark_valid(r, "gpu0")
        d.note_write(r, "host")
        assert d.valid_spaces(r) == {"host"}
        assert d.dirty_owner(r) is None

    def test_writeback_cleans(self):
        d = Directory()
        r = reg()
        d.note_write(r, "gpu0")
        req = d.writeback_request(r)
        assert req == TransferRequest(r, "gpu0", "host")
        d.note_writeback_done(r)
        assert d.dirty_owner(r) is None
        assert d.valid_spaces(r) == {"gpu0", "host"}

    def test_writeback_of_clean_region_is_none(self):
        d = Directory()
        assert d.writeback_request(reg()) is None

    def test_writeback_done_on_clean_rejected(self):
        d = Directory()
        with pytest.raises(ValueError):
            d.note_writeback_done(reg())


class TestEviction:
    def test_drop_replica_ok(self):
        d = Directory()
        r = reg()
        d.mark_valid(r, "gpu0")
        d.drop_copy(r, "gpu0")
        assert d.valid_spaces(r) == {"host"}

    def test_drop_dirty_owner_rejected(self):
        d = Directory()
        r = reg()
        d.note_write(r, "gpu0")
        with pytest.raises(ValueError, match="dirty"):
            d.drop_copy(r, "gpu0")

    def test_drop_last_copy_rejected(self):
        d = Directory()
        r = reg()
        with pytest.raises(ValueError, match="only valid copy"):
            d.drop_copy(r, "host")

    def test_drop_nonresident_rejected(self):
        d = Directory()
        with pytest.raises(ValueError, match="no copy"):
            d.drop_copy(reg(), "gpu0")


class TestFlush:
    def test_flush_requests_cover_all_dirty(self):
        d = Directory()
        r1, r2, r3 = reg("a"), reg("b"), reg("c")
        d.note_write(r1, "gpu0")
        d.note_write(r2, "gpu1")
        d.register(r3)  # clean
        reqs = d.flush_requests()
        assert {q.region.key for q in reqs} == {"a", "b"}
        assert all(q.dst == "host" for q in reqs)

    def test_flush_requests_deterministic_order(self):
        d1, d2 = Directory(), Directory()
        for d in (d1, d2):
            for key in ("z", "a", "m"):
                d.note_write(reg(key), "gpu0")
        assert [q.region.key for q in d1.flush_requests()] == [
            q.region.key for q in d2.flush_requests()
        ]


class TestTransferRequest:
    def test_self_transfer_rejected(self):
        with pytest.raises(ValueError):
            TransferRequest(reg(), "host", "host")


class TestInvariantsUnderRandomOps:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "flush_one"]),
                st.integers(min_value=0, max_value=3),  # region id
                st.sampled_from(SPACES),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_protocol_invariants(self, ops):
        """Simulate the runtime's use of the directory: reads complete
        their transfer immediately; writes invalidate; random write-backs
        occur.  Invariants must hold after every step."""
        d = Directory()
        regions = {i: reg(("r", i)) for i in range(4)}
        for op, i, space in ops:
            r = regions[i]
            if op == "read":
                req = d.reads_needed(r, space)
                if req is not None:
                    d.mark_valid(r, space)
                assert d.is_valid(r, space)
            elif op == "write":
                d.note_write(r, space)
                assert d.valid_spaces(r) == {space}
            elif op == "flush_one":
                req = d.writeback_request(r)
                if req is not None:
                    d.note_writeback_done(r)
                    assert d.is_valid(r, "host")
            d.check_invariants()
