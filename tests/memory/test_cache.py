"""Tests for the per-space software cache (residency, pins, eviction)."""

import pytest

from repro.memory.cache import CacheManager
from repro.memory.directory import Directory
from repro.memory.transfers import TransferEngine
from repro.runtime.dataregion import DataRegion
from repro.sim.engine import SimEngine
from repro.sim.topology import MachineSpec, minotauro_node

MB = 1024**2


def setup(gpu_mem=10 * MB):
    eng = SimEngine()
    machine = minotauro_node(
        spec=MachineSpec(n_smp=1, n_gpus=2, gpu_memory_bytes=gpu_mem, noise_cv=0.0)
    )
    directory = Directory()
    te = TransferEngine(eng, machine)
    cache = CacheManager(machine, directory, te)
    return eng, directory, te, cache


def reg(key, nbytes=4 * MB):
    return DataRegion(key, nbytes)


class TestResidency:
    def test_host_space_unbounded(self):
        _, _, _, cache = setup()
        assert cache.space("host").capacity is None

    def test_gpu_space_bounded_by_device_memory(self):
        _, _, _, cache = setup(gpu_mem=10 * MB)
        assert cache.space("gpu0").capacity == 10 * MB

    def test_ensure_resident_allocates(self):
        _, _, _, cache = setup()
        r = reg("x")
        cache.ensure_resident("gpu0", r)
        assert cache.is_resident("gpu0", r)
        assert cache.resident_bytes("gpu0") == 4 * MB

    def test_ensure_resident_idempotent(self):
        _, _, _, cache = setup()
        r = reg("x")
        cache.ensure_resident("gpu0", r)
        cache.ensure_resident("gpu0", r)
        assert cache.resident_bytes("gpu0") == 4 * MB

    def test_unknown_space_rejected(self):
        _, _, _, cache = setup()
        with pytest.raises(KeyError):
            cache.ensure_resident("gpu9", reg("x"))


class TestPinning:
    def test_pin_unpin_cycle(self):
        _, _, _, cache = setup()
        r = reg("x")
        cache.ensure_resident("gpu0", r)
        cache.pin("gpu0", r)
        cache.pin("gpu0", r)
        assert cache.is_pinned("gpu0", r)
        cache.unpin("gpu0", r)
        assert cache.is_pinned("gpu0", r)
        cache.unpin("gpu0", r)
        assert not cache.is_pinned("gpu0", r)

    def test_unpin_unpinned_rejected(self):
        _, _, _, cache = setup()
        with pytest.raises(ValueError):
            cache.unpin("gpu0", reg("x"))


class TestEviction:
    def test_lru_eviction_of_clean_replica(self):
        _, directory, _, cache = setup(gpu_mem=10 * MB)
        a, b, c = reg("a"), reg("b"), reg("c")
        for r in (a, b):
            cache.ensure_resident("gpu0", r)
            directory.mark_valid(r, "gpu0")
        cache.ensure_resident("gpu0", c)  # evicts LRU = a
        assert not cache.is_resident("gpu0", a)
        assert cache.is_resident("gpu0", b)
        assert cache.is_resident("gpu0", c)
        assert cache.stats.evictions == 1
        assert not directory.is_valid(a, "gpu0")

    def test_lru_order_refreshed_by_touch(self):
        _, directory, _, cache = setup(gpu_mem=10 * MB)
        a, b, c = reg("a"), reg("b"), reg("c")
        for r in (a, b):
            cache.ensure_resident("gpu0", r)
            directory.mark_valid(r, "gpu0")
        cache.ensure_resident("gpu0", a)  # touch a -> b becomes LRU
        cache.ensure_resident("gpu0", c)
        assert cache.is_resident("gpu0", a)
        assert not cache.is_resident("gpu0", b)

    def test_dirty_eviction_writes_back(self):
        _, directory, te, cache = setup(gpu_mem=10 * MB)
        a, b, c = reg("a"), reg("b"), reg("c")
        cache.ensure_resident("gpu0", a)
        directory.note_write(a, "gpu0")  # dirty on gpu0
        cache.ensure_resident("gpu0", b)
        directory.mark_valid(b, "gpu0")
        cache.ensure_resident("gpu0", c)  # must write a back, then evict
        assert cache.stats.writebacks == 1
        assert cache.stats.writeback_bytes == 4 * MB
        assert te.stats.output_tx == 4 * MB
        assert directory.dirty_owner(a) is None
        assert directory.is_valid(a, "host")
        assert not cache.is_resident("gpu0", a)

    def test_pinned_regions_never_evicted(self):
        _, directory, _, cache = setup(gpu_mem=10 * MB)
        a, b = reg("a"), reg("b")
        cache.ensure_resident("gpu0", a)
        directory.mark_valid(a, "gpu0")
        cache.pin("gpu0", a)
        cache.ensure_resident("gpu0", b)
        directory.mark_valid(b, "gpu0")
        c = reg("c")
        cache.ensure_resident("gpu0", c)  # must evict b, not pinned a
        assert cache.is_resident("gpu0", a)
        assert not cache.is_resident("gpu0", b)

    def test_all_pinned_overflow_raises(self):
        _, directory, _, cache = setup(gpu_mem=10 * MB)
        a, b = reg("a"), reg("b")
        for r in (a, b):
            cache.ensure_resident("gpu0", r)
            cache.pin("gpu0", r)
        with pytest.raises(MemoryError, match="pinned"):
            cache.ensure_resident("gpu0", reg("c"))

    def test_oversized_region_raises(self):
        _, _, _, cache = setup(gpu_mem=10 * MB)
        with pytest.raises(MemoryError):
            cache.ensure_resident("gpu0", reg("huge", 11 * MB))


class TestInvalidation:
    def test_invalidate_frees_stale_copy(self):
        _, directory, _, cache = setup()
        r = reg("x")
        cache.ensure_resident("gpu0", r)
        directory.mark_valid(r, "gpu0")
        directory.note_write(r, "gpu1")
        cache.invalidate_stale_everywhere(r, "gpu1")
        assert not cache.is_resident("gpu0", r)
        assert cache.resident_bytes("gpu0") == 0

    def test_invalidate_skips_pinned(self):
        _, directory, _, cache = setup()
        r = reg("x")
        cache.ensure_resident("gpu0", r)
        cache.pin("gpu0", r)
        directory.note_write(r, "gpu1")
        cache.invalidate_stale_everywhere(r, "gpu1")
        assert cache.is_resident("gpu0", r)

    def test_invalidate_skips_writer_space(self):
        _, directory, _, cache = setup()
        r = reg("x")
        cache.ensure_resident("gpu1", r)
        directory.note_write(r, "gpu1")
        cache.invalidate_stale_everywhere(r, "gpu1")
        assert cache.is_resident("gpu1", r)
