"""Scripted coherence scenarios with exact transfer accounting.

Each test runs a short hand-written task sequence and asserts the
*exact* bytes in each Tx counter — pinning the protocol semantics the
paper's Figures 7/10/13 depend on.
"""

import pytest

from repro.memory.transfers import TxCategory
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import MB, make_machine, region


def make_tasks(machine):
    reg = {}

    @task(inputs=["x"], outputs=["y"], device="smp", name="smp_k", registry=reg)
    def smp_k(x, y):
        pass

    @task(inputs=["x"], outputs=["y"], device="cuda", name="gpu_k", registry=reg)
    def gpu_k(x, y):
        pass

    @task(inouts=["x"], device="smp", name="smp_mut", registry=reg)
    def smp_mut(x):
        pass

    @task(inouts=["x"], device="cuda", name="gpu_mut", registry=reg)
    def gpu_mut(x):
        pass

    for name in ("smp_k", "smp_mut"):
        if machine.devices_of_kind("smp"):
            machine.register_kernel_for_kind("smp", name, FixedCostModel(0.001))
    for name in ("gpu_k", "gpu_mut"):
        if machine.devices_of_kind("cuda"):
            machine.register_kernel_for_kind("cuda", name, FixedCostModel(0.001))
    return smp_k, gpu_k, smp_mut, gpu_mut


class TestExactAccounting:
    def test_host_only_run_transfers_nothing(self):
        m = make_machine(2, 0, noise=0.0)
        smp_k, *_ = make_tasks(m)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            smp_k(region("x", 4 * MB), region("y", MB))
        assert rt.result().transfer_stats.total_bytes == 0

    def test_gpu_round_trip(self):
        """host->gpu input, then the dirty output flushes back."""
        m = make_machine(0, 1, noise=0.0)
        _, gpu_k, _, _ = make_tasks(m)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            gpu_k(region("x", 4 * MB), region("y", 2 * MB))
        tx = rt.result().transfer_stats
        assert tx.input_tx == 4 * MB
        assert tx.output_tx == 2 * MB
        assert tx.device_tx == 0
        assert tx.count_by_category[TxCategory.INPUT] == 1

    def test_ping_pong_mutation(self):
        """gpu writes x, host mutates x, gpu mutates x again:
        each hand-over is exactly one region-sized copy."""
        m = make_machine(1, 1, noise=0.0)
        _, _, smp_mut, gpu_mut = make_tasks(m)
        x = region("x", 8 * MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            gpu_mut(x)   # in: 8 (x host->gpu), x dirty on gpu
            smp_mut(x)   # out: 8 (x gpu->host)
            gpu_mut(x)   # in: 8 again (host copy was rewritten)
        tx = rt.result().transfer_stats
        assert tx.input_tx == 16 * MB
        # one hand-over to host plus the final flush of the dirty copy
        assert tx.output_tx == 16 * MB

    def test_read_only_replication_counts_per_device(self):
        m = make_machine(0, 2, noise=0.0)
        _, gpu_k, _, _ = make_tasks(m)
        x = region("x", 4 * MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            # force one task per GPU: two independent outputs, dep
            # scheduler balances by load
            gpu_k(x, region("y0", MB))
            gpu_k(x, region("y1", MB))
        tx = rt.result().transfer_stats
        assert tx.input_tx == 8 * MB  # x copied to both devices

    def test_peer_transfer_when_host_copy_invalid(self):
        """gpu0 writes x; gpu1 reads x -> Device Tx, not via host."""
        m = make_machine(0, 2, noise=0.0)
        reg = {}

        @task(outputs=["x"], device="cuda", name="gen", registry=reg)
        def gen(x):
            pass

        @task(inputs=["x"], outputs=["y"], device="cuda", name="use", registry=reg)
        def use(x, y):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        m.register_kernel_for_kind("cuda", "use", FixedCostModel(0.001))
        x = region("x", 4 * MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            gen(x)                       # lands on gpu0 (least loaded, name order)
            # force the consumer onto the *other* gpu by loading gpu0
            use(x, region("pad", MB))    # gpu0 (chain hint)
            use(x, region("y", MB))      # gpu1 (balance)
        tx = rt.result().transfer_stats
        assert tx.device_tx == 4 * MB

    def test_noflush_suppresses_output(self):
        m = make_machine(0, 1, noise=0.0)
        _, gpu_k, _, _ = make_tasks(m)
        rt = OmpSsRuntime(m, "dep", config=RuntimeConfig(flush_on_wait=False))
        with rt:
            gpu_k(region("x", 4 * MB), region("y", 2 * MB))
        tx = rt.result().transfer_stats
        assert tx.output_tx == 0

    def test_eviction_writeback_counts_as_output(self):
        from repro.sim.topology import MachineSpec, minotauro_node

        m = minotauro_node(spec=MachineSpec(n_smp=0, n_gpus=1,
                                            gpu_memory_bytes=10 * MB, noise_cv=0.0))
        reg = {}

        @task(outputs=["y"], device="cuda", name="gen", registry=reg)
        def gen(y):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        rt = OmpSsRuntime(m, "dep", config=RuntimeConfig(prefetch_window=1))
        with rt:
            # 4 outputs x 4 MB > 10 MB device memory: dirty evictions
            for i in range(4):
                gen(region(("y", i), 4 * MB))
        res = rt.result()
        assert res.cache_stats.writebacks >= 1
        # every output eventually reaches the host exactly once
        assert res.transfer_stats.output_tx == 16 * MB


class TestLinkChannels:
    def test_two_channels_halve_queueing(self):
        from repro.memory.directory import TransferRequest
        from repro.memory.transfers import TransferEngine
        from repro.runtime.dataregion import DataRegion
        from repro.sim.devices import SMPDevice, GPUDevice
        from repro.sim.engine import SimEngine
        from repro.sim.perfmodel import PerfModel
        from repro.sim.topology import Link, Machine

        def machine_with(channels):
            return Machine(
                "m",
                [SMPDevice("s0"), GPUDevice("g0", memory_space="g0")],
                [Link("host", "g0", 1e9, 0.0, channels=channels)],
            )

        def second_end(channels):
            eng = SimEngine()
            te = TransferEngine(eng, machine_with(channels))
            te.issue(TransferRequest(DataRegion("a", 10**9), "host", "g0"))
            return te.issue(TransferRequest(DataRegion("b", 10**9), "host", "g0"))

        assert second_end(1) == pytest.approx(2.0)
        assert second_end(2) == pytest.approx(1.0)

    def test_invalid_channel_count_rejected(self):
        from repro.sim.topology import Link

        with pytest.raises(ValueError):
            Link("a", "b", 1e9, channels=0)
