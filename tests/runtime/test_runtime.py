"""End-to-end tests of the runtime core."""

import numpy as np
import pytest

from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.runtime.task import TaskState
from repro.sim.perfmodel import FixedCostModel
from repro.sim.topology import minotauro_node

from tests.conftest import MB, make_machine, make_two_version_task, region, run_tasks


def smp_task(registry, name="f", cost=0.01, machine=None):
    @task(inputs=["x"], outputs=["y"], device="smp", name=name, registry=registry)
    def f(x, y):
        pass

    if machine is not None:
        machine.register_kernel_for_kind("smp", name, FixedCostModel(cost))
    return f


class TestBasicExecution:
    def test_single_task_runs(self):
        m = make_machine(1, 0)
        f = smp_task({}, machine=m)
        res = run_tasks(m, "dep", [(f, region("x"), region("y"))])
        assert res.tasks_completed == 1
        assert res.makespan == pytest.approx(0.01)

    def test_independent_tasks_parallelise(self):
        m = make_machine(4, 0)
        f = smp_task({}, machine=m)
        calls = [(f, region(("x", i)), region(("y", i))) for i in range(4)]
        res = run_tasks(m, "dep", calls)
        assert res.makespan == pytest.approx(0.01)

    def test_dependent_tasks_serialise(self):
        m = make_machine(4, 0)
        f = smp_task({}, machine=m)
        y = region("y")
        # x -> y, then y -> z: RAW chain
        reg2 = {}

        @task(inputs=["a"], outputs=["b"], device="smp", name="g", registry=reg2)
        def g(a, b):
            pass

        m.register_kernel_for_kind("smp", "g", FixedCostModel(0.01))
        res = run_tasks(m, "dep", [(f, region("x"), y), (g, y, region("z"))])
        assert res.makespan == pytest.approx(0.02)

    def test_finish_order_respects_dependences(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        x = region("x")
        rt = OmpSsRuntime(m, "versioning")
        with rt:
            for i in range(10):
                y = region(("y", i))
                work(x, y)
        res = rt.result()
        rt.graph.verify_schedule(res.finish_order)

    def test_trace_has_no_overlap(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        calls = [(work, region(("x", i)), region(("y", i))) for i in range(20)]
        res = run_tasks(m, "versioning", calls)
        res.trace.check_no_overlap("task")

    def test_version_counts_total(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        calls = [(work, region(("x", i)), region(("y", i))) for i in range(15)]
        res = run_tasks(m, "versioning", calls)
        counts = res.version_counts["work_smp"]
        assert sum(counts.values()) == 15

    def test_real_bodies_execute(self):
        m = make_machine(2, 1, noise=0.0)
        reg = {}

        @task(inputs=["a"], inouts=["b"], device="smp", name="axpy", registry=reg)
        def axpy(a, b):
            b += a

        m.register_kernel_for_kind("smp", "axpy", FixedCostModel(0.001))
        a = np.ones(8)
        b = np.zeros(8)
        run_tasks(m, "dep", [(axpy, a, b), (axpy, a, b)])
        assert np.allclose(b, 2.0)

    def test_execute_bodies_disabled(self):
        m = make_machine(1, 0)
        reg = {}

        @task(inputs=["a"], inouts=["b"], device="smp", name="axpy", registry=reg)
        def axpy(a, b):
            b += a

        m.register_kernel_for_kind("smp", "axpy", FixedCostModel(0.001))
        a, b = np.ones(8), np.zeros(8)
        cfg = RuntimeConfig(execute_bodies=False)
        run_tasks(m, "dep", [(axpy, a, b)], config=cfg)
        assert np.allclose(b, 0.0)


class TestTaskwait:
    def test_taskwait_blocks_until_done(self):
        m = make_machine(1, 0)
        f = smp_task({}, machine=m)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            f(region("x"), region("y"))
            rt.taskwait()
            assert rt.engine.now == pytest.approx(0.01)
            f(region("x2"), region("y2"))
        assert rt.result().makespan == pytest.approx(0.02)

    def test_taskwait_flushes_dirty_data(self):
        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="cuda", name="gen", registry=reg)
        def gen(y):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        y = region("y", 6 * MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            gen(y)
            rt.taskwait()
            assert rt.directory.dirty_owner(y) is None
            assert rt.directory.is_valid(y, "host")
        res = rt.result()
        assert res.transfer_stats.output_tx == 6 * MB

    def test_taskwait_noflush_keeps_data_on_device(self):
        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="cuda", name="gen", registry=reg)
        def gen(y):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        y = region("y", 6 * MB)
        rt = OmpSsRuntime(m, "dep", config=RuntimeConfig(flush_on_wait=True))
        with rt:
            gen(y)
            rt.taskwait(noflush=True)
            assert rt.directory.dirty_owner(y) == "gpu0"
        # the final implicit wait_all still flushes
        assert rt.directory.dirty_owner(y) is None

    def test_submit_after_close_rejected(self):
        m = make_machine(1, 0)
        f = smp_task({}, machine=m)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            f(region("x"), region("y"))
        with pytest.raises(RuntimeError, match="already finished"):
            with rt:
                pass
        from repro.runtime.task import TaskInstance

        with pytest.raises(RuntimeError, match="already finished"):
            rt.submit(TaskInstance(f.definition, []))


class TestTransfersAndCoherence:
    def test_gpu_read_triggers_input_tx(self):
        m = make_machine(0, 1, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
        def k(x, y):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.001))
        res = run_tasks(m, "dep", [(k, region("x", 4 * MB), region("y", MB))])
        assert res.transfer_stats.input_tx == 4 * MB
        # y flushed back at the end
        assert res.transfer_stats.output_tx == MB

    def test_cached_input_not_retransferred(self):
        m = make_machine(0, 1, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
        def k(x, y):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.001))
        x = region("x", 4 * MB)
        calls = [(k, x, region(("y", i), MB)) for i in range(5)]
        res = run_tasks(m, "dep", calls)
        assert res.transfer_stats.input_tx == 4 * MB  # x moved once

    def test_two_gpus_both_receive_copy(self):
        """Paper: 'If a piece of data is transferred to two different
        devices, both transfers are taken into account.'"""
        m = make_machine(0, 2, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
        def k(x, y):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.050))
        x = region("x", 4 * MB)
        calls = [(k, x, region(("y", i), MB)) for i in range(2)]
        res = run_tasks(m, "dep", calls)
        assert res.transfer_stats.input_tx == 8 * MB

    def test_smp_read_of_gpu_output_is_output_tx(self):
        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="cuda", name="gen", registry=reg)
        def gen(y):
            pass

        @task(inputs=["y"], outputs=["z"], device="smp", name="use", registry=reg)
        def use(y, z):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        m.register_kernel_for_kind("smp", "use", FixedCostModel(0.001))
        y = region("y", 2 * MB)
        res = run_tasks(m, "dep", [(gen, y), (use, y, region("z", 0))])
        assert res.transfer_stats.output_tx >= 2 * MB

    def test_write_invalidates_remote_copies(self):
        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
        def k(x, y):
            pass

        @task(inouts=["x"], device="smp", name="mut", registry=reg)
        def mut(x):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.001))
        m.register_kernel_for_kind("smp", "mut", FixedCostModel(0.001))
        x = region("x", MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            k(x, region("y", MB))   # x copied to gpu0
            mut(x)                  # host write must invalidate gpu0 copy
            rt.taskwait()
            assert rt.directory.valid_spaces(x) == {"host"}

    def test_directory_invariants_hold_after_run(self):
        m = make_machine(2, 2, noise=0.0)
        work, _ = make_two_version_task(machine=m)
        calls = [(work, region(("x", i), MB), region(("y", i), MB)) for i in range(30)]
        rt = OmpSsRuntime(m, "versioning")
        with rt:
            for fn, *args in calls:
                fn(*args)
        rt.directory.check_invariants()


class TestOverlapAndPrefetch:
    def _one_gpu_chain(self, config):
        m = make_machine(0, 1, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
        def k(x, y):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.010))
        calls = [(k, region(("x", i), 60 * MB), region(("y", i), MB)) for i in range(6)]
        return run_tasks(m, "dep", calls, config=config)

    def test_prefetch_overlaps_transfers(self):
        overlapped = self._one_gpu_chain(RuntimeConfig(prefetch=True))
        serial = self._one_gpu_chain(
            RuntimeConfig(overlap_transfers=False, prefetch=False)
        )
        assert overlapped.makespan < serial.makespan

    def test_no_overlap_serialises_transfer_then_compute(self):
        res = self._one_gpu_chain(RuntimeConfig(overlap_transfers=False, prefetch=False))
        xfer_in = 60 * MB / 6.0e9 + 15e-6
        flush = 6 * (MB / 6.0e9 + 15e-6)  # the six dirty y tiles go home
        assert res.makespan == pytest.approx(6 * (xfer_in + 0.010) + flush, rel=1e-6)

    def test_prefetch_window_bounds_pinning(self):
        """A queue far deeper than GPU memory must still execute."""
        m = make_machine(0, 1, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
        def k(x, y):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.001))
        # 20 tasks x 1 GB input > 6 GB device memory
        gb = 1024**3
        calls = [(k, region(("x", i), gb), region(("y", i), MB)) for i in range(20)]
        res = run_tasks(m, "dep", calls, config=RuntimeConfig(prefetch_window=2))
        assert res.tasks_completed == 20
        assert res.cache_stats.evictions > 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(prefetch_window=0)


class TestDispatchValidation:
    def test_version_of_other_task_rejected(self):
        m = make_machine(1, 0)
        reg = {}
        f = smp_task(reg, name="f", machine=m)
        g = smp_task(reg, name="g", machine=m)
        rt = OmpSsRuntime(m, "dep")
        from repro.runtime.task import TaskInstance

        t = TaskInstance(f.definition, [])
        t.state = TaskState.READY
        with pytest.raises(ValueError, match="does not belong"):
            rt.dispatch(t, rt.workers[0], g.definition.main_version)

    def test_wrong_device_rejected(self):
        m = make_machine(1, 1)
        reg = {}

        @task(device="cuda", name="k", registry=reg)
        def k():
            pass

        rt = OmpSsRuntime(m, "dep")
        from repro.runtime.task import TaskInstance

        t = TaskInstance(k.definition, [])
        t.state = TaskState.READY
        smp_worker = next(w for w in rt.workers if w.space == "host")
        with pytest.raises(ValueError, match="cannot run on worker"):
            rt.dispatch(t, smp_worker, k.definition.main_version)

    def test_unrunnable_main_version_raises(self):
        m = make_machine(1, 0)  # no GPUs
        reg = {}

        @task(device="cuda", name="k", registry=reg)
        def k():
            pass

        rt = OmpSsRuntime(m, "dep")
        with pytest.raises(RuntimeError, match="no worker"):
            with rt:
                k()


class TestDeterminism:
    def test_same_seed_identical_results(self):
        def one_run():
            m = minotauro_node(2, 2, noise_cv=0.05, seed=9)
            work, _ = make_two_version_task(machine=m)
            calls = [(work, region(("x", i), MB), region(("y", i), MB))
                     for i in range(40)]
            return run_tasks(m, "versioning", calls)

        a, b = one_run(), one_run()
        assert a.makespan == b.makespan
        assert a.version_counts == b.version_counts
        assert a.transfer_stats.as_dict() == b.transfer_stats.as_dict()
        assert a.trace == b.trace

    def test_different_seeds_differ(self):
        def one_run(seed):
            m = minotauro_node(2, 2, noise_cv=0.05, seed=seed)
            work, _ = make_two_version_task(machine=m)
            calls = [(work, region(("x", i), MB), region(("y", i), MB))
                     for i in range(40)]
            return run_tasks(m, "versioning", calls)

        assert one_run(1).makespan != one_run(2).makespan


class TestResultObject:
    def test_gflops(self):
        m = make_machine(1, 0)
        f = smp_task({}, machine=m)
        res = run_tasks(m, "dep", [(f, region("x"), region("y"))])
        assert res.gflops(1e9) == pytest.approx(1.0 / res.makespan / 1.0)

    def test_version_fractions_sum_to_one(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        calls = [(work, region(("x", i)), region(("y", i))) for i in range(12)]
        res = run_tasks(m, "versioning", calls)
        fr = res.version_fractions("work_smp")
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_version_fractions_empty_for_unknown_task(self):
        m = make_machine(1, 0)
        f = smp_task({}, machine=m)
        res = run_tasks(m, "dep", [(f, region("x"), region("y"))])
        assert res.version_fractions("ghost") == {}

    def test_worker_stats_present(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        res = run_tasks(m, "versioning",
                        [(work, region("x"), region("y"))])
        assert set(res.worker_stats) == {"w:smp0", "w:smp1", "w:gpu0"}
