"""Tests for versions targeting more than one device kind.

§IV-A: "the same implementation can be targeted to more than one device
(provided that all devices specified in the device clause are able to
run the code)".
"""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.devices import DeviceKind
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import make_machine, region, run_tasks


def make_portable_task(machine, smp_cost=0.004, gpu_cost=0.001):
    """One version, runnable on both SMP and CUDA devices."""
    reg = {}

    @task(inputs=["x"], outputs=["y"], device=["smp", "cuda"], name="portable",
          registry=reg)
    def portable(x, y):
        pass

    if machine.devices_of_kind("smp"):
        machine.register_kernel_for_kind("smp", "portable", FixedCostModel(smp_cost))
    if machine.devices_of_kind("cuda"):
        machine.register_kernel_for_kind("cuda", "portable", FixedCostModel(gpu_cost))
    return portable


class TestDeclaration:
    def test_version_lists_both_kinds(self, registry):
        @task(device=["smp", "cuda"], name="p", registry=registry)
        def p():
            pass

        assert set(p.version.device_kinds) == {DeviceKind.SMP, DeviceKind.CUDA}
        assert p.version.runs_on("smp") and p.version.runs_on("cuda")


class TestExecution:
    def test_runs_on_all_worker_kinds_under_versioning(self):
        m = make_machine(2, 1, noise=0.0)
        portable = make_portable_task(m)
        calls = [(portable, region(("x", i)), region(("y", i))) for i in range(60)]
        res = run_tasks(m, "versioning", calls)
        workers = {r.worker for r in res.trace.by_category("task")}
        assert any(w.startswith("w:smp") for w in workers)
        assert any(w.startswith("w:gpu") for w in workers)
        # one version, all executions
        assert res.version_counts["portable"] == {"portable": 60}

    def test_works_under_dep_scheduler_on_either_machine(self):
        for smp, gpus in ((2, 0), (0, 1)):
            m = make_machine(smp, gpus, noise=0.0)
            portable = make_portable_task(m)
            res = run_tasks(m, "dep",
                            [(portable, region("x"), region("y"))])
            assert res.tasks_completed == 1

    def test_same_version_different_cost_per_device(self):
        """The scheduler profiles per *version*, so a portable version's
        mean blends devices — placement still prefers the faster worker
        through the queue estimates."""
        m = make_machine(1, 1, noise=0.0)
        portable = make_portable_task(m, smp_cost=0.020, gpu_cost=0.001)
        calls = [(portable, region(("x", i)), region(("y", i))) for i in range(80)]
        res = run_tasks(m, "versioning", calls)
        from collections import Counter

        per = Counter(r.worker for r in res.trace.by_category("task"))
        assert per["w:gpu0"] > per.get("w:smp0", 0)

    def test_portable_plus_specialised_version(self):
        """A portable main version plus a faster GPU-only implements."""
        m = make_machine(2, 1, noise=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device=["smp", "cuda"],
              name="generic", registry=reg)
        def generic(x, y):
            pass

        @task(inputs=["x"], outputs=["y"], device="cuda", implements="generic",
              name="tuned", registry=reg)
        def tuned(x, y):
            pass

        m.register_kernel_for_kind("smp", "generic", FixedCostModel(0.010))
        m.register_kernel_for_kind("cuda", "generic", FixedCostModel(0.005))
        m.register_kernel_for_kind("cuda", "tuned", FixedCostModel(0.001))
        calls = [(generic, region(("x", i)), region(("y", i))) for i in range(60)]
        res = run_tasks(m, "versioning", calls)
        counts = res.version_counts["generic"]
        assert counts["tuned"] > counts.get("generic", 0)
