"""Tests for the OmpSs priority clause."""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
from repro.runtime.worker import Worker
from repro.sim.devices import DeviceKind, SMPDevice
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import make_machine, region, run_tasks


def make_task(priority=0):
    d = TaskDefinition("t")
    d.add_version(TaskVersion("v", "t", (DeviceKind.SMP,), "v", is_main=True))
    return TaskInstance(d, [], priority=priority)


class TestWorkerQueueOrdering:
    def test_priority_jumps_queue(self):
        w = Worker(SMPDevice("smp0"))
        low1, low2 = make_task(0), make_task(0)
        high = make_task(5)
        w.enqueue(low1)
        w.enqueue(low2)
        w.enqueue(high)
        assert w.pop() is high

    def test_equal_priorities_stay_fifo(self):
        w = Worker(SMPDevice("smp0"))
        a, b, c = make_task(1), make_task(1), make_task(1)
        for t in (a, b, c):
            w.enqueue(t)
        assert [w.pop(), w.pop(), w.pop()] == [a, b, c]

    def test_ordering_among_mixed_priorities(self):
        w = Worker(SMPDevice("smp0"))
        p0, p2, p1, p2b = make_task(0), make_task(2), make_task(1), make_task(2)
        for t in (p0, p2, p1, p2b):
            w.enqueue(t)
        assert [w.pop() for _ in range(4)] == [p2, p2b, p1, p0]


class TestClause:
    def test_static_priority(self, registry):
        @task(priority=3, name="p", registry=registry)
        def p():
            pass

        assert p.priority_of() == 3

    def test_callable_priority(self, registry):
        @task(priority=lambda k: 10 - k, name="p", registry=registry)
        def p(k):
            pass

        assert p.priority_of(4) == 6

    def test_default_zero(self, registry):
        @task(name="p", registry=registry)
        def p():
            pass

        assert p.priority_of() == 0


class TestEndToEnd:
    def test_priority_task_runs_earlier(self):
        """A high-priority task submitted last still starts before the
        queued low-priority backlog."""
        m = make_machine(1, 0, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="smp", name="lo", registry=reg)
        def lo(y):
            pass

        @task(outputs=["y"], device="smp", priority=1, name="hi", registry=reg)
        def hi(y):
            pass

        m.register_kernel_for_kind("smp", "lo", FixedCostModel(0.010))
        m.register_kernel_for_kind("smp", "hi", FixedCostModel(0.010))
        rt = OmpSsRuntime(m, "dep")
        with rt:
            for i in range(5):
                lo(region(("y", i)))
            hi(region("important"))
        res = rt.result()
        recs = sorted(res.trace.by_category("task"), key=lambda r: r.start)
        # the running task (index 0) cannot be preempted; the priority
        # task is next
        assert recs[1].label == "hi"

    def test_versioning_pool_respects_priority(self):
        """Under the versioning scheduler, pool-held tasks with higher
        priority are placed first."""
        from tests.conftest import make_two_version_task

        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="smp", name="lo", registry=reg)
        def lo(y):
            pass

        @task(outputs=["y"], device="smp", priority=2, name="hi", registry=reg)
        def hi(y):
            pass

        m.register_kernel_for_kind("smp", "lo", FixedCostModel(0.005))
        m.register_kernel_for_kind("smp", "hi", FixedCostModel(0.005))
        rt = OmpSsRuntime(m, "versioning")
        with rt:
            for i in range(20):
                lo(region(("y", i)))
            hi(region("important"))
        res = rt.result()
        hi_rec = next(r for r in res.trace.by_category("task") if r.label == "hi")
        lo_recs = [r for r in res.trace.by_category("task") if r.label == "lo"]
        # the priority task beats most of the earlier-submitted backlog
        assert sum(1 for r in lo_recs if r.start < hi_rec.start) <= 4

    def test_priority_head_with_pending_transfers_pulls_wake_forward(self):
        """A priority task that jumps to the head of an idle worker whose
        wake was scheduled for the old head's (larger) transfer must not
        inherit the old wake time."""
        from repro.sim.devices import GPUDevice
        from repro.sim.perfmodel import PerfModel
        from repro.sim.topology import Link, Machine

        # two DMA channels so the small transfer is not stuck behind the
        # big one on the wire
        m = Machine(
            "m",
            [GPUDevice("gpu0", PerfModel())],
            [Link("host", "gpu0", 6e9, 0.0, channels=2),
             Link("gpu0", "host", 6e9, 0.0, channels=2)],
        )
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="cuda", name="big", registry=reg)
        def big(x, y):
            pass

        @task(inputs=["x"], outputs=["y"], device="cuda", priority=1, name="small",
              registry=reg)
        def small(x, y):
            pass

        m.register_kernel_for_kind("cuda", "big", FixedCostModel(0.001))
        m.register_kernel_for_kind("cuda", "small", FixedCostModel(0.001))
        rt = OmpSsRuntime(m, "dep")
        mb = 1024**2
        with rt:
            big(region("bx", 600 * mb), region("by", 1))    # ~100 ms transfer
            small(region("sx", 6 * mb), region("sy", 1))    # ~1 ms transfer
        res = rt.result()
        recs = sorted(res.trace.by_category("task"), key=lambda r: r.start)
        assert recs[0].label == "small"
        # the priority task started as soon as its own (small) transfer
        # landed, not after the big task's
        assert recs[0].start < 0.01

    def test_cholesky_potrf_priority_does_not_hurt(self):
        from repro.apps.cholesky import CholeskyApp
        from repro.sim.topology import minotauro_node

        def run(prio):
            app = CholeskyApp(n_blocks=10, variant="gpu", potrf_priority=prio)
            return app.run(minotauro_node(1, 2, noise_cv=0.0, seed=1), "dep").gflops

        assert run(1) >= run(0) * 0.999