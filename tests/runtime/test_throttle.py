"""Tests for the task-creation throttle (Nanos++ throttle policy)."""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import make_machine, make_two_version_task, region


def make_simple(machine, cost=0.002):
    reg = {}

    @task(outputs=["y"], device="smp", name="w", registry=reg)
    def w(y):
        pass

    machine.register_kernel_for_kind("smp", "w", FixedCostModel(cost))
    return w


class TestThrottle:
    def test_in_flight_never_exceeds_limit(self):
        m = make_machine(2, 0, noise=0.0)
        w = make_simple(m)
        rt = OmpSsRuntime(m, "dep", config=RuntimeConfig(max_in_flight_tasks=3))
        max_seen = 0
        with rt:
            for i in range(20):
                w(region(("y", i)))
                max_seen = max(max_seen, rt.graph.unfinished)
        assert max_seen <= 3
        assert rt.result().tasks_completed == 20

    def test_submission_advances_the_clock(self):
        m = make_machine(1, 0, noise=0.0)
        w = make_simple(m, cost=0.010)
        rt = OmpSsRuntime(m, "dep", config=RuntimeConfig(max_in_flight_tasks=1))
        with rt:
            w(region("a"))
            assert rt.engine.now == 0.0
            w(region("b"))  # must wait for a to retire
            assert rt.engine.now == pytest.approx(0.010)

    def test_unthrottled_submits_instantly(self):
        m = make_machine(1, 0, noise=0.0)
        w = make_simple(m)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            for i in range(10):
                w(region(("y", i)))
            assert rt.engine.now == 0.0
        rt.result()

    def test_same_makespan_when_throttle_not_binding(self):
        def run(config):
            m = make_machine(2, 1, noise=0.0)
            work, _ = make_two_version_task(machine=m)
            rt = OmpSsRuntime(m, "versioning", config=config)
            with rt:
                for i in range(30):
                    work(region(("x", i)), region(("y", i)))
            return rt.result().makespan

        assert run(RuntimeConfig(max_in_flight_tasks=1000)) == pytest.approx(
            run(RuntimeConfig())
        )

    def test_throttled_versioning_completes(self):
        m = make_machine(2, 1, noise=0.0)
        work, _ = make_two_version_task(machine=m)
        rt = OmpSsRuntime(m, "versioning",
                          config=RuntimeConfig(max_in_flight_tasks=4))
        with rt:
            for i in range(40):
                work(region(("x", i)), region(("y", i)))
        res = rt.result()
        assert res.tasks_completed == 40
        rt.graph.verify_schedule(res.finish_order)

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(max_in_flight_tasks=0)

    def test_throttle_bounds_lookahead_effect(self):
        """A tight throttle limits how far transfers can run ahead: the
        in-flight bound caps queued work, observable as a (weakly)
        longer or equal makespan on a transfer-heavy workload."""
        from repro.runtime.directives import task as mktask

        def run(limit):
            m = make_machine(0, 1, noise=0.0)
            reg = {}

            @mktask(inputs=["x"], outputs=["y"], device="cuda", name="k",
                    registry=reg)
            def k(x, y):
                pass

            m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.010))
            cfg = RuntimeConfig(max_in_flight_tasks=limit)
            rt = OmpSsRuntime(m, "dep", config=cfg)
            with rt:
                for i in range(8):
                    k(region(("x", i), 60 * 1024**2), region(("y", i), 1024))
            return rt.result().makespan

        assert run(1) >= run(100) - 1e-12
