"""Tests for dataflow dependence analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.dataregion import AccessKind, DataAccess, DataRegion
from repro.runtime.dependences import DependenceGraph, DepKind
from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
from repro.sim.devices import DeviceKind


def make_def(name="t"):
    d = TaskDefinition(name)
    d.add_version(
        TaskVersion(name + "_v", name, (DeviceKind.SMP,), name + "_v", is_main=True)
    )
    return d


DEF = make_def()


def inst(*accesses):
    return TaskInstance(DEF, list(accesses))


def rd(region):
    return DataAccess(region, AccessKind.INPUT)


def wr(region):
    return DataAccess(region, AccessKind.OUTPUT)


def rw(region):
    return DataAccess(region, AccessKind.INOUT)


class TestBasicDependences:
    def test_independent_tasks_all_ready(self):
        g = DependenceGraph()
        a, b = DataRegion("a", 1), DataRegion("b", 1)
        assert g.add_task(inst(wr(a)))
        assert g.add_task(inst(wr(b)))

    def test_raw(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t1 = inst(wr(x))
        t2 = inst(rd(x))
        assert g.add_task(t1)
        assert not g.add_task(t2)
        assert t2.predecessors == {t1.uid}
        assert g.edge_counts()[DepKind.RAW] == 1

    def test_waw(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t1, t2 = inst(wr(x)), inst(wr(x))
        g.add_task(t1)
        assert not g.add_task(t2)
        assert g.edge_counts()[DepKind.WAW] == 1

    def test_war(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t1 = inst(wr(x))
        t2 = inst(rd(x))
        t3 = inst(wr(x))
        g.add_task(t1)
        g.add_task(t2)
        assert not g.add_task(t3)
        # t3 depends on reader t2 (WAR) and writer t1 (WAW)
        assert t3.predecessors == {t1.uid, t2.uid}

    def test_readers_do_not_conflict(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        g.add_task(inst(wr(x)))
        r1, r2 = inst(rd(x)), inst(rd(x))
        g.add_task(r1)
        g.add_task(r2)
        assert r1.predecessors and r2.predecessors
        assert r1.uid not in r2.predecessors  # readers independent

    def test_inout_chains(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        tasks = [inst(rw(x)) for _ in range(4)]
        ready = [g.add_task(t) for t in tasks]
        assert ready == [True, False, False, False]
        for earlier, later in zip(tasks, tasks[1:]):
            assert earlier.uid in later.predecessors

    def test_inout_does_not_self_depend(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t = inst(rw(x))
        assert g.add_task(t)
        assert t.uid not in t.predecessors

    def test_read_before_any_write_is_free(self):
        g = DependenceGraph()
        assert g.add_task(inst(rd(DataRegion("x", 1))))

    def test_duplicate_submit_rejected(self):
        g = DependenceGraph()
        t = inst(wr(DataRegion("x", 1)))
        g.add_task(t)
        with pytest.raises(ValueError, match="twice"):
            g.add_task(t)


class TestRetirement:
    def test_release_chain(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t1, t2, t3 = inst(rw(x)), inst(rw(x)), inst(rw(x))
        for t in (t1, t2, t3):
            g.add_task(t)
        assert g.task_finished(t1) == [t2]
        assert g.task_finished(t2) == [t3]
        assert g.task_finished(t3) == []
        assert g.unfinished == 0

    def test_diamond_releases_only_when_both_done(self):
        g = DependenceGraph()
        a, b = DataRegion("a", 1), DataRegion("b", 1)
        src = inst(wr(a), wr(b))
        left = inst(rd(a), wr(DataRegion("l", 1)))
        right = inst(rd(b), wr(DataRegion("r", 1)))
        sink = inst(rd(DataRegion("l", 1)), rd(DataRegion("r", 1)))
        for t in (src, left, right, sink):
            g.add_task(t)
        assert set(g.task_finished(src)) == {left, right}
        assert g.task_finished(left) == []
        assert g.task_finished(right) == [sink]

    def test_finish_unknown_task_rejected(self):
        g = DependenceGraph()
        t = inst(wr(DataRegion("x", 1)))
        with pytest.raises(ValueError):
            g.task_finished(t)

    def test_double_finish_rejected(self):
        g = DependenceGraph()
        t = inst(wr(DataRegion("x", 1)))
        g.add_task(t)
        g.task_finished(t)
        with pytest.raises(ValueError):
            g.task_finished(t)


class TestVerifySchedule:
    def test_valid_order_passes(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t1, t2 = inst(wr(x)), inst(rd(x))
        g.add_task(t1)
        g.add_task(t2)
        g.verify_schedule([t1.uid, t2.uid])

    def test_invalid_order_fails(self):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        t1, t2 = inst(wr(x)), inst(rd(x))
        g.add_task(t1)
        g.add_task(t2)
        with pytest.raises(AssertionError, match="dependence violated"):
            g.verify_schedule([t2.uid, t1.uid])


class TestAliasing:
    def test_overlapping_distinct_regions_rejected(self):
        g = DependenceGraph(check_aliasing=True)
        a = DataRegion("a", 10, base=100, length=10)
        b = DataRegion("b", 10, base=105, length=10)
        g.add_task(inst(wr(a)))
        with pytest.raises(ValueError, match="overlaps"):
            g.add_task(inst(wr(b)))

    def test_adjacent_regions_ok(self):
        g = DependenceGraph(check_aliasing=True)
        a = DataRegion("a", 10, base=100, length=10)
        b = DataRegion("b", 10, base=110, length=10)
        g.add_task(inst(wr(a)))
        g.add_task(inst(wr(b)))

    def test_same_region_reuse_ok(self):
        g = DependenceGraph(check_aliasing=True)
        a = DataRegion("a", 10, base=100, length=10)
        g.add_task(inst(wr(a)))
        g.add_task(inst(rd(a)))

    def test_disabled_by_default(self):
        g = DependenceGraph()
        a = DataRegion("a", 10, base=100, length=10)
        b = DataRegion("b", 10, base=105, length=10)
        g.add_task(inst(wr(a)))
        g.add_task(inst(wr(b)))  # no error


class TestProperties:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=5),
                          st.sampled_from(list(AccessKind))),
                min_size=1,
                max_size=3,
                unique_by=lambda x: x[0],
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_program_order_retirement_respects_all_edges(self, program):
        """Retiring tasks in program order must always be a valid schedule,
        and every task must eventually be released exactly once."""
        g = DependenceGraph()
        regions = {i: DataRegion(i, 1) for i in range(6)}
        tasks = []
        for spec in program:
            t = inst(*[DataAccess(regions[i], kind) for i, kind in spec])
            g.add_task(t)
            tasks.append(t)
        released = [t for t in tasks if not t.predecessors]
        finished: list[int] = []
        for t in tasks:  # program order is a topological order
            assert not t.predecessors, "task not released by its predecessors"
            newly = g.task_finished(t)
            finished.append(t.uid)
            released.extend(newly)
        g.verify_schedule(finished)
        assert sorted(x.uid for x in released) == sorted(t.uid for t in tasks)
        assert g.unfinished == 0

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_chain_edge_count(self, n):
        g = DependenceGraph()
        x = DataRegion("x", 1)
        for _ in range(n):
            g.add_task(inst(rw(x)))
        assert len(g.edges) == n - 1
