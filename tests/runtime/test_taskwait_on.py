"""Tests for the extended taskwait: on(...) and noflush (§III)."""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import MB, make_machine, region


def setup_two_producers():
    m = make_machine(2, 1, noise=0.0)
    reg = {}

    @task(outputs=["y"], device="smp", name="fast", registry=reg)
    def fast(y):
        pass

    @task(outputs=["y"], device="smp", name="slow", registry=reg)
    def slow(y):
        pass

    m.register_kernel_for_kind("smp", "fast", FixedCostModel(0.001))
    m.register_kernel_for_kind("smp", "slow", FixedCostModel(0.100))
    return m, fast, slow


class TestTaskwaitOn:
    def test_waits_only_for_named_data(self):
        m, fast, slow = setup_two_producers()
        a, b = region("a"), region("b")
        rt = OmpSsRuntime(m, "dep")
        with rt:
            slow(b)
            fast(a)
            rt.taskwait_on(a)
            # only the fast producer had to finish
            assert rt.engine.now == pytest.approx(0.001)
            assert rt.graph.pending_writer(a) is None
            assert rt.graph.pending_writer(b) is not None
        assert rt.result().makespan == pytest.approx(0.100)

    def test_returns_immediately_if_data_already_produced(self):
        m, fast, _ = setup_two_producers()
        a = region("a")
        rt = OmpSsRuntime(m, "dep")
        with rt:
            fast(a)
            rt.taskwait()
            t = rt.engine.now
            rt.taskwait_on(a)
            assert rt.engine.now == t

    def test_unwritten_region_needs_no_wait(self):
        m, fast, _ = setup_two_producers()
        rt = OmpSsRuntime(m, "dep")
        with rt:
            rt.taskwait_on(region("never-written"))
            assert rt.engine.now == 0.0

    def test_flushes_only_named_regions(self):
        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="cuda", name="gen", registry=reg)
        def gen(y):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        a, b = region("a", MB), region("b", MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            gen(b)  # first in the single GPU's FIFO queue
            gen(a)
            rt.taskwait_on(a)  # waiting on a implies b already finished
            assert rt.directory.dirty_owner(a) is None       # flushed
            assert rt.directory.dirty_owner(b) == "gpu0"     # untouched
        assert rt.directory.dirty_owner(b) is None           # final flush

    def test_noflush_leaves_data_on_device(self):
        m = make_machine(1, 1, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="cuda", name="gen", registry=reg)
        def gen(y):
            pass

        m.register_kernel_for_kind("cuda", "gen", FixedCostModel(0.001))
        a = region("a", MB)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            gen(a)
            rt.taskwait_on(a, noflush=True)
            assert rt.graph.pending_writer(a) is None
            assert rt.directory.dirty_owner(a) == "gpu0"

    def test_chain_of_writers_waits_for_last(self):
        m, fast, slow = setup_two_producers()
        reg = {}

        @task(inouts=["y"], device="smp", name="step", registry=reg)
        def step(y):
            pass

        m.register_kernel_for_kind("smp", "step", FixedCostModel(0.010))
        a = region("a")
        rt = OmpSsRuntime(m, "dep")
        with rt:
            fast(a)
            step(a)
            step(a)
            rt.taskwait_on(a)
            assert rt.engine.now == pytest.approx(0.021)
