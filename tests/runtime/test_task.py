"""Tests for task definitions, versions and instances."""

import pytest

from repro.runtime.dataregion import AccessKind, DataAccess, DataRegion
from repro.runtime.task import TaskDefinition, TaskInstance, TaskState, TaskVersion
from repro.sim.devices import DeviceKind


def ver(name, task_name, kinds=("smp",), is_main=False):
    return TaskVersion(
        name=name,
        task_name=task_name,
        device_kinds=tuple(DeviceKind.parse(k) for k in kinds),
        kernel=name,
        is_main=is_main,
    )


class TestTaskVersion:
    def test_runs_on(self):
        v = ver("v", "t", ("smp", "cuda"))
        assert v.runs_on("smp") and v.runs_on("cuda") and not v.runs_on("spe")

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            TaskVersion("v", "t", (), "v")


class TestTaskDefinition:
    def test_first_version_is_main(self):
        d = TaskDefinition("t")
        d.add_version(ver("main", "t", is_main=True))
        assert d.main_version.name == "main"

    def test_implementation_added_after_main(self):
        d = TaskDefinition("t")
        d.add_version(ver("main", "t", is_main=True))
        d.add_version(ver("alt", "t"))
        assert [v.name for v in d.versions] == ["main", "alt"]

    def test_implementation_before_main_rejected(self):
        d = TaskDefinition("t")
        with pytest.raises(ValueError, match="before the main version"):
            d.add_version(ver("alt", "t"))

    def test_two_mains_rejected(self):
        d = TaskDefinition("t")
        d.add_version(ver("m1", "t", is_main=True))
        with pytest.raises(ValueError, match="already has a main"):
            d.add_version(ver("m2", "t", is_main=True))

    def test_duplicate_version_name_rejected(self):
        d = TaskDefinition("t")
        d.add_version(ver("v", "t", is_main=True))
        with pytest.raises(ValueError, match="duplicate version"):
            d.add_version(ver("v", "t"))

    def test_wrong_task_name_rejected(self):
        d = TaskDefinition("t")
        with pytest.raises(ValueError, match="implements"):
            d.add_version(ver("v", "other", is_main=True))

    def test_versions_for_kind(self):
        d = TaskDefinition("t")
        d.add_version(ver("m", "t", ("cuda",), is_main=True))
        d.add_version(ver("s", "t", ("smp",)))
        d.add_version(ver("b", "t", ("smp", "cuda")))
        assert [v.name for v in d.versions_for_kind("smp")] == ["s", "b"]
        assert [v.name for v in d.versions_for_kind("cuda")] == ["m", "b"]

    def test_device_kinds_union(self):
        d = TaskDefinition("t")
        d.add_version(ver("m", "t", ("cuda",), is_main=True))
        d.add_version(ver("s", "t", ("smp",)))
        assert d.device_kinds() == {DeviceKind.CUDA, DeviceKind.SMP}

    def test_main_of_empty_raises(self):
        with pytest.raises(RuntimeError):
            TaskDefinition("t").main_version

    def test_version_lookup(self):
        d = TaskDefinition("t")
        d.add_version(ver("m", "t", is_main=True))
        assert d.version("m").name == "m"
        with pytest.raises(KeyError):
            d.version("missing")


class TestTaskInstance:
    def make(self, name="t"):
        d = TaskDefinition(name)
        d.add_version(ver("m", name, is_main=True))
        r1, r2 = DataRegion("a", 10), DataRegion("b", 20)
        t = TaskInstance(
            d,
            [DataAccess(r1, AccessKind.INPUT), DataAccess(r2, AccessKind.INOUT)],
        )
        return d, t

    def test_initial_state(self):
        _, t = self.make()
        assert t.state is TaskState.CREATED
        assert t.chosen_version is None

    def test_data_bytes_counts_unique(self):
        _, t = self.make()
        assert t.data_bytes == 30

    def test_reads_and_writes(self):
        _, t = self.make()
        assert [r.key for r in t.reads()] == ["a", "b"]
        assert [r.key for r in t.writes()] == ["b"]

    def test_regions_deduplicated(self):
        d = TaskDefinition("t")
        d.add_version(ver("m", "t", is_main=True))
        r = DataRegion("x", 5)
        t = TaskInstance(
            d, [DataAccess(r, AccessKind.INPUT), DataAccess(r, AccessKind.INOUT)]
        )
        assert len(t.regions()) == 1

    def test_uids_monotonic(self):
        _, t1 = self.make()
        _, t2 = self.make()
        assert t2.uid > t1.uid

    def test_execute_body_without_version_raises(self):
        _, t = self.make()
        with pytest.raises(RuntimeError, match="no version chosen"):
            t.execute_body()

    def test_execute_body_runs_fn(self):
        d = TaskDefinition("t")
        called = []
        v = TaskVersion("m", "t", (DeviceKind.SMP,), "m",
                        fn=lambda *a: called.append(a), is_main=True)
        d.add_version(v)
        t = TaskInstance(d, [], args=(1, 2))
        t.chosen_version = v
        t.execute_body()
        assert called == [(1, 2)]

    def test_label_default(self):
        _, t = self.make("mytask")
        assert t.label.startswith("mytask#")
