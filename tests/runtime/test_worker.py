"""Tests for the worker abstraction."""

import pytest

from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
from repro.runtime.worker import Worker
from repro.sim.devices import DeviceKind, GPUDevice, SMPDevice


def make_task():
    d = TaskDefinition("t")
    d.add_version(TaskVersion("v", "t", (DeviceKind.SMP,), "v", is_main=True))
    return TaskInstance(d, [])


class TestWorker:
    def test_name_and_space(self):
        w = Worker(SMPDevice("smp0"))
        assert w.name == "w:smp0"
        assert w.space == "host"
        wg = Worker(GPUDevice("gpu1"))
        assert wg.space == "gpu1"

    def test_queue_fifo(self):
        w = Worker(SMPDevice("smp0"))
        t1, t2 = make_task(), make_task()
        w.enqueue(t1)
        w.enqueue(t2)
        assert w.peek() is t1
        assert w.pop() is t1
        assert w.pop() is t2
        assert w.peek() is None

    def test_load_counts_running_task(self):
        w = Worker(SMPDevice("smp0"))
        assert w.load() == 0
        w.enqueue(make_task())
        assert w.load() == 1
        w.current = w.pop()
        assert w.load() == 1
        w.enqueue(make_task())
        assert w.load() == 2

    def test_is_idle(self):
        w = Worker(SMPDevice("smp0"))
        assert w.is_idle
        w.current = make_task()
        assert not w.is_idle

    def test_queued_tasks_snapshot(self):
        w = Worker(SMPDevice("smp0"))
        t = make_task()
        w.enqueue(t)
        snap = w.queued_tasks()
        assert snap == [t]
        snap.clear()
        assert w.peek() is t  # snapshot is a copy

    def test_stats(self):
        w = Worker(SMPDevice("smp0"))
        w.busy_time = 3.0
        w.tasks_run = 7
        s = w.stats(total_time=4.0)
        assert s.tasks_run == 7
        assert s.busy_time == 3.0
        assert s.idle_time == pytest.approx(1.0)
        assert s.utilisation == pytest.approx(0.75)

    def test_stats_idle_clamped(self):
        w = Worker(SMPDevice("smp0"))
        w.busy_time = 5.0
        assert w.stats(total_time=4.0).idle_time == 0.0
