"""Tests for the @task / @target decorator front end."""

import numpy as np
import pytest

from repro.runtime.dataregion import AccessKind, DataRegion
from repro.runtime.directives import (
    TaskFunction,
    clear_task_registry,
    registered_tasks,
    target,
    task,
)
from repro.sim.devices import DeviceKind


class TestTaskDecorator:
    def test_plain_task_is_smp_main(self, registry):
        @task(inputs=["a"], registry=registry)
        def f(a):
            pass

        assert isinstance(f, TaskFunction)
        assert f.version.is_main
        assert f.version.device_kinds == (DeviceKind.SMP,)
        assert f.definition.name == "f"

    def test_device_clause_inline(self, registry):
        @task(device="cuda", registry=registry)
        def f():
            pass

        assert f.version.device_kinds == (DeviceKind.CUDA,)

    def test_multi_device_clause(self, registry):
        @task(device=["smp", "cuda"], registry=registry)
        def f():
            pass

        assert set(f.version.device_kinds) == {DeviceKind.SMP, DeviceKind.CUDA}

    def test_duplicate_device_rejected(self, registry):
        with pytest.raises(ValueError, match="duplicate device"):
            @task(device=["smp", "smp"], registry=registry)
            def f():
                pass

    def test_sequential_semantics_without_runtime(self, registry):
        @task(inputs=["a"], inouts=["b"], registry=registry)
        def f(a, b):
            b += a

        a, b = np.ones(4), np.zeros(4)
        f(a, b)
        assert np.allclose(b, 1.0)

    def test_name_override(self, registry):
        @task(name="renamed", registry=registry)
        def f():
            pass

        assert f.__name__ == "renamed"
        assert "renamed" in registry


class TestImplements:
    def test_implements_by_reference(self, registry):
        @task(registry=registry)
        def main_impl():
            pass

        @task(implements=main_impl, device="cuda", registry=registry)
        def alt():
            pass

        assert not alt.version.is_main
        assert alt.definition is main_impl.definition
        assert [v.name for v in main_impl.definition.versions] == ["main_impl", "alt"]

    def test_implements_by_name(self, registry):
        @task(registry=registry)
        def main_impl():
            pass

        @task(implements="main_impl", registry=registry)
        def alt():
            pass

        assert alt.definition is main_impl.definition

    def test_implements_unknown_name_rejected(self, registry):
        with pytest.raises(ValueError, match="no task named"):
            @task(implements="ghost", registry=registry)
            def alt():
                pass

    def test_implements_of_implementation_rejected(self, registry):
        """Paper §IV-A: implements must reference the main version."""

        @task(registry=registry)
        def main_impl():
            pass

        @task(implements=main_impl, registry=registry)
        def alt():
            pass

        with pytest.raises(ValueError, match="must name the main version"):
            @task(implements=alt, registry=registry)
            def alt2():
                pass

    def test_implements_wrong_type_rejected(self, registry):
        with pytest.raises(TypeError):
            @task(implements=42, registry=registry)
            def alt():
                pass


class TestTargetDecorator:
    def test_target_overrides_device(self, registry):
        @target(device="cuda")
        @task(registry=registry)
        def f():
            pass

        assert f.version.device_kinds == (DeviceKind.CUDA,)

    def test_target_implements(self, registry):
        @task(registry=registry)
        def main_impl():
            pass

        @target(device="cuda", implements=main_impl)
        @task(registry=registry)
        def alt():
            pass

        assert alt.definition is main_impl.definition
        assert not alt.version.is_main
        # the inner @task's transient main registration must be gone
        assert "alt" not in registry

    def test_target_over_plain_function_rejected(self, registry):
        with pytest.raises(TypeError, match="@task"):
            @target(device="cuda")
            def f():
                pass

    def test_copy_deps_recorded(self, registry):
        @target(device="smp", copy_deps=False)
        @task(registry=registry)
        def f():
            pass

        assert f.version.copy_deps is False


class TestClauses:
    def test_accesses_from_names(self, registry):
        @task(inputs=["a"], outputs=["b"], inouts=["c"], registry=registry)
        def f(a, b, c):
            pass

        ra, rb, rc = DataRegion("a", 1), DataRegion("b", 2), DataRegion("c", 3)
        accs = f.build_accesses(ra, rb, rc)
        assert [(x.region.key, x.kind) for x in accs] == [
            ("a", AccessKind.INPUT),
            ("b", AccessKind.OUTPUT),
            ("c", AccessKind.INOUT),
        ]

    def test_accesses_from_callable(self, registry):
        @task(inputs=lambda xs, y: list(xs), outputs=lambda xs, y: [y],
              registry=registry)
        def f(xs, y):
            pass

        r1, r2, ry = DataRegion("1", 1), DataRegion("2", 1), DataRegion("y", 1)
        accs = f.build_accesses((r1, r2), ry)
        assert len(accs) == 3

    def test_unknown_parameter_in_clause_rejected(self, registry):
        @task(inputs=["nope"], registry=registry)
        def f(a):
            pass

        with pytest.raises(TypeError, match="not an argument"):
            f.build_accesses(DataRegion("a", 1))

    def test_conflicting_clauses_rejected(self, registry):
        @task(inputs=["a"], outputs=["a"], registry=registry)
        def f(a):
            pass

        with pytest.raises(ValueError, match="use inout"):
            f.build_accesses(DataRegion("a", 1))

    def test_same_region_same_clause_ok(self, registry):
        @task(inputs=lambda a: [a, a], registry=registry)
        def f(a):
            pass

        accs = f.build_accesses(DataRegion("a", 1))
        assert len(accs) == 2

    def test_work_params(self, registry):
        @task(work=lambda a, n: {"n": n}, registry=registry)
        def f(a, n=8):
            pass

        assert f.work_params(DataRegion("a", 1)) == {"n": 8}
        assert f.work_params(DataRegion("a", 1), 16) == {"n": 16}

    def test_no_work_gives_empty(self, registry):
        @task(registry=registry)
        def f(a):
            pass

        assert f.work_params(1) == {}

    def test_kwargs_binding(self, registry):
        @task(inputs=["a"], registry=registry)
        def f(a, scale=1.0):
            pass

        accs = f.build_accesses(a=DataRegion("a", 7))
        assert accs[0].region.nbytes == 7


class TestGlobalRegistry:
    def test_global_registration_and_clear(self):
        clear_task_registry()

        @task
        def globally_registered():
            pass

        assert "globally_registered" in registered_tasks()
        clear_task_registry()
        assert registered_tasks() == {}

    def test_repr(self, registry):
        @task(device="cuda", registry=registry)
        def f():
            pass

        assert "cuda" in repr(f)
