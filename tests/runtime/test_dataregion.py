"""Tests for data regions, accesses and data-set-size accounting."""

import numpy as np
import pytest

from repro.runtime.dataregion import (
    AccessKind,
    DataAccess,
    DataRegion,
    region_of,
    unique_data_bytes,
)


class TestAccessKind:
    def test_reads_writes_flags(self):
        assert AccessKind.INPUT.reads and not AccessKind.INPUT.writes
        assert AccessKind.OUTPUT.writes and not AccessKind.OUTPUT.reads
        assert AccessKind.INOUT.reads and AccessKind.INOUT.writes


class TestDataRegion:
    def test_equality_by_key(self):
        a = DataRegion("x", 100)
        b = DataRegion("x", 100)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_keys_differ(self):
        assert DataRegion("x", 100) != DataRegion("y", 100)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataRegion("x", -1)

    def test_label_defaults_to_key(self):
        assert DataRegion("x", 1).label == "x"

    def test_same_key_overlaps(self):
        assert DataRegion("x", 10).overlaps(DataRegion("x", 10))

    def test_no_interval_info_no_overlap(self):
        assert not DataRegion("x", 10).overlaps(DataRegion("y", 10))

    def test_interval_overlap(self):
        a = DataRegion("a", 10, base=100, length=10)
        b = DataRegion("b", 10, base=105, length=10)
        c = DataRegion("c", 10, base=110, length=10)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching, not overlapping


class TestRegionOf:
    def test_region_passthrough(self):
        r = DataRegion("x", 10)
        assert region_of(r) is r

    def test_ndarray_keyed_by_address(self):
        arr = np.zeros(16)
        r1 = region_of(arr)
        r2 = region_of(arr)
        assert r1 == r2
        assert r1.nbytes == arr.nbytes
        assert r1.data is arr

    def test_distinct_arrays_distinct_regions(self):
        assert region_of(np.zeros(4)) is not None
        a, b = np.zeros(4), np.zeros(4)
        assert region_of(a) != region_of(b)

    def test_view_at_offset_is_distinct_region(self):
        arr = np.zeros(16)
        assert region_of(arr) != region_of(arr[8:])

    def test_scalar_rejected(self):
        with pytest.raises(TypeError, match="DataRegion or numpy.ndarray"):
            region_of(42)

    def test_list_rejected(self):
        with pytest.raises(TypeError):
            region_of([1, 2, 3])


class TestUniqueDataBytes:
    def test_each_region_counted_once(self):
        """Paper footnote 2: a parameter's size counts once even if inout."""
        r = DataRegion("x", 100)
        accs = [DataAccess(r, AccessKind.INPUT), DataAccess(r, AccessKind.INOUT)]
        assert unique_data_bytes(accs) == 100

    def test_distinct_regions_summed(self):
        accs = [
            DataAccess(DataRegion("a", 10), AccessKind.INPUT),
            DataAccess(DataRegion("b", 20), AccessKind.OUTPUT),
            DataAccess(DataRegion("c", 30), AccessKind.INOUT),
        ]
        assert unique_data_bytes(accs) == 60

    def test_empty(self):
        assert unique_data_bytes([]) == 0


class TestDataAccess:
    def test_flags_delegate_to_kind(self):
        acc = DataAccess(DataRegion("x", 1), AccessKind.INOUT)
        assert acc.reads and acc.writes
