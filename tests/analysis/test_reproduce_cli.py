"""Tests for the figure-reproduction CLI."""

import pytest

from repro.reproduce import FIGURES, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig5", "fig6", "fig15"):
            assert name in out

    def test_all_figure_ids_have_handlers(self):
        expected = {"table1", "fig5", "cluster", "chaos"} | {
            f"fig{i}" for i in range(6, 16)
        }
        assert set(FIGURES) == expected

    def test_quick_cluster_renders_both_schedulers(self, capsys):
        assert main(["cluster", "--quick", "--nodes", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out and "global" in out
        assert "cross msgs" in out

    def test_cluster_rejects_bad_nodes(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--nodes", "zero"])

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown figure" in capsys.readouterr().err

    def test_quick_table1(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "TaskVersionSet" in out

    def test_quick_fig12_renders_expected_columns(self, capsys):
        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "pbpi-smp" in out and "pbpi-hyb" in out

    @pytest.mark.parametrize("fig", ["fig7", "fig10", "fig13"])
    def test_quick_transfer_figures(self, capsys, fig):
        assert main([fig, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Input Tx" in out

    @pytest.mark.parametrize("fig", ["fig8", "fig11", "fig14", "fig15"])
    def test_quick_stat_figures(self, capsys, fig):
        assert main([fig, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "%" in out

    def test_quick_perf_figures(self, capsys):
        assert main(["fig5", "fig6", "fig9", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out and "Figure 9" in out
