"""Tests for trace export and post-mortem statistics."""

import numpy as np
import pytest

from repro.analysis.traceexport import (
    critical_worker,
    overlap_fraction,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
    utilisation_timeline,
)
from repro.sim.trace import Trace


def make_trace():
    tr = Trace()
    tr.add(0.0, 1.0, "w0", "task", "a")
    tr.add(1.0, 3.0, "w0", "task", "b")
    tr.add(0.5, 1.5, "w1", "task", "c")
    tr.add(0.2, 0.8, "link:host->gpu0", "transfer", "x")
    tr.add(2.5, 4.0, "link:host->gpu0", "transfer", "y")
    return tr


class TestRoundtrips:
    def test_csv_roundtrip(self, tmp_path):
        p = tmp_path / "trace.csv"
        trace_to_csv(make_trace(), p)
        loaded = trace_from_csv(p)
        assert loaded == make_trace()

    def test_csv_bad_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="not a trace CSV"):
            trace_from_csv(p)

    def test_json_roundtrip(self, tmp_path):
        p = tmp_path / "trace.json"
        trace_to_json(make_trace(), p)
        assert trace_from_json(p) == make_trace()

    def test_csv_preserves_float_precision(self, tmp_path):
        tr = Trace()
        tr.add(0.1234567890123456, 0.9876543210987654, "w", "task", "t")
        p = tmp_path / "t.csv"
        trace_to_csv(tr, p)
        rec = list(trace_from_csv(p))[0]
        assert rec.start == 0.1234567890123456


class TestUtilisationTimeline:
    def test_fully_busy_worker(self):
        tr = Trace()
        tr.add(0.0, 10.0, "w0", "task", "t")
        tl = utilisation_timeline(tr, bins=10)
        assert np.allclose(tl["w0"], 1.0)

    def test_half_busy(self):
        tr = Trace()
        tr.add(0.0, 5.0, "w0", "task", "t")
        tr.add(5.0, 10.0, "w1", "task", "t")
        tl = utilisation_timeline(tr, bins=2)
        assert np.allclose(tl["w0"], [1.0, 0.0])
        assert np.allclose(tl["w1"], [0.0, 1.0])

    def test_empty_trace(self):
        assert utilisation_timeline(Trace(), bins=4) == {}

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            utilisation_timeline(make_trace(), bins=0)


class TestOverlapFraction:
    def test_fully_hidden_transfer(self):
        tr = Trace()
        tr.add(0.0, 10.0, "w0", "task", "t")
        tr.add(2.0, 4.0, "link", "transfer", "x")
        assert overlap_fraction(tr) == pytest.approx(1.0)

    def test_fully_exposed_transfer(self):
        tr = Trace()
        tr.add(0.0, 1.0, "w0", "task", "t")
        tr.add(5.0, 6.0, "link", "transfer", "x")
        assert overlap_fraction(tr) == pytest.approx(0.0)

    def test_partial(self):
        tr = Trace()
        tr.add(0.0, 1.0, "w0", "task", "t")
        tr.add(0.5, 1.5, "link", "transfer", "x")
        assert overlap_fraction(tr) == pytest.approx(0.5)

    def test_no_transfers_is_one(self):
        tr = Trace()
        tr.add(0.0, 1.0, "w0", "task", "t")
        assert overlap_fraction(tr) == 1.0

    def test_prefetch_run_overlaps_more_than_serial(self):
        """End-to-end: the §V-A2 overlap configuration must show up in
        this metric."""
        from repro.apps.matmul import MatmulApp
        from repro.runtime.runtime import RuntimeConfig
        from repro.sim.topology import minotauro_node

        def frac(config):
            app = MatmulApp(n_tiles=4, variant="gpu")
            res = app.run(minotauro_node(1, 1, noise_cv=0.0), "dep", config=config)
            return overlap_fraction(res.run.trace)

        serial = frac(RuntimeConfig(overlap_transfers=False, prefetch=False))
        overlapped = frac(RuntimeConfig(prefetch=True))
        assert overlapped > serial


class TestCriticalWorker:
    def test_busiest_worker_wins(self):
        assert critical_worker(make_trace()) == "w0"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            critical_worker(Trace())
