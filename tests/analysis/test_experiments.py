"""Tests for the per-figure experiment drivers (small scales)."""

import pytest

from repro.analysis import experiments


class TestMatmulDrivers:
    def test_fig6_rows_structure(self):
        rows = experiments.fig6_matmul_performance(
            smp_counts=(2,), gpu_counts=(1,), n_tiles=4
        )
        assert len(rows) == 1
        row = rows[0]
        assert {"smp", "gpus", "mm-gpu-aff", "mm-gpu-dep", "mm-hyb-ver"} <= set(row)
        assert all(row[k] > 0 for k in ("mm-gpu-aff", "mm-gpu-dep", "mm-hyb-ver"))

    def test_fig7_transfer_rows(self):
        rows = experiments.fig7_matmul_transfers(
            smp_counts=(2,), gpu_counts=(1,), n_tiles=4
        )
        assert {r["config"] for r in rows} == {"GA", "GD", "HV"}
        for r in rows:
            assert r["total"] >= r["input_tx"]

    def test_fig8_shares_sum_to_100(self):
        rows = experiments.fig8_matmul_task_stats(
            smp_counts=(2,), gpu_counts=(1,), n_tiles=4
        )
        r = rows[0]
        assert r["CUBLAS"] + r["CUDA"] + r["SMP"] == pytest.approx(100.0)


class TestCholeskyDrivers:
    def test_fig9_rows(self):
        rows = experiments.fig9_cholesky_performance(
            smp_counts=(2,), gpu_counts=(2,), n_blocks=6
        )
        row = rows[0]
        for k in ("potrf-smp-dep", "potrf-gpu-aff", "potrf-gpu-dep",
                  "potrf-hyb-ver"):
            assert row[k] > 0

    def test_fig11_shares(self):
        rows = experiments.fig11_cholesky_task_stats(
            smp_counts=(2,), gpu_counts=(2,), n_blocks=6
        )
        r = rows[0]
        assert r["GPU"] + r["SMP"] == pytest.approx(100.0)


class TestPBPIDrivers:
    def test_fig12_rows(self):
        rows = experiments.fig12_pbpi_time(
            smp_counts=(4,), gpu_counts=(2,), generations=5
        )
        row = rows[0]
        for k in ("pbpi-smp", "pbpi-gpu", "pbpi-hyb"):
            assert row[k] > 0

    def test_fig13_smp_config_has_zero_transfers(self):
        rows = experiments.fig13_pbpi_transfers(
            smp_counts=(4,), gpu_counts=(2,), generations=5
        )
        smp_row = next(r for r in rows if r["config"] == "SMP-dep")
        assert smp_row["total"] == 0.0

    def test_fig14_fig15_shares(self):
        for fn in (experiments.fig14_pbpi_loop1_stats,
                   experiments.fig15_pbpi_loop2_stats):
            rows = fn(smp_counts=(4,), gpu_counts=(2,), generations=5)
            assert rows[0]["GPU"] + rows[0]["SMP"] == pytest.approx(100.0)


class TestTable1AndFig5:
    def test_table1_structure(self):
        table, rendered = experiments.table1_taskversionset()
        assert "TaskVersionSet" in rendered
        # one task set with two data-set-size groups, three versions each
        vset = table.version_set("matmul_tile_cublas")
        assert len(vset) == 2
        for grp in vset.groups():
            names = {p.version_name for p in grp.versions() if p.executions > 0}
            assert "matmul_tile_cublas" in names

    def test_fig5_idle_smp_workers_used(self):
        row = experiments.fig5_earliest_executor_decision()
        assert row["smp_runs"] > 0
        assert row["gpu_runs"] > row["smp_runs"]
