"""Tests for derived metrics."""

import pytest

from repro.analysis.metrics import (
    tasks_per_device_kind,
    transfer_breakdown_gb,
    version_percentages,
    worker_utilisation,
)

from tests.conftest import MB, make_machine, make_two_version_task, region, run_tasks


def sample_result():
    m = make_machine(2, 1)
    work, _ = make_two_version_task(machine=m)
    calls = [(work, region(("x", i), MB), region(("y", i), MB)) for i in range(20)]
    return run_tasks(m, "versioning", calls)


class TestVersionPercentages:
    def test_sums_to_hundred(self):
        res = sample_result()
        pct = version_percentages(res, "work_smp")
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_legend_merging(self):
        res = sample_result()
        legend = {"work_smp": "HOST", "work_gpu": "HOST"}
        pct = version_percentages(res, "work_smp", legend)
        assert pct == {"HOST": pytest.approx(100.0)}

    def test_unknown_task_empty(self):
        assert version_percentages(sample_result(), "ghost") == {}


class TestTransferBreakdown:
    def test_keys_and_consistency(self):
        res = sample_result()
        gb = transfer_breakdown_gb(res)
        assert set(gb) == {"input_tx", "output_tx", "device_tx", "total"}
        assert gb["total"] == pytest.approx(
            gb["input_tx"] + gb["output_tx"] + gb["device_tx"]
        )


class TestWorkerMetrics:
    def test_utilisation_bounded(self):
        res = sample_result()
        for u in worker_utilisation(res).values():
            assert 0.0 <= u <= 1.0 + 1e-9

    def test_tasks_per_device_kind(self):
        res = sample_result()
        per = tasks_per_device_kind(res)
        assert set(per) <= {"smp", "gpu"}
        assert sum(per.values()) == 20
