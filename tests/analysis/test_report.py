"""Tests for plain-text rendering."""

import pytest

from repro.analysis.report import bar_chart, format_table, stacked_percentages


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "value"], [["a", 1.25], ["bb", 10.0]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.2" in out and "10.0" in out

    def test_floatfmt(self):
        out = format_table(["v"], [[1.23456]], floatfmt="{:.3f}")
        assert "1.235" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_unit_suffix(self):
        assert "3.00s" in bar_chart({"x": 3.0}, unit="s")

    def test_explicit_max(self):
        out = bar_chart({"a": 5.0}, width=10, max_value=10.0)
        assert out.splitlines()[0].count("█") == 5


class TestStackedPercentages:
    def test_full_width_bar(self):
        out = stacked_percentages({"row": {"A": 60.0, "B": 40.0}}, width=10)
        bar_line = out.splitlines()[-1]
        assert bar_line.count("█") == 6
        assert bar_line.count("▓") == 4

    def test_legend_present(self):
        out = stacked_percentages({"r": {"GPU": 100.0}})
        assert "█=GPU" in out

    def test_category_order_respected(self):
        out = stacked_percentages({"r": {"B": 50.0, "A": 50.0}},
                                  order=("A", "B"))
        assert out.splitlines()[0].index("A") < out.splitlines()[0].index("B")
