"""The ``python -m repro.store`` maintenance CLI."""

import json

import pytest

from repro.core.hints import save_hints
from repro.core.profile import VersionProfileTable
from repro.store import read_payload
from repro.store.__main__ import main

MB = 1024**2


def make_table(mean=0.030, execs=200):
    t = VersionProfileTable()
    g = t.group("task1", 2 * MB)
    g.profile("v1").estimator.preload(mean, execs)
    g.profile("v2").estimator.preload(0.018, 350)
    return t


def seeded_path(tmp_path, name="seed.json", **kwargs):
    path = tmp_path / name
    save_hints(make_table(**kwargs), path)
    out = tmp_path / f"store-{name}"
    assert main(["migrate", str(path), "-o", str(out)]) == 0
    return out


class TestCreateInspect:
    def test_create_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "new.json"
        assert main(["create", str(path), "--fingerprint", "fp:ci"]) == 0
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fp:ci" in out
        assert "entries=0" in out

    def test_inspect_json_dump_is_valid(self, tmp_path, capsys):
        path = seeded_path(tmp_path)
        capsys.readouterr()  # drop the migrate chatter
        assert main(["inspect", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-profile-store"

    def test_inspect_legacy_hints_directly(self, tmp_path, capsys):
        path = tmp_path / "hints.xml"
        save_hints(make_table(), path)
        assert main(["inspect", str(path)]) == 0
        assert "task1" in capsys.readouterr().out


class TestMergeDiffPrune:
    def test_merge_combines_entries(self, tmp_path, capsys):
        a = seeded_path(tmp_path, "a.json", mean=0.030)
        b = seeded_path(tmp_path, "b.json", mean=0.060)
        out = tmp_path / "merged.json"
        assert main(["merge", str(a), str(b), "-o", str(out)]) == 0
        merged = read_payload(out)
        entry = merged["tasks"]["task1"][0]["versions"]["v1"]
        assert entry["mean_time"] == pytest.approx(0.045)

    def test_diff_identical_exit_zero(self, tmp_path):
        a = seeded_path(tmp_path, "a.json")
        assert main(["diff", str(a), str(a)]) == 0

    def test_diff_different_exit_one(self, tmp_path, capsys):
        a = seeded_path(tmp_path, "a.json", mean=0.030)
        b = seeded_path(tmp_path, "b.json", mean=0.060)
        assert main(["diff", str(a), str(b)]) == 1
        assert "mean" in capsys.readouterr().out

    def test_prune_removes_stale_entries(self, tmp_path, capsys):
        path = seeded_path(tmp_path)
        payload = read_payload(path)
        payload["tasks"]["task1"][0]["versions"]["v1"]["stale_runs"] = 9
        from repro.store import write_payload

        write_payload(path, payload)
        assert main(["prune", str(path), "--max-stale", "4"]) == 0
        assert "pruned 1 entry" in capsys.readouterr().out
        assert "v1" not in read_payload(path)["tasks"]["task1"][0]["versions"]


class TestErrors:
    def test_corrupt_store_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "repro-profile-store", "schema')
        assert main(["inspect", str(bad)]) == 2
        assert "truncated or malformed" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fingerprint_mismatch_merge_exit_two(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["create", str(a), "--fingerprint", "fp:one"]) == 0
        assert main(["create", str(b), "--fingerprint", "fp:two"]) == 0
        out = tmp_path / "m.json"
        assert main(["merge", str(a), str(b), "-o", str(out)]) == 2
        assert "different device calibrations" in capsys.readouterr().err
        # and the override works
        assert main(
            ["merge", str(a), str(b), "-o", str(out), "--ignore-fingerprints"]
        ) == 0
