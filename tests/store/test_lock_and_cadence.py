"""Store concurrency (advisory locking, concurrent-writer merging),
variance persistence through the store, and the adaptive checkpoint
cadence."""

import os
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.core.profile import VersionProfileTable
from repro.core.versioning import VersioningScheduler
from repro.runtime.runtime import OmpSsRuntime
from repro.store import (
    Checkpointer,
    ProfileStore,
    StoreCorruptError,
    StoreLockTimeoutError,
    merge_payloads,
    validate_payload,
)
from tests.conftest import make_machine, make_two_version_task, region
from tests.store.test_merge import payload_with

MB = 1024**2


def make_table(task_name="t", samples=(0.010, 0.020, 0.030), rep=MB):
    t = VersionProfileTable()
    g = t.group(task_name, rep)
    for x in samples:
        g.record("v", x)
    return t


# ----------------------------------------------------------------------
# Variance through the store
# ----------------------------------------------------------------------
class TestVarianceThroughStore:
    def test_variance_survives_store_round_trip(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        store.absorb(make_table())
        entry = store.load()["tasks"]["t"][0]["versions"]["v"]
        assert entry["variance"] == pytest.approx(1e-4)

        hints = store.hints(decay=1.0)
        t2 = VersionProfileTable()
        t2.preload(hints)
        p = t2.group("t", MB).profile("v")
        assert p.executions == 3
        assert p.stddev == pytest.approx(0.01)

    def test_entries_without_variance_stay_without(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        t = VersionProfileTable()
        t.group("t", MB).record("v", 0.01)  # one sample: no variance
        store.absorb(t)
        entry = store.load()["tasks"]["t"][0]["versions"]["v"]
        assert "variance" not in entry

    def test_validate_rejects_negative_variance(self):
        p = payload_with({("t", 100, "v"): (1.0, 5, 0)})
        p["tasks"]["t"][0]["versions"]["v"]["variance"] = -0.5
        with pytest.raises(StoreCorruptError, match="variance"):
            validate_payload(p)

    def test_validate_rejects_nan_variance(self):
        p = payload_with({("t", 100, "v"): (1.0, 5, 0)})
        p["tasks"]["t"][0]["versions"]["v"]["variance"] = float("nan")
        with pytest.raises(StoreCorruptError, match="variance"):
            validate_payload(p)

    def test_merge_pools_variance_by_law_of_total_variance(self):
        a = payload_with({("t", 100, "v"): (1.0, 10, 0)})
        b = payload_with({("t", 100, "v"): (3.0, 10, 0)})
        a["tasks"]["t"][0]["versions"]["v"]["variance"] = 0.04
        b["tasks"]["t"][0]["versions"]["v"]["variance"] = 0.08
        m = merge_payloads([a, b])
        entry = m["tasks"]["t"][0]["versions"]["v"]
        # within: (0.04 + 0.08)/2; between: means 1 and 3 about 2 -> 1.0
        assert entry["mean_time"] == pytest.approx(2.0)
        assert entry["variance"] == pytest.approx(0.06 + 1.0)

    def test_merge_without_any_variance_emits_none(self):
        a = payload_with({("t", 100, "v"): (1.0, 10, 0)})
        b = payload_with({("t", 100, "v"): (1.0, 10, 0)})
        m = merge_payloads([a, b])
        assert "variance" not in m["tasks"]["t"][0]["versions"]["v"]


# ----------------------------------------------------------------------
# Advisory locking
# ----------------------------------------------------------------------
class TestAdvisoryLock:
    def test_timeout_when_lock_is_held(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        store = ProfileStore(tmp_path / "s.json", lock_timeout=0.1)
        store.lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(store.lock_path, os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            with pytest.raises(StoreLockTimeoutError, match="could not lock"):
                store.absorb(make_table())
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def test_write_waits_for_a_live_contender_to_release(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        store = ProfileStore(tmp_path / "s.json", lock_timeout=10.0)
        store.lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(store.lock_path, os.O_CREAT | os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX)

        def release_later():
            time.sleep(0.2)
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

        t = threading.Thread(target=release_later)
        t.start()
        try:
            store.absorb(make_table())  # polls until the holder releases
        finally:
            t.join()
        assert store.load()["tasks"]["t"]

    def test_negative_lock_timeout_rejected(self, tmp_path):
        with pytest.raises(Exception, match="lock_timeout"):
            ProfileStore(tmp_path / "s.json", lock_timeout=-1.0)

    def test_concurrent_writer_is_merged_not_clobbered(self, tmp_path):
        # two ProfileStore instances on one path, interleaved the way two
        # processes would be: both open their run against the same (empty)
        # baseline, then write one after the other
        path = tmp_path / "s.json"
        first, second = ProfileStore(path), ProfileStore(path)
        second.begin_run()                  # reads the empty baseline
        first.absorb(make_table("alpha"))   # ...then someone else commits
        second.absorb(make_table("beta"))
        payload = second.load()
        assert set(payload["tasks"]) == {"alpha", "beta"}
        validate_payload(payload)

    def test_two_process_contention(self, tmp_path):
        """Two real processes absorbing into one store concurrently:
        both succeed and neither side's entries are lost."""
        path = tmp_path / "shared.json"
        script = textwrap.dedent("""
            import sys
            from repro.core.profile import VersionProfileTable
            from repro.store import ProfileStore

            path, task_name = sys.argv[1], sys.argv[2]
            t = VersionProfileTable()
            for _ in range(5):
                t.group(task_name, 1024).record("v", 0.01)
            ProfileStore(path).absorb(t)
        """)
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(root, "src"), root,
                        env.get("PYTHONPATH", "")) if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(path), name],
                env=env, stderr=subprocess.PIPE,
            )
            for name in ("alpha", "beta")
        ]
        for p in procs:
            _, err = p.communicate(timeout=60)
            assert p.returncode == 0, err.decode()
        payload = ProfileStore(path).load()
        assert set(payload["tasks"]) == {"alpha", "beta"}
        # whichever process committed first had its entries aged by the
        # second's run, so only positive execution counts are guaranteed
        for name in ("alpha", "beta"):
            entry = payload["tasks"][name][0]["versions"]["v"]
            assert entry["executions"] >= 1
            assert entry["mean_time"] == pytest.approx(0.01)


# ----------------------------------------------------------------------
# Adaptive checkpoint cadence
# ----------------------------------------------------------------------
def build_run(sched, *, n_tasks):
    registry = {}
    m = make_machine(2, 1)
    work, _ = make_two_version_task(registry, machine=m)
    rt = OmpSsRuntime(m, sched, recovery=None)
    calls = [(work, region(("a", i)), region(("b", i))) for i in range(n_tasks)]
    return rt, calls


class TestAdaptiveCadence:
    def test_widen_factor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="widen_factor"):
            Checkpointer(ProfileStore(tmp_path / "s.json"), widen_factor=0.5)

    def test_widens_then_tightens(self, tmp_path):
        """Unit-drive both transitions: graduation widens the cadence
        4x, a new learning group tightens it back."""
        store = ProfileStore(tmp_path / "s.json")
        sched = VersioningScheduler()
        rt, _ = build_run(sched, n_tasks=1)
        cp = Checkpointer(store, interval=0.001, widen_factor=4.0).bind(rt)

        cp._adapt_interval()  # nothing dispatched yet: still learning
        assert cp.interval == 0.001
        assert cp.interval_history == []

        gkey = ("work_smp", MB)
        sched.group_dispatches[gkey] = {"learning": 3, "reliable": 1}
        sched.group_reliable_at[gkey] = 0.01
        cp._adapt_interval()
        assert cp.interval == pytest.approx(0.004)
        assert cp._event.interval == pytest.approx(0.004)
        assert cp.interval_history[-1][1] == pytest.approx(0.004)

        gkey2 = ("work_smp", 2 * MB)  # a new size group starts learning
        sched.group_dispatches[gkey2] = {"learning": 1, "reliable": 0}
        cp._adapt_interval()
        assert cp.interval == pytest.approx(0.001)
        assert cp.interval_history[-1][1] == pytest.approx(0.001)
        assert [i for _, i in cp.interval_history] == [0.004, 0.001]

    def test_real_run_widens_after_learning(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        sched = VersioningScheduler()
        rt, calls = build_run(sched, n_tasks=120)
        cp = Checkpointer(store, interval=0.0005, widen_factor=4.0).bind(rt)
        with rt:
            for fn, *args in calls:
                fn(*args)
        rt.result()
        cp.finalize()
        # the single size group graduated early; the cadence widened and
        # never tightened again
        assert sched.reliable_dispatches > 0
        assert cp.interval == pytest.approx(0.002)
        assert [i for _, i in cp.interval_history] == [pytest.approx(0.002)]
