"""Checkpoint/restart: a run killed mid-learning resumes from the last
checkpoint instead of re-learning from scratch (the tentpole scenario)."""

import pytest

from repro.core.versioning import VersioningScheduler
from repro.resilience.faults import FaultPlan, TaskFaultRule
from repro.resilience.recovery import RecoveryPolicy, TaskRetryExceededError
from repro.runtime.runtime import OmpSsRuntime
from repro.store import Checkpointer, ProfileStore, warm_start_options
from repro.store.merge import entry_count
from tests.conftest import make_machine, make_two_version_task, region


def build_run(sched, *, n_tasks, plan=None, policy=None):
    registry = {}
    m = make_machine(2, 1)
    work, _ = make_two_version_task(registry, machine=m)
    rt = OmpSsRuntime(m, sched, fault_plan=plan, recovery=policy)
    calls = [(work, region(("a", i)), region(("b", i))) for i in range(n_tasks)]
    return rt, calls


def run(rt, calls):
    with rt:
        for fn, *args in calls:
            fn(*args)
    return rt.result()


def killed_mid_learning_store(tmp_path, *, interval=0.0005):
    """Run with periodic checkpoints and abort mid-learning; returns the
    store left on disk by the last checkpoint before the crash."""
    store = ProfileStore(tmp_path / "ckpt.json")
    sched = VersioningScheduler()
    # the 18th task start faults, and a zero retry budget turns that
    # first fault into a fatal abort — the simulated "killed run".  At
    # that point the SMP version has 2 of λ=3 recorded executions, so
    # the checkpoint is genuinely mid-learning for both versions' group
    plan = FaultPlan(task_faults=[TaskFaultRule(at_starts=(18,))])
    policy = RecoveryPolicy(max_task_retries=0)
    rt, calls = build_run(sched, n_tasks=200, plan=plan, policy=policy)
    cp = Checkpointer(store, interval=interval).bind(rt)
    with pytest.raises(TaskRetryExceededError):
        run(rt, calls)
    # the process "died": no finalize(), only periodic generations exist
    return store, sched, cp


class TestKilledRun:
    def test_abort_leaves_a_consistent_midrun_checkpoint(self, tmp_path):
        store, sched, cp = killed_mid_learning_store(tmp_path)
        assert cp.checkpoints_taken > 0
        payload = store.load()  # validates on read
        assert entry_count(payload) > 0
        last = payload["meta"]["last_checkpoint"]
        assert last is not None and not last["run_complete"]
        # the run died before finishing its learning phase
        assert sched.reliable_dispatches == 0

    def test_checkpoint_carries_calibration_fingerprint(self, tmp_path):
        store, _, _ = killed_mid_learning_store(tmp_path)
        assert store.load()["fingerprint"].startswith("fp:")


class TestRestart:
    def test_warm_restart_learns_strictly_less_than_cold(self, tmp_path):
        store, _, _ = killed_mid_learning_store(tmp_path)

        warm = VersioningScheduler(**warm_start_options(store))
        assert warm.preloaded_entries > 0
        rt, calls = build_run(warm, n_tasks=200)
        warm_res = run(rt, calls)

        cold = VersioningScheduler()
        rt, calls = build_run(cold, n_tasks=200)
        cold_res = run(rt, calls)

        # both restarts finish the workload and reach the reliable phase
        assert warm_res.tasks_completed == cold_res.tasks_completed == 200
        assert warm.reliable_dispatches > 0
        assert cold.reliable_dispatches > 0
        # the acceptance criterion: strictly fewer post-restart learning
        # dispatches than a cold restart, and an earlier reliable phase
        assert warm.learning_dispatches < cold.learning_dispatches
        assert warm.time_to_reliable_phase() < cold.time_to_reliable_phase()

    def test_warm_restart_validates_clean(self, tmp_path):
        store, _, _ = killed_mid_learning_store(tmp_path)
        warm = VersioningScheduler(**warm_start_options(store))
        rt, calls = build_run(warm, n_tasks=200)
        res = run(rt, calls)
        res.validate()  # raises on any error-severity finding


class TestCheckpointerMechanics:
    def test_periodic_checkpoints_during_clean_run(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        sched = VersioningScheduler()
        rt, calls = build_run(sched, n_tasks=60)
        cp = Checkpointer(store, interval=0.0005).bind(rt)
        run(rt, calls)
        final = cp.finalize()
        assert cp.checkpoints_taken >= 2  # periodic + final
        assert final["meta"]["last_checkpoint"]["run_complete"]
        assert store.load()["meta"]["checkpoints"] == cp.checkpoints_taken

    def test_finalize_is_idempotent(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        rt, calls = build_run(VersioningScheduler(), n_tasks=10)
        cp = Checkpointer(store, interval=0.01).bind(rt)
        run(rt, calls)
        assert cp.finalize() is not None
        assert cp.finalize() is None

    def test_warm_started_scheduler_disables_base_merge(self, tmp_path):
        store, _, _ = killed_mid_learning_store(tmp_path)
        warm = VersioningScheduler(**warm_start_options(store))
        rt, calls = build_run(warm, n_tasks=20)
        cp = Checkpointer(store).bind(rt)
        # the warm table already contains the store's counts
        assert cp.merge_base is False
        run(rt, calls)
        cp.finalize()
        store.load()

    def test_cold_scheduler_merges_base(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        rt, _ = build_run(VersioningScheduler(), n_tasks=4)
        cp = Checkpointer(store).bind(rt)
        assert cp.merge_base is True

    def test_resumed_counts_accumulate_without_double_counting(self, tmp_path):
        store, _, _ = killed_mid_learning_store(tmp_path)
        before = store.load()
        warm = VersioningScheduler(**warm_start_options(store))
        preloaded_execs = sum(
            stats["executions"]
            for groups in before["tasks"].values()
            for g in groups
            for stats in g["versions"].values()
        )
        rt, calls = build_run(warm, n_tasks=50)
        cp = Checkpointer(store).bind(rt)
        run(rt, calls)
        cp.finalize()
        after = store.load()
        total_execs = sum(
            stats["executions"]
            for groups in after["tasks"].values()
            for g in groups
            for stats in g["versions"].values()
        )
        # preloads + 50 live tasks, not preloads*2 + 50
        assert total_execs == preloaded_execs + 50

    def test_requires_a_profiling_scheduler(self, tmp_path):
        store = ProfileStore(tmp_path / "s.json")
        registry = {}
        m = make_machine(2, 1)
        make_two_version_task(registry, machine=m)
        rt = OmpSsRuntime(m, "dep")
        with pytest.raises(TypeError, match="profile table"):
            Checkpointer(store).bind(rt)

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            Checkpointer(ProfileStore(tmp_path / "s.json"), interval=0.0)
