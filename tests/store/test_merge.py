"""Cross-run merging: #Exec weighting, staleness decay, fingerprints."""

import pytest

from repro.store import (
    FingerprintMismatchError,
    age_payload,
    effective_executions,
    empty_payload,
    entry_count,
    merge_payloads,
    prune_payload,
    to_hints,
    validate_payload,
)
from repro.store.merge import MAX_MERGED_EXECUTIONS


def payload_with(entries, *, fingerprint=None):
    """entries: {(task, rep_bytes, version): (mean, execs, stale)}"""
    p = empty_payload(fingerprint=fingerprint)
    p["meta"]["runs"] = 1
    for (task, rep, vname), (mean, execs, stale) in entries.items():
        groups = p["tasks"].setdefault(task, [])
        for g in groups:
            if g["representative_bytes"] == rep:
                break
        else:
            g = {"representative_bytes": rep, "versions": {}}
            groups.append(g)
        g["versions"][vname] = {
            "mean_time": mean,
            "executions": execs,
            "stale_runs": stale,
        }
    return validate_payload(p)


class TestWeightedMerge:
    def test_merge_is_execution_weighted_mean(self):
        a = payload_with({("t", 100, "v"): (1.0, 30, 0)})
        b = payload_with({("t", 100, "v"): (2.0, 10, 0)})
        m = merge_payloads([a, b])
        entry = m["tasks"]["t"][0]["versions"]["v"]
        assert entry["mean_time"] == pytest.approx(1.25)  # (30*1 + 10*2) / 40
        assert entry["executions"] == 40

    def test_stale_contribution_is_decayed(self):
        fresh = payload_with({("t", 100, "v"): (1.0, 10, 0)})
        stale = payload_with({("t", 100, "v"): (3.0, 10, 2)})  # weight 10*0.5^2=2.5
        m = merge_payloads([fresh, stale], decay=0.5)
        entry = m["tasks"]["t"][0]["versions"]["v"]
        assert entry["mean_time"] == pytest.approx((10 * 1.0 + 2.5 * 3.0) / 12.5)
        assert entry["stale_runs"] == 0  # freshest provenance wins

    def test_disjoint_entries_union(self):
        a = payload_with({("t", 100, "v1"): (1.0, 5, 0)})
        b = payload_with({("u", 200, "v2"): (2.0, 5, 0)})
        m = merge_payloads([a, b])
        assert entry_count(m) == 2

    def test_entries_decayed_to_nothing_are_dropped(self):
        dead = payload_with({("t", 100, "v"): (1.0, 1, 10)})  # 1 * 0.5^10 << 0.5
        m = merge_payloads([dead])
        assert entry_count(m) == 0

    def test_merged_executions_capped(self):
        huge = [
            payload_with({("t", 100, "v"): (1.0, 900, 0)}),
            payload_with({("t", 100, "v"): (1.0, 900, 0)}),
        ]
        m = merge_payloads(huge)
        assert m["tasks"]["t"][0]["versions"]["v"]["executions"] == MAX_MERGED_EXECUTIONS

    def test_meta_runs_summed(self):
        m = merge_payloads(
            [payload_with({}), payload_with({}), payload_with({})]
        )
        assert m["meta"]["runs"] == 3

    def test_result_validates(self):
        a = payload_with({("t", 100, "v"): (1.0, 3, 1)})
        validate_payload(merge_payloads([a, a, a]))


class TestFingerprints:
    def test_mismatched_fingerprints_refused(self):
        a = payload_with({("t", 100, "v"): (1.0, 5, 0)}, fingerprint="fp:a")
        b = payload_with({("t", 100, "v"): (1.0, 5, 0)}, fingerprint="fp:b")
        with pytest.raises(FingerprintMismatchError, match="fp:a"):
            merge_payloads([a, b])

    def test_mismatch_check_can_be_disabled(self):
        a = payload_with({("t", 100, "v"): (1.0, 5, 0)}, fingerprint="fp:a")
        b = payload_with({("t", 100, "v"): (1.0, 5, 0)}, fingerprint="fp:b")
        m = merge_payloads([a, b], check_fingerprints=False)
        assert m["fingerprint"] is None

    def test_common_fingerprint_kept(self):
        a = payload_with({("t", 100, "v"): (1.0, 5, 0)}, fingerprint="fp:x")
        b = payload_with({}, fingerprint="fp:x")
        assert merge_payloads([a, b])["fingerprint"] == "fp:x"

    def test_none_fingerprint_is_wildcard(self):
        a = payload_with({("t", 100, "v"): (1.0, 5, 0)}, fingerprint="fp:x")
        b = payload_with({("t", 100, "v"): (2.0, 5, 0)})  # fingerprint None
        assert merge_payloads([a, b])["fingerprint"] == "fp:x"


class TestAgeAndPrune:
    def test_age_advances_stale_runs(self):
        p = payload_with({("t", 100, "v"): (1.0, 8, 1)})
        aged = age_payload(p, by=2)
        assert aged["tasks"]["t"][0]["versions"]["v"]["stale_runs"] == 3
        # original untouched
        assert p["tasks"]["t"][0]["versions"]["v"]["stale_runs"] == 1

    def test_effective_executions_decays_geometrically(self):
        e = {"mean_time": 1.0, "executions": 16, "stale_runs": 2}
        assert effective_executions(e, 0.5) == pytest.approx(4.0)

    def test_prune_drops_stale_and_thin(self):
        p = payload_with(
            {
                ("t", 100, "keep"): (1.0, 20, 0),
                ("t", 100, "stale"): (1.0, 20, 7),
                ("u", 200, "thin"): (1.0, 1, 4),
            }
        )
        pruned, removed = prune_payload(p, max_stale=5)
        assert removed == 2
        assert entry_count(pruned) == 1
        assert "u" not in pruned["tasks"]  # emptied task dropped


class TestHintsExport:
    def test_decay_applied_at_export(self):
        p = payload_with({("t", 100, "v"): (1.0, 16, 2)})
        hints = to_hints(p, decay=0.5)
        assert hints["tasks"]["t"][0]["versions"]["v"]["executions"] == 4

    def test_raw_export_with_decay_one(self):
        p = payload_with({("t", 100, "v"): (1.0, 16, 2)})
        hints = to_hints(p, decay=1.0)
        assert hints["tasks"]["t"][0]["versions"]["v"]["executions"] == 16

    def test_fully_decayed_entries_omitted(self):
        p = payload_with({("t", 100, "v"): (1.0, 1, 6)})
        assert to_hints(p, decay=0.5)["tasks"] == {}

    def test_export_feeds_preload(self):
        from repro.core.profile import VersionProfileTable

        p = payload_with({("t", 4096, "v"): (0.25, 8, 0)})
        table = VersionProfileTable()
        assert table.preload(to_hints(p)) == 1
        assert table.group("t", 4096).mean_time("v") == pytest.approx(0.25)
