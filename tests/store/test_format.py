"""On-disk format: validation, atomic write/rotation, legacy migration."""

import json

import pytest

from repro.core.hints import save_hints
from repro.core.profile import VersionProfileTable
from repro.store import (
    SCHEMA_VERSION,
    StoreCorruptError,
    backup_path,
    empty_payload,
    migrate_legacy,
    read_payload,
    validate_payload,
    write_payload,
)

MB = 1024**2


def make_table():
    t = VersionProfileTable()
    g = t.group("task1", 2 * MB)
    g.profile("v1").estimator.preload(0.030, 200)
    g.profile("v2").estimator.preload(0.018, 350)
    t.group("task2", 5 * MB).profile("w1").estimator.preload(0.015, 40)
    return t


def sample_payload():
    return migrate_legacy(make_table().to_dict(), fingerprint="fp:test")


class TestValidation:
    def test_empty_payload_is_valid(self):
        validate_payload(empty_payload())

    def test_migrated_legacy_snapshot_is_valid(self):
        p = sample_payload()
        validate_payload(p)
        entry = p["tasks"]["task1"][0]["versions"]["v1"]
        assert entry == {"mean_time": 0.030, "executions": 200,
                         "stale_runs": 0, "variance": 0.0}
        assert p["schema_version"] == SCHEMA_VERSION

    def test_zero_execution_versions_dropped_on_migration(self):
        t = VersionProfileTable()
        t.group("t", 100).profile("never_ran")
        p = migrate_legacy(t.to_dict())
        assert p["tasks"]["t"][0]["versions"] == {}

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(StoreCorruptError, match="not a profile store"):
            validate_payload({"format": "something-else"})

    def test_newer_schema_rejected_with_upgrade_hint(self):
        p = empty_payload()
        p["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(StoreCorruptError, match="upgrade this runtime"):
            validate_payload(p)

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda e: e.update(mean_time=-1.0), "mean_time"),
            (lambda e: e.update(mean_time=float("nan")), "mean_time"),
            (lambda e: e.update(executions=0), "executions"),
            (lambda e: e.update(executions=1.5), "executions"),
            (lambda e: e.update(stale_runs=-1), "stale_runs"),
        ],
    )
    def test_bad_entry_fields_rejected(self, mutate, match):
        p = sample_payload()
        mutate(p["tasks"]["task1"][0]["versions"]["v1"])
        with pytest.raises(StoreCorruptError, match=match):
            validate_payload(p)

    def test_bad_meta_counter_rejected(self):
        p = sample_payload()
        p["meta"]["runs"] = -3
        with pytest.raises(StoreCorruptError, match="meta.runs"):
            validate_payload(p)


class TestAtomicWrite:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "store.json"
        p = sample_payload()
        write_payload(path, p)
        assert read_payload(path) == p

    def test_previous_generation_rotated_to_bak(self, tmp_path):
        path = tmp_path / "store.json"
        first = empty_payload(fingerprint="fp:first")
        write_payload(path, first)
        write_payload(path, empty_payload(fingerprint="fp:second"))
        assert backup_path(path).exists()
        assert read_payload(backup_path(path)) == first
        assert read_payload(path)["fingerprint"] == "fp:second"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "store.json"
        write_payload(path, sample_payload())
        write_payload(path, sample_payload())
        leftovers = [f for f in tmp_path.iterdir() if f.suffix == ".tmp"]
        assert leftovers == []

    def test_invalid_payload_never_touches_disk(self, tmp_path):
        path = tmp_path / "store.json"
        write_payload(path, sample_payload())
        bad = sample_payload()
        bad["tasks"]["task1"][0]["versions"]["v1"]["executions"] = 0
        with pytest.raises(StoreCorruptError):
            write_payload(path, bad)
        assert read_payload(path) == sample_payload()


class TestLegacyMigration:
    def test_legacy_xml_hints_read_transparently(self, tmp_path):
        path = tmp_path / "hints.xml"
        save_hints(make_table(), path)
        p = read_payload(path)
        assert p["schema_version"] == SCHEMA_VERSION
        assert p["tasks"]["task1"][0]["versions"]["v2"]["executions"] == 350

    def test_legacy_json_hints_read_transparently(self, tmp_path):
        path = tmp_path / "hints.json"
        save_hints(make_table(), path)
        p = read_payload(path)
        assert p["tasks"]["task2"][0]["versions"]["w1"]["mean_time"] == pytest.approx(
            0.015
        )
        assert all(
            stats["stale_runs"] == 0
            for groups in p["tasks"].values()
            for g in groups
            for stats in g["versions"].values()
        )

    def test_xml_and_json_hints_migrate_identically(self, tmp_path):
        xml_path, json_path = tmp_path / "h.xml", tmp_path / "h.json"
        save_hints(make_table(), xml_path)
        save_hints(make_table(), json_path)
        a, b = read_payload(xml_path), read_payload(json_path)
        assert a["tasks"] == b["tasks"]


class TestCorruptFiles:
    def test_truncated_json_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "store.json"
        full = json.dumps(sample_payload())
        path.write_text(full[: len(full) // 2])
        with pytest.raises(StoreCorruptError, match="truncated or malformed JSON"):
            read_payload(path)

    def test_binary_garbage_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_bytes(b"\x00\xff\x13garbage")
        with pytest.raises(StoreCorruptError, match=str(path)):
            read_payload(path)

    def test_truncated_xml_rejected(self, tmp_path):
        path = tmp_path / "hints.xml"
        save_hints(make_table(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StoreCorruptError, match="malformed hints XML"):
            read_payload(path)

    def test_missing_file_errors_name_the_path(self, tmp_path):
        from repro.store import StoreError

        with pytest.raises(StoreError, match="nowhere.json"):
            read_payload(tmp_path / "nowhere.json")

    def test_error_names_first_offending_field(self, tmp_path):
        path = tmp_path / "store.json"
        p = sample_payload()
        p["tasks"]["task1"][0]["versions"]["v1"]["executions"] = "many"
        path.write_text(json.dumps(p))
        with pytest.raises(StoreCorruptError, match="'task1'/'v1'"):
            read_payload(path)
