"""Warm-start policies: trust / probation / cold, credit accounting,
time-to-reliable metrics and sanitizer cleanliness."""

import pytest

from repro.analysis.metrics import time_to_reliable_phase, warm_start_summary
from repro.core.versioning import VersioningScheduler
from repro.runtime.runtime import OmpSsRuntime
from repro.store import ProfileStore, warm_start_options
from tests.conftest import make_machine, make_two_version_task, region


def run_versioning(sched, n_tasks=24, registry=None):
    registry = {} if registry is None else registry
    m = make_machine(2, 1)
    work, _ = make_two_version_task(registry, machine=m)
    rt = OmpSsRuntime(m, sched)
    with rt:
        for i in range(n_tasks):
            work(region(("a", i)), region(("b", i)))
    return rt.result()


def seeded_store(tmp_path):
    """A store holding the table of one completed cold run."""
    cold = VersioningScheduler()
    run_versioning(cold)
    store = ProfileStore(tmp_path / "store.json")
    store.begin_run()
    store.commit(cold.table)
    return store, cold


class TestPolicies:
    def test_trust_skips_learning_entirely(self, tmp_path):
        store, cold = seeded_store(tmp_path)
        assert cold.learning_dispatches > 0
        warm = VersioningScheduler(**warm_start_options(store, policy="trust"))
        assert warm.preloaded_entries == 2  # one group, two versions
        run_versioning(warm)
        assert warm.learning_dispatches == 0
        assert warm.reliable_dispatches > 0

    def test_probation_requires_live_executions(self, tmp_path):
        store, cold = seeded_store(tmp_path)
        warm = VersioningScheduler(
            **warm_start_options(store, policy="probation"), probation_lam=2
        )
        run_versioning(warm)
        # probation re-learns a shortened phase: more than trust's zero,
        # strictly less than a full cold learning phase
        assert 0 < warm.learning_dispatches < cold.learning_dispatches

    def test_cold_ignores_hints(self, tmp_path):
        store, cold = seeded_store(tmp_path)
        coldstart = VersioningScheduler(**warm_start_options(store, policy="cold"))
        assert coldstart.preloaded_entries == 0
        run_versioning(coldstart)
        assert coldstart.learning_dispatches == cold.learning_dispatches

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="warm_start"):
            VersioningScheduler(warm_start="optimistic")

    def test_probation_lam_bounds(self):
        with pytest.raises(ValueError, match="probation_lam"):
            VersioningScheduler(lam=3, probation_lam=4)


class TestLearningCredit:
    def test_trust_counts_preloaded_fully(self):
        hints = {
            "tasks": {
                "t": [
                    {
                        "representative_bytes": 64,
                        "versions": {"v": {"mean_time": 0.1, "executions": 7}},
                    }
                ]
            }
        }
        s = VersioningScheduler(lam=5, warm_start="trust", hints=hints)
        group = s.table.group("t", 64)
        assert s.learning_credit(group, "v") == 7
        assert not s.in_learning_phase(group, ["v"])

    def test_probation_caps_preloaded_credit(self):
        hints = {
            "tasks": {
                "t": [
                    {
                        "representative_bytes": 64,
                        "versions": {"v": {"mean_time": 0.1, "executions": 100}},
                    }
                ]
            }
        }
        s = VersioningScheduler(
            lam=5, warm_start="probation", probation_lam=2, hints=hints
        )
        group = s.table.group("t", 64)
        # capped at lam - probation_lam = 3 despite 100 preloaded
        assert s.learning_credit(group, "v") == 3
        assert s.in_learning_phase(group, ["v"])
        # credit never exceeds raw executions (SAN-T005 stays sharp)
        assert s.learning_credit(group, "v") <= group.executions("v")

    def test_live_executions_always_count_in_full(self):
        hints = {
            "tasks": {
                "t": [
                    {
                        "representative_bytes": 64,
                        "versions": {"v": {"mean_time": 0.1, "executions": 9}},
                    }
                ]
            }
        }
        s = VersioningScheduler(
            lam=5, warm_start="probation", probation_lam=2, hints=hints
        )
        group = s.table.group("t", 64)
        group.record("v", 0.1)
        group.record("v", 0.1)
        assert s.learning_credit(group, "v") == 3 + 2
        assert not s.in_learning_phase(group, ["v"])


class TestMetrics:
    def test_time_to_reliable_warm_beats_cold(self, tmp_path):
        store, cold_sched = seeded_store(tmp_path)
        # long enough that the cold run outlives its learning phase
        cold = VersioningScheduler()
        cold_res = run_versioning(cold, n_tasks=200)
        warm = VersioningScheduler(**warm_start_options(store))
        warm_res = run_versioning(warm, n_tasks=200)
        t_cold = time_to_reliable_phase(cold_res)
        t_warm = time_to_reliable_phase(warm_res)
        assert t_cold is not None and t_warm is not None
        assert t_warm < t_cold

    def test_warm_start_summary_shape(self, tmp_path):
        store, _ = seeded_store(tmp_path)
        warm = VersioningScheduler(**warm_start_options(store))
        res = run_versioning(warm)
        summary = warm_start_summary(res)
        assert summary["learning_dispatches"] == 0.0
        assert summary["reliable_dispatches"] > 0
        assert summary["preloaded_entries"] == 2.0
        assert summary["time_to_reliable"] < float("inf")

    def test_non_versioning_run_reports_none(self):
        registry = {}
        m = make_machine(2, 1)
        work, _ = make_two_version_task(registry, machine=m)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            for i in range(4):
                work(region(("a", i)), region(("b", i)))
        assert time_to_reliable_phase(rt.result()) is None


class TestSanitizerCleanliness:
    @pytest.mark.parametrize("policy", ["trust", "probation", "cold"])
    def test_warm_started_runs_validate_clean(self, tmp_path, policy):
        store, _ = seeded_store(tmp_path)
        warm = VersioningScheduler(
            **warm_start_options(store, policy=policy), probation_lam=1
        )
        res = run_versioning(warm)
        assert res.validate() == [] or all(
            d.code != "SAN-T005" for d in res.validate(strict=False)
        )

    def test_trust_run_with_short_lam_hints_validates(self, tmp_path):
        # preloaded counts below λ would trip a naive raw-count check the
        # moment trust lets the group graduate — the credit-based
        # SAN-T005 must accept it... but trust only skips learning when
        # credit >= λ, so a *partial* preload still learns the remainder
        hints = {
            "tasks": {
                "work_smp": [
                    {
                        "representative_bytes": 2 * 1024**2,
                        "versions": {
                            "work_smp": {"mean_time": 0.01, "executions": 1},
                            "work_gpu": {"mean_time": 0.001, "executions": 1},
                        },
                    }
                ]
            }
        }
        warm = VersioningScheduler(lam=3, hints=hints)
        res = run_versioning(warm)
        assert all(d.code != "SAN-T005" for d in res.validate(strict=False))
