"""Tests for the tiled Cholesky application."""

import numpy as np
import pytest

from repro.apps import kernels
from repro.apps.cholesky import CholeskyApp
from repro.sim.topology import minotauro_node


def machine(smp=2, gpus=2, noise=0.0, seed=0):
    return minotauro_node(smp, gpus, noise_cv=noise, seed=seed)


class TestConstruction:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            CholeskyApp(variant="hybrid")

    def test_variant_version_structure(self):
        smp = CholeskyApp(n_blocks=2, variant="smp")
        assert [v.name for v in smp.potrf.definition.versions] == ["potrf_cblas"]
        gpu = CholeskyApp(n_blocks=2, variant="gpu")
        assert [v.name for v in gpu.potrf.definition.versions] == ["potrf_magma"]
        hyb = CholeskyApp(n_blocks=2, variant="hyb")
        assert [v.name for v in hyb.potrf.definition.versions] == [
            "potrf_magma", "potrf_cblas"]

    def test_task_count_formula(self):
        app = CholeskyApp(n_blocks=4, variant="gpu")
        # nb=4: potrf 4, trsm 6, syrk 6, gemm 0+0+1+3? compute directly
        expected = 0
        nb = 4
        for k in range(nb):
            expected += 1 + 2 * (nb - k - 1) + (nb - k - 1) * (nb - k - 2) // 2
        assert app.task_count() == expected

    def test_total_flops_close_to_n_cubed_over_3(self):
        nb, bs = 8, 64
        total = kernels.cholesky_total_flops(nb, bs)
        n = nb * bs
        assert total == pytest.approx(n**3 / 3, rel=0.05)


class TestExecution:
    def test_all_tasks_complete(self):
        app = CholeskyApp(n_blocks=4, variant="gpu")
        res = app.run(machine(1, 2), "dep")
        assert res.run.tasks_completed == app.task_count()

    def test_schedule_respects_dependences(self):
        app = CholeskyApp(n_blocks=5, variant="hyb")
        m = machine(2, 2)
        app.register_cost_models(m)
        from repro.runtime.runtime import OmpSsRuntime

        rt = OmpSsRuntime(m, "versioning")
        with rt:
            app.master(rt)
        res = rt.result()
        rt.graph.verify_schedule(res.finish_order)
        res.trace.check_no_overlap()

    def test_gpu_variant_never_uses_smp_workers(self):
        app = CholeskyApp(n_blocks=4, variant="gpu")
        res = app.run(machine(4, 2), "dep")
        for name, stats in res.run.worker_stats.items():
            if name.startswith("w:smp"):
                assert stats["tasks_run"] == 0

    def test_smp_variant_runs_potrf_on_host(self):
        app = CholeskyApp(n_blocks=4, variant="smp")
        res = app.run(machine(2, 2), "dep")
        assert res.run.version_counts["potrf_cblas"] == {"potrf_cblas": 4}


class TestNumericalCorrectness:
    @pytest.mark.parametrize("variant,sched", [("gpu", "dep"),
                                               ("smp", "affinity"),
                                               ("hyb", "versioning")])
    def test_real_mode_matches_lapack(self, variant, sched):
        app = CholeskyApp(n_blocks=4, block_size=8, variant=variant,
                          dtype=np.float64, real=True, seed=2)
        app.run(machine(2, 2), sched)
        L = app.assembled_L()
        ref = app.reference_L()
        assert np.allclose(L, ref, atol=1e-6 * np.abs(ref).max())

    def test_real_mode_reconstructs_input(self):
        app = CholeskyApp(n_blocks=3, block_size=8, variant="gpu",
                          dtype=np.float64, real=True, seed=4)
        app.run(machine(1, 1), "dep")
        L = app.assembled_L()
        assert np.allclose(L @ L.T, app._full_input,
                           atol=1e-6 * np.abs(app._full_input).max())


class TestKernelsDirect:
    def test_potrf_block(self):
        rng = np.random.default_rng(0)
        m = rng.standard_normal((8, 8))
        a = m @ m.T + 8 * np.eye(8)
        expect = np.linalg.cholesky(a)
        kernels.potrf_block(a)
        assert np.allclose(a, expect)

    def test_trsm_block(self):
        rng = np.random.default_rng(1)
        m = rng.standard_normal((6, 6))
        L = np.linalg.cholesky(m @ m.T + 6 * np.eye(6))
        A = rng.standard_normal((6, 6))
        X = A.copy()
        kernels.trsm_block(L, X)
        assert np.allclose(X @ L.T, A, atol=1e-10)

    def test_syrk_block(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((5, 5))
        C = rng.standard_normal((5, 5))
        expect = C - A @ A.T
        kernels.syrk_block(A, C)
        assert np.allclose(C, expect)

    def test_gemm_update_block(self):
        rng = np.random.default_rng(3)
        A, B, C = (rng.standard_normal((4, 4)) for _ in range(3))
        expect = C - A @ B.T
        kernels.gemm_update_block(A, B, C)
        assert np.allclose(C, expect)

    def test_kernels_noop_on_regions(self):
        from repro.runtime.dataregion import DataRegion

        r = DataRegion("x", 10)
        kernels.potrf_block(r)  # must not raise
        kernels.gemm_tile(r, r, r)
