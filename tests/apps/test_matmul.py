"""Tests for the tiled matmul application."""

import numpy as np
import pytest

from repro.apps.matmul import VERSION_LEGEND, MatmulApp
from repro.sim.topology import minotauro_node


def machine(smp=2, gpus=1, noise=0.0, seed=0):
    return minotauro_node(smp, gpus, noise_cv=noise, seed=seed)


class TestConstruction:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            MatmulApp(variant="cpu")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            MatmulApp(n_tiles=0)

    def test_gpu_variant_has_one_version(self):
        app = MatmulApp(n_tiles=2, variant="gpu")
        assert len(app.matmul_tile.definition.versions) == 1

    def test_hyb_variant_has_three_versions(self):
        app = MatmulApp(n_tiles=2, variant="hyb")
        names = [v.name for v in app.matmul_tile.definition.versions]
        assert names == ["matmul_tile_cublas", "matmul_tile_cuda",
                         "matmul_tile_cblas"]
        assert set(names) == set(VERSION_LEGEND)

    def test_total_flops(self):
        app = MatmulApp(n_tiles=4, tile_size=8)
        assert app.total_flops() == 2.0 * 32**3


class TestExecution:
    def test_task_count_is_nt_cubed(self):
        app = MatmulApp(n_tiles=3, variant="gpu")
        res = app.run(machine(0, 1), "dep")
        assert res.run.tasks_completed == 27

    def test_hybrid_runs_under_versioning(self):
        app = MatmulApp(n_tiles=3, variant="hyb")
        res = app.run(machine(2, 1), "versioning")
        counts = res.run.version_counts["matmul_tile_cublas"]
        assert sum(counts.values()) == 27

    def test_hybrid_rejected_under_dep(self):
        """The main version targets CUDA; on a machine with GPUs the dep
        scheduler runs it GPU-only, but on a CPU-only machine it must
        fail (it cannot see the SMP implements version)."""
        app = MatmulApp(n_tiles=2, variant="hyb")
        with pytest.raises(RuntimeError):
            app.run(machine(2, 0), "dep")

    def test_hybrid_on_cpu_only_machine_under_versioning(self):
        app = MatmulApp(n_tiles=2, variant="hyb")
        res = app.run(machine(2, 0), "versioning")
        counts = res.run.version_counts["matmul_tile_cublas"]
        assert counts == {"matmul_tile_cblas": 8}

    def test_deterministic_given_seed(self):
        r1 = MatmulApp(n_tiles=3, variant="hyb").run(machine(2, 1, 0.05, 3),
                                                     "versioning")
        r2 = MatmulApp(n_tiles=3, variant="hyb").run(machine(2, 1, 0.05, 3),
                                                     "versioning")
        assert r1.makespan == r2.makespan
        assert r1.run.version_counts == r2.run.version_counts


class TestNumericalCorrectness:
    @pytest.mark.parametrize("sched,variant", [("dep", "gpu"),
                                               ("affinity", "gpu"),
                                               ("versioning", "hyb")])
    def test_real_mode_matches_numpy(self, sched, variant):
        app = MatmulApp(n_tiles=3, tile_size=8, variant=variant, real=True, seed=5)
        app.run(machine(2, 1), sched)
        assert np.allclose(app.assembled_C(), app.reference_result(), atol=1e-8)

    def test_real_mode_dependences_order_k_accumulation(self):
        """The inout chain on each C tile must serialise the k-sum."""
        app = MatmulApp(n_tiles=2, tile_size=4, variant="gpu", real=True, seed=1)
        res = app.run(machine(0, 2), "dep")
        res.run.trace.check_no_overlap()
        assert np.allclose(app.assembled_C(), app.reference_result(), atol=1e-10)

    def test_sim_mode_has_no_arrays(self):
        app = MatmulApp(n_tiles=2, variant="gpu")
        with pytest.raises(RuntimeError, match="real=True"):
            app.assembled_C()


class TestPaperCalibration:
    def test_smp_tile_about_60x_gpu_tile(self):
        """§V-B1: 'SMP task duration is about 60 times the GPU task
        duration' for 1024^2 double tiles."""
        m = machine(1, 1)
        app = MatmulApp(n_tiles=2, variant="hyb")
        app.register_cost_models(m)
        params = {"n": 1024}
        smp = m.device("smp0").duration("matmul_tile_cblas", 0, params)
        gpu = m.device("gpu0").duration("matmul_tile_cublas", 0, params)
        assert smp / gpu == pytest.approx(60, rel=0.05)

    def test_handcoded_cuda_slower_than_cublas(self):
        m = machine(1, 1)
        app = MatmulApp(n_tiles=2, variant="hyb")
        app.register_cost_models(m)
        params = {"n": 1024}
        cublas = m.device("gpu0").duration("matmul_tile_cublas", 0, params)
        cuda = m.device("gpu0").duration("matmul_tile_cuda", 0, params)
        assert cuda > cublas
