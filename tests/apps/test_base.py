"""Tests for the common application driver."""

import pytest

from repro.apps.base import AppResult, Application
from repro.apps.matmul import MatmulApp
from repro.apps.pbpi import PBPIApp
from repro.sim.topology import minotauro_node


class TestAppResult:
    def test_gflops_derived_from_makespan(self):
        app = MatmulApp(n_tiles=2, variant="gpu")
        res = app.run(minotauro_node(0, 1, noise_cv=0.0), "dep")
        assert res.gflops == pytest.approx(
            app.total_flops() / res.makespan / 1e9
        )

    def test_pbpi_reports_time_not_gflops(self):
        app = PBPIApp(generations=2, n_blocks=2, variant="smp")
        res = app.run(minotauro_node(2, 0, noise_cv=0.0), "dep")
        assert res.gflops is None
        assert res.makespan > 0

    def test_summary_contains_key_fields(self):
        app = MatmulApp(n_tiles=2, variant="gpu")
        res = app.run(minotauro_node(0, 1, noise_cv=0.0), "dep")
        s = res.summary()
        assert "matmul-gpu" in s
        assert "GFLOP/s" in s
        assert "tasks=8" in s

    def test_summary_time_mode_for_pbpi(self):
        app = PBPIApp(generations=2, n_blocks=2, variant="smp")
        res = app.run(minotauro_node(2, 0, noise_cv=0.0), "dep")
        assert " s " in res.summary() or res.summary().rstrip().find("s") > 0
        assert "GFLOP/s" not in res.summary()


class TestApplicationBase:
    def test_abstract_hooks_raise(self):
        app = Application("v")
        with pytest.raises(NotImplementedError):
            app.register_cost_models(None)
        with pytest.raises(NotImplementedError):
            app.master(None)

    def test_default_flops_none(self):
        assert Application("v").total_flops() is None

    def test_run_accepts_scheduler_instance(self):
        from repro.core.versioning import VersioningScheduler

        app = MatmulApp(n_tiles=2, variant="hyb")
        sched = VersioningScheduler(lam=1)
        res = app.run(minotauro_node(1, 1, noise_cv=0.0), sched)
        assert res.run.scheduler == "versioning"

    def test_run_forwards_scheduler_options(self):
        app = MatmulApp(n_tiles=2, variant="hyb")
        res = app.run(
            minotauro_node(1, 1, noise_cv=0.0),
            "versioning",
            scheduler_options={"lam": 1},
        )
        assert res.run.tasks_completed == 8

    def test_private_registries_do_not_collide(self):
        a = MatmulApp(n_tiles=2, variant="hyb")
        b = MatmulApp(n_tiles=2, variant="hyb")
        assert a.matmul_tile.definition is not b.matmul_tile.definition
        assert a.matmul_tile.definition.name == b.matmul_tile.definition.name
