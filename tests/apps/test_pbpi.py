"""Tests for the PBPI application."""

import numpy as np
import pytest

from repro.apps.pbpi import PBPIApp
from repro.sim.topology import minotauro_node


def machine(smp=2, gpus=2, noise=0.0, seed=0):
    return minotauro_node(smp, gpus, noise_cv=noise, seed=seed)


class TestConstruction:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            PBPIApp(variant="cpu")

    def test_invalid_generations_rejected(self):
        with pytest.raises(ValueError):
            PBPIApp(generations=0)

    def test_task_count(self):
        app = PBPIApp(generations=5, n_blocks=4)
        assert app.task_count() == 5 * (2 * 4 + 1)

    def test_no_flops_reported(self):
        assert PBPIApp(generations=1).total_flops() is None

    def test_variant_version_structure(self):
        hyb = PBPIApp(generations=1, variant="hyb")
        assert len(hyb.loop1.definition.versions) == 2
        assert len(hyb.loop2.definition.versions) == 2
        assert len(hyb.loop3.definition.versions) == 1
        gpu = PBPIApp(generations=1, variant="gpu")
        assert len(gpu.loop1.definition.versions) == 1

    def test_block_bytes_partition_dataset(self):
        app = PBPIApp(generations=1, n_blocks=8, dataset_bytes=800)
        assert app.block_bytes == 100


class TestExecution:
    def test_all_tasks_complete(self):
        app = PBPIApp(generations=4, n_blocks=4, variant="hyb")
        res = app.run(machine(2, 1), "versioning")
        assert res.run.tasks_completed == app.task_count()

    def test_smp_variant_transfers_nothing(self):
        """pbpi-smp: 'data always stay in the host memory and no data
        transfers will be needed.'"""
        app = PBPIApp(generations=3, n_blocks=4, variant="smp")
        res = app.run(machine(4, 2), "dep")
        assert res.run.transfer_stats.total_bytes == 0

    def test_gpu_variant_pays_output_every_generation(self):
        gens = 4
        app = PBPIApp(generations=gens, n_blocks=4, variant="gpu")
        res = app.run(machine(2, 2), "dep")
        # loop3 on the host needs lik + acc back every generation
        per_gen = app.dataset_bytes * 2
        assert res.run.transfer_stats.output_tx >= per_gen * (gens - 1)

    def test_loop3_always_on_host(self):
        app = PBPIApp(generations=3, n_blocks=4, variant="hyb")
        res = app.run(machine(2, 2), "versioning")
        assert res.run.version_counts["pbpi_loop3_smp"] == {"pbpi_loop3_smp": 3}

    def test_needs_an_smp_worker(self):
        app = PBPIApp(generations=1, variant="gpu")
        with pytest.raises(RuntimeError, match="SMP worker"):
            app.run(machine(0, 2), "dep")

    def test_generations_serialise_via_tree_state(self):
        """Generation g+1's loop1 cannot start before generation g's
        loop3 finished (RAW on the tree region)."""
        app = PBPIApp(generations=3, n_blocks=2, variant="gpu")
        m = machine(1, 1)
        app.register_cost_models(m)
        from repro.runtime.runtime import OmpSsRuntime

        rt = OmpSsRuntime(m, "dep")
        with rt:
            app.master(rt)
        res = rt.result()
        rt.graph.verify_schedule(res.finish_order)
        loop3_recs = sorted(
            (r for r in res.trace.by_category("task")
             if r.label == "pbpi_loop3_smp"),
            key=lambda r: r.start,
        )
        loop1_recs = sorted(
            (r for r in res.trace.by_category("task")
             if r.label.startswith("pbpi_loop1")),
            key=lambda r: r.start,
        )
        # the 3rd generation's first loop1 starts after the 2nd loop3 ends
        assert loop1_recs[2 * 2].start >= loop3_recs[1].end - 1e-12


class TestRealMode:
    def test_real_mode_runs_and_mutates_state(self):
        app = PBPIApp(generations=3, n_blocks=2, dataset_bytes=2048,
                      tree_bytes=2048, variant="hyb", real=True, seed=0)
        tree_before = app.tree.copy()
        app.run(machine(2, 1), "versioning")
        assert not np.allclose(app.tree, tree_before)

    def test_real_mode_deterministic_across_schedulers(self):
        """Dataflow correctness: the numerical result must not depend on
        the scheduler (all valid topological orders commute here)."""

        def run(sched, variant):
            app = PBPIApp(generations=3, n_blocks=2, dataset_bytes=2048,
                          tree_bytes=2048, variant=variant, real=True, seed=1)
            app.run(machine(2, 2), sched)
            return app.tree.copy()

        t1 = run("dep", "smp")
        t2 = run("affinity", "smp")
        t3 = run("versioning", "hyb")
        assert np.allclose(t1, t2)
        assert np.allclose(t1, t3)
