"""Property test: hints files round-trip arbitrary profile tables."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hints import load_hints, save_hints
from repro.core.profile import VersionProfileTable

name = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12)
profile_entry = st.tuples(
    st.floats(min_value=1e-9, max_value=1e3, allow_nan=False),  # mean seconds
    st.integers(min_value=1, max_value=10**6),                   # executions
)
table_spec = st.dictionaries(
    name,  # task name
    st.dictionaries(
        st.integers(min_value=0, max_value=2**40),  # data-set bytes
        st.dictionaries(name, profile_entry, min_size=1, max_size=3),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=3,
)


def build_table(spec) -> VersionProfileTable:
    t = VersionProfileTable()
    for task_name, groups in spec.items():
        for nbytes, versions in groups.items():
            grp = t.group(task_name, nbytes)
            for vname, (mean, execs) in versions.items():
                grp.profile(vname).estimator.preload(mean, execs)
    return t


class TestHintsRoundtripProperty:
    @given(spec=table_spec, fmt=st.sampled_from(["xml", "json"]))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_every_profile(self, tmp_path_factory, spec, fmt):
        src = build_table(spec)
        path = tmp_path_factory.mktemp("hints") / f"h.{fmt}"
        save_hints(src, path)
        dst = VersionProfileTable()
        dst.preload(load_hints(path))
        for task_name, groups in spec.items():
            for nbytes, versions in groups.items():
                grp = dst.group(task_name, nbytes)
                # same-size groups may merge if two spec sizes collide
                for vname, (mean, execs) in versions.items():
                    got = grp.mean_time(vname)
                    assert got is not None
                    assert got == pytest.approx(mean, rel=1e-9)
