"""Tests for execution-time estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import EWMA, RunningMean, make_estimator

durations = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=200
)


class TestRunningMean:
    def test_empty_has_no_value(self):
        assert RunningMean().value is None
        assert RunningMean().count == 0

    def test_single_sample(self):
        m = RunningMean()
        m.add(2.5)
        assert m.value == 2.5
        assert m.count == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RunningMean().add(-1.0)

    @given(durations)
    @settings(max_examples=100, deadline=None)
    def test_running_mean_equals_batch_mean(self, xs):
        m = RunningMean()
        for x in xs:
            m.add(x)
        assert m.value == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-12)
        assert m.count == len(xs)

    def test_preload(self):
        m = RunningMean()
        m.preload(0.5, 10)
        assert m.value == 0.5
        assert m.count == 10
        m.add(1.6)  # (0.5*10 + 1.6)/11
        assert m.value == pytest.approx(6.6 / 11)

    def test_preload_validation(self):
        with pytest.raises(ValueError):
            RunningMean().preload(1.0, 0)
        with pytest.raises(ValueError):
            RunningMean().preload(-1.0, 5)

    def test_clone_is_fresh(self):
        m = RunningMean()
        m.add(1.0)
        c = m.clone()
        assert c.count == 0 and c.value is None


class TestEWMA:
    def test_first_sample_initialises(self):
        e = EWMA(0.5)
        e.add(4.0)
        assert e.value == 4.0

    def test_weighting(self):
        e = EWMA(0.5)
        e.add(4.0)
        e.add(2.0)
        assert e.value == pytest.approx(3.0)

    def test_tracks_drift_faster_than_mean(self):
        e, m = EWMA(0.3), RunningMean()
        for _ in range(50):
            e.add(1.0)
            m.add(1.0)
        for _ in range(10):
            e.add(5.0)
            m.add(5.0)
        assert abs(e.value - 5.0) < abs(m.value - 5.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMA(0.0)
        with pytest.raises(ValueError):
            EWMA(1.5)

    def test_alpha_one_is_last_sample(self):
        e = EWMA(1.0)
        e.add(1.0)
        e.add(9.0)
        assert e.value == 9.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EWMA().add(-0.1)

    def test_preload_and_clone(self):
        e = EWMA(0.4)
        e.preload(2.0, 7)
        assert e.value == 2.0 and e.count == 7
        c = e.clone()
        assert c.count == 0 and c.alpha == 0.4

    @given(durations)
    @settings(max_examples=60, deadline=None)
    def test_value_bounded_by_sample_range(self, xs):
        e = EWMA(0.3)
        for x in xs:
            e.add(x)
        assert min(xs) - 1e-9 <= e.value <= max(xs) + 1e-9


class TestVariance:
    def test_running_mean_variance_none_below_two_samples(self):
        m = RunningMean()
        assert m.variance is None
        m.add(1.0)
        assert m.variance is None
        m.add(1.0)
        assert m.variance == pytest.approx(0.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                    min_size=2, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_welford_matches_batch_sample_variance(self, xs):
        m = RunningMean()
        for x in xs:
            m.add(x)
        assert m.variance == pytest.approx(
            float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-9
        )

    def test_running_mean_preload_with_variance(self):
        m = RunningMean()
        m.preload(0.5, 10, variance=0.04)
        assert m.variance == pytest.approx(0.04)
        # continued learning folds new samples into the Welford state
        m.add(0.5)
        assert m.count == 11
        assert m.variance == pytest.approx(0.04 * 9 / 10)

    def test_preload_variance_validation(self):
        with pytest.raises(ValueError, match="variance"):
            RunningMean().preload(1.0, 5, variance=-0.1)
        with pytest.raises(ValueError, match="variance"):
            EWMA().preload(1.0, 5, variance=-0.1)

    def test_preload_single_sample_has_no_variance(self):
        m = RunningMean()
        m.preload(1.0, 1, variance=0.5)
        assert m.variance is None

    def test_ewma_variance_tracks_jitter(self):
        e = EWMA(0.5)
        assert e.variance is None
        e.add(1.0)
        assert e.variance is None
        for x in (1.0, 3.0, 1.0, 3.0):
            e.add(x)
        assert e.variance is not None and e.variance > 0.0

    def test_ewma_constant_samples_have_zero_variance(self):
        e = EWMA(0.3)
        for _ in range(10):
            e.add(2.0)
        assert e.variance == pytest.approx(0.0)

    def test_ewma_preload_with_variance(self):
        e = EWMA(0.4)
        e.preload(2.0, 7, variance=0.25)
        assert e.variance == pytest.approx(0.25)


class TestFactory:
    def test_mean(self):
        assert isinstance(make_estimator("mean"), RunningMean)
        assert isinstance(make_estimator("arithmetic"), RunningMean)

    def test_ewma_with_options(self):
        e = make_estimator("ewma", alpha=0.7)
        assert isinstance(e, EWMA) and e.alpha == 0.7

    def test_weighted_alias(self):
        assert isinstance(make_estimator("weighted"), EWMA)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("median")

    def test_mean_rejects_options(self):
        with pytest.raises(ValueError):
            make_estimator("mean", alpha=0.1)
