"""Tests for the versioning scheduler — the paper's contribution."""

import pytest

from repro.core.versioning import VersioningScheduler
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel, TableCostModel
from repro.sim.topology import minotauro_node

from tests.conftest import MB, make_machine, make_two_version_task, region, run_tasks


def burst(work, n, size=MB):
    return [(work, region(("x", i), size), region(("y", i), size)) for i in range(n)]


class TestConstruction:
    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            VersioningScheduler(lam=0)

    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(ValueError):
            VersioningScheduler(queue_depth=0)

    def test_grouping_by_name(self):
        s = VersioningScheduler(grouping="relative",
                                grouping_options={"tolerance": 0.2})
        assert s.table.grouping.name == "relative"

    def test_grouping_options_with_instance_rejected(self):
        from repro.core.grouping import ExactSizeGrouping

        with pytest.raises(ValueError):
            VersioningScheduler(grouping=ExactSizeGrouping(),
                                grouping_options={"tolerance": 0.1})


class TestLearningPhase:
    def test_every_version_runs_at_least_lambda_times(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler(lam=3)
        res = run_tasks(m, sched, burst(work, 40))
        counts = res.version_counts["work_smp"]
        assert counts.get("work_smp", 0) >= 3
        assert counts.get("work_gpu", 0) >= 3

    def test_learning_dispatches_counted(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler(lam=3)
        run_tasks(m, sched, burst(work, 40))
        assert sched.learning_dispatches >= 6
        assert sched.reliable_dispatches > 0
        assert sched.learning_dispatches + sched.reliable_dispatches == 40

    def test_higher_lambda_learns_longer(self):
        def learning_count(lam):
            m = make_machine(2, 1)
            work, _ = make_two_version_task(machine=m)
            sched = VersioningScheduler(lam=lam)
            run_tasks(m, sched, burst(work, 60))
            return sched.learning_dispatches

        assert learning_count(5) > learning_count(1)

    def test_table_populated_after_run(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler()
        run_tasks(m, sched, burst(work, 20))
        group = sched.table.group("work_smp", 2 * MB)
        assert group.mean_time("work_smp") == pytest.approx(0.010, rel=0.05)
        assert group.mean_time("work_gpu") == pytest.approx(0.001, rel=0.3)


class TestReliablePhase:
    def test_fastest_version_dominates(self):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(machine=m, smp_cost=0.050, gpu_cost=0.001)
        res = run_tasks(m, "versioning", burst(work, 100))
        counts = res.version_counts["work_smp"]
        assert counts["work_gpu"] > counts.get("work_smp", 0) * 5

    def test_slow_workers_share_when_fast_is_busy(self):
        """The Figure 5 decision: idle slower SMP workers pick up tasks
        while the single fastest GPU executor is saturated."""
        m = make_machine(4, 1)
        # SMP only 4x slower: cooperation clearly worthwhile
        work, _ = make_two_version_task(machine=m, smp_cost=0.004, gpu_cost=0.001)
        res = run_tasks(m, "versioning", burst(work, 200))
        counts = res.version_counts["work_smp"]
        assert counts.get("work_smp", 0) > 20

    def test_cooperation_beats_gpu_alone(self):
        work_gpu_only, reg1 = make_two_version_task(name="only")

        def gpu_only_calls(m):
            reg = {}

            @task(inputs=["x"], outputs=["y"], device="cuda", name="solo",
                  registry=reg)
            def solo(x, y):
                pass

            m.register_kernel_for_kind("cuda", "solo", FixedCostModel(0.001))
            return [(solo, region(("x", i)), region(("y", i))) for i in range(200)]

        m1 = make_machine(4, 1)
        res_solo = run_tasks(m1, "dep", gpu_only_calls(m1))
        m2 = make_machine(4, 1)
        work, _ = make_two_version_task(machine=m2, smp_cost=0.004, gpu_cost=0.001)
        res_hyb = run_tasks(m2, "versioning", burst(work, 200))
        assert res_hyb.makespan < res_solo.makespan

    def test_no_slow_worker_tail(self):
        """The paper's 'final part' observation: near the end the
        scheduler stops feeding slow workers so the makespan is not
        extended by a straggling SMP task.  Cooperative throughput of
        1 GPU (1 ms/task) + 4 SMP (4 ms/task) is 2000 task/s; a tail
        would blow the makespan well past the ideal 150 ms."""
        m = make_machine(4, 1)
        work, _ = make_two_version_task(machine=m, smp_cost=0.004, gpu_cost=0.001)
        sched = VersioningScheduler(lam=3)
        res = run_tasks(m, sched, burst(work, 300))
        ideal = 300 / 2000.0
        last_task_end = max(r.end for r in res.trace.by_category("task"))
        assert last_task_end < ideal * 1.15  # makespan additionally pays the flush

    def test_sixty_x_gap_keeps_smp_marginal(self):
        """With a 60x version gap (the matmul regime) the SMP workers see
        only λ learning runs plus a few room-gated fallback dispatches."""
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m, smp_cost=0.060, gpu_cost=0.001)
        sched = VersioningScheduler(lam=1)
        res = run_tasks(m, sched, burst(work, 50))
        counts = res.version_counts["work_smp"]
        assert counts.get("work_smp", 0) <= 4
        assert counts.get("work_gpu", 0) >= 40


class TestSizeGroups:
    def test_new_size_triggers_new_learning(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler(lam=3)
        calls = burst(work, 30, size=MB) + burst(work, 30, size=5 * MB)
        run_tasks(m, sched, calls)
        vs = sched.table.version_set("work_smp")
        assert len(vs) == 2  # two size groups
        # each group learned independently: λ executions per version
        for grp in vs.groups():
            assert grp.executions("work_smp") >= 3
            assert grp.executions("work_gpu") >= 3

    def test_range_grouping_shares_learning_across_jitter(self):
        def learning(grouping, opts=None):
            m = make_machine(2, 1)
            work, _ = make_two_version_task(machine=m)
            sched = VersioningScheduler(lam=3, grouping=grouping,
                                        grouping_options=opts)
            calls = [
                (work, region(("x", i), MB + i % 7), region(("y", i), MB))
                for i in range(40)
            ]
            run_tasks(m, sched, calls)
            return sched.learning_dispatches

        assert learning("relative", {"tolerance": 0.1}) < learning("exact")


class TestAdaptation:
    def test_never_stops_learning_with_ewma(self):
        """Drifting task behaviour: after the SMP version suddenly gets
        faster than the GPU one, an EWMA-estimating scheduler flips its
        preference — 'the scheduler is always learning'."""
        m = minotauro_node(1, 1, noise_cv=0.0)
        work, _ = make_two_version_task()
        # SMP cost drops sharply with repeated size (simulating drift) is
        # hard to express with static models; instead make GPU cost high
        # only for large sample counts via a table keyed by size: use two
        # phases with different sizes instead.
        m.register_kernel_for_kind("smp", "work_smp", FixedCostModel(0.002))
        m.register_kernel_for_kind("cuda", "work_gpu", FixedCostModel(0.001))
        sched = VersioningScheduler(estimator="ewma",
                                    estimator_options={"alpha": 0.5})
        res = run_tasks(m, sched, burst(work, 30))
        assert sum(res.version_counts["work_smp"].values()) == 30

    def test_hints_skip_learning(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        cold = VersioningScheduler(lam=3)
        run_tasks(m, cold, burst(work, 30))
        snap = cold.table.to_dict()

        m2 = make_machine(2, 1)
        work2, reg2 = make_two_version_task(machine=m2)
        warm = VersioningScheduler(lam=3, hints=snap)
        calls = [(work2, region(("x", i)), region(("y", i))) for i in range(30)]
        run_tasks(m2, warm, calls)
        assert warm.learning_dispatches == 0
        assert cold.learning_dispatches > 0


class TestBusyEstimates:
    def test_estimates_return_to_zero_when_idle(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler()
        run_tasks(m, sched, burst(work, 25))
        for w in sched.workers:
            assert sched.estimated_busy_time(w) == pytest.approx(0.0, abs=1e-12)

    def test_pool_drains(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler()
        run_tasks(m, sched, burst(work, 25))
        assert sched.pool_size() == 0


class TestErrors:
    def test_task_with_no_runnable_version_raises(self):
        m = make_machine(2, 0)  # no GPU
        reg = {}

        @task(device="cuda", name="gpu_only", registry=reg)
        def gpu_only():
            pass

        rt = OmpSsRuntime(m, "versioning")
        with pytest.raises(RuntimeError, match="no worker"):
            with rt:
                gpu_only()
