"""Tests for the TaskVersionSet data model (Table I)."""

import pytest

from repro.core.estimator import EWMA
from repro.core.grouping import ExactSizeGrouping, RelativeSizeGrouping
from repro.core.profile import (
    SizeGroupProfile,
    TaskVersionSet,
    VersionProfile,
    VersionProfileTable,
)

MB = 1024**2


class TestVersionProfile:
    def test_record_updates_mean_and_count(self):
        p = VersionProfile("v1")
        p.record(0.010)
        p.record(0.020)
        assert p.executions == 2
        assert p.mean_time == pytest.approx(0.015)

    def test_assigned_decrements_on_record(self):
        p = VersionProfile("v1")
        p.assigned = 2
        p.record(0.01)
        assert p.assigned == 1


class TestSizeGroupProfile:
    def test_profiles_created_on_demand(self):
        g = SizeGroupProfile(2 * MB, 2 * MB)
        assert g.executions("v1") == 0
        assert g.mean_time("v1") is None

    def test_in_learning_until_lambda_everywhere(self):
        g = SizeGroupProfile(MB, MB)
        names = ["a", "b"]
        for _ in range(3):
            g.record("a", 0.01)
        assert g.in_learning_phase(names, 3)  # b still unlearned
        for _ in range(3):
            g.record("b", 0.02)
        assert not g.in_learning_phase(names, 3)

    def test_least_assigned_round_robins(self):
        g = SizeGroupProfile(MB, MB)
        names = ["a", "b", "c"]
        picks = []
        for _ in range(6):
            v = g.least_assigned(names)
            g.note_assigned(v)
            picks.append(v)
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_least_assigned_counts_executions(self):
        g = SizeGroupProfile(MB, MB)
        g.record("a", 0.01)
        assert g.least_assigned(["a", "b"]) == "b"

    def test_least_assigned_empty_rejected(self):
        with pytest.raises(ValueError):
            SizeGroupProfile(MB, MB).least_assigned([])

    def test_fastest_version(self):
        g = SizeGroupProfile(MB, MB)
        g.record("slow", 0.030)
        g.record("fast", 0.018)
        g.record("mid", 0.025)
        assert g.fastest_version(["slow", "fast", "mid"]) == "fast"

    def test_fastest_requires_data(self):
        with pytest.raises(ValueError):
            SizeGroupProfile(MB, MB).fastest_version(["a"])

    def test_total_executions(self):
        g = SizeGroupProfile(MB, MB)
        g.record("a", 0.01)
        g.record("b", 0.01)
        g.record("a", 0.01)
        assert g.total_executions() == 3

    def test_estimator_prototype_cloned(self):
        g = SizeGroupProfile(MB, MB, estimator_proto=EWMA(0.5))
        p = g.profile("v")
        assert isinstance(p.estimator, EWMA)
        assert p.estimator.alpha == 0.5


class TestTaskVersionSet:
    def test_groups_by_size(self):
        s = TaskVersionSet("task1")
        g1 = s.group_for(2 * MB)
        g2 = s.group_for(3 * MB)
        assert g1 is not g2
        assert s.group_for(2 * MB) is g1
        assert len(s) == 2

    def test_relative_grouping_merges_close_sizes(self):
        s = TaskVersionSet("t", grouping=RelativeSizeGrouping(0.1))
        assert s.group_for(MB) is s.group_for(MB + 1)


class TestVersionProfileTable:
    def make_table_like_paper(self):
        """Reproduce Table I's contents exactly."""
        t = VersionProfileTable()
        g1 = t.group("task1", 2 * MB)
        for v, ms, n in (("task1-v1", 30, 200), ("task1-v2", 18, 350),
                         ("task1-v3", 25, 230)):
            g1.profile(v).estimator.preload(ms / 1e3, n)
        g2 = t.group("task1", 3 * MB)
        for v, ms, n in (("task1-v1", 45, 80), ("task1-v2", 25, 300),
                         ("task1-v3", 40, 120)):
            g2.profile(v).estimator.preload(ms / 1e3, n)
        g3 = t.group("task2", 5 * MB)
        for v, ms, n in (("task2-v1", 15, 40), ("task2-v2", 20, 3)):
            g3.profile(v).estimator.preload(ms / 1e3, n)
        return t

    def test_render_contains_paper_rows(self):
        out = self.make_table_like_paper().render()
        assert "task1" in out and "task2" in out
        assert "2 MB" in out and "3 MB" in out and "5 MB" in out
        assert "<task1-v2, 18.0ms, 350>" in out
        assert "<task2-v2, 20.0ms, 3>" in out

    def test_fastest_executor_matches_paper(self):
        t = self.make_table_like_paper()
        names = ["task1-v1", "task1-v2", "task1-v3"]
        assert t.group("task1", 2 * MB).fastest_version(names) == "task1-v2"
        assert t.group("task1", 3 * MB).fastest_version(names) == "task1-v2"

    def test_to_dict_roundtrip_via_preload(self):
        t = self.make_table_like_paper()
        snap = t.to_dict()
        t2 = VersionProfileTable()
        t2.preload(snap)
        g = t2.group("task1", 2 * MB)
        assert g.mean_time("task1-v2") == pytest.approx(0.018)
        assert g.executions("task1-v2") == 350

    def test_preload_skips_empty_versions(self):
        t = VersionProfileTable()
        t.preload({"tasks": {"t": [{"representative_bytes": 100,
                                    "versions": {"v": {"mean_time": None,
                                                       "executions": 0}}}]}})
        assert t.group("t", 100).executions("v") == 0

    def test_preload_regroups_with_own_grouping(self):
        src = VersionProfileTable()
        src.group("t", MB).profile("v").estimator.preload(0.01, 5)
        src.group("t", MB + 1).profile("v").estimator.preload(0.02, 5)
        dst = VersionProfileTable(grouping=RelativeSizeGrouping(0.1))
        dst.preload(src.to_dict())
        # both source groups merge into one under relative grouping
        assert len(dst.version_set("t")) == 1
        assert dst.group("t", MB).executions("v") == 5

    def test_contains(self):
        t = VersionProfileTable()
        assert "t" not in t
        t.group("t", 1)
        assert "t" in t


class TestVarianceRoundTrip:
    def test_profile_exposes_variance_and_stddev(self):
        p = VersionProfile("v1")
        for x in (0.010, 0.020, 0.030):
            p.record(x)
        assert p.variance == pytest.approx(1e-4)
        assert p.stddev == pytest.approx(0.01)

    def test_variance_none_below_two_samples(self):
        p = VersionProfile("v1")
        assert p.variance is None and p.stddev is None
        p.record(0.01)
        assert p.variance is None and p.stddev is None

    def test_to_dict_carries_variance_and_preload_restores_it(self):
        t = VersionProfileTable()
        g = t.group("t", MB)
        for x in (0.010, 0.020, 0.030):
            g.record("v", x)
        snap = t.to_dict()
        entry = snap["tasks"]["t"][0]["versions"]["v"]
        assert entry["variance"] == pytest.approx(1e-4)

        t2 = VersionProfileTable()
        t2.preload(snap)
        p2 = t2.group("t", MB).profile("v")
        assert p2.executions == 3
        assert p2.variance == pytest.approx(1e-4)
        assert p2.stddev == pytest.approx(0.01)

    def test_to_dict_omits_variance_when_unknown(self):
        t = VersionProfileTable()
        t.group("t", MB).record("v", 0.01)  # one sample: no variance yet
        entry = t.to_dict()["tasks"]["t"][0]["versions"]["v"]
        assert "variance" not in entry

    def test_preload_without_variance_still_works(self):
        t = VersionProfileTable()
        t.preload({"tasks": {"t": [{"representative_bytes": MB,
                                    "versions": {"v": {"mean_time": 0.01,
                                                       "executions": 5}}}]}})
        p = t.group("t", MB).profile("v")
        assert p.mean_time == pytest.approx(0.01)
        assert p.variance is None or p.variance == pytest.approx(0.0)
