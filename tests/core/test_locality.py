"""Tests for the locality-aware versioning variant (§VII)."""

import pytest

from repro.core.locality import LocalityVersioningScheduler
from repro.core.versioning import VersioningScheduler
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel
from repro.sim.topology import minotauro_node

from tests.conftest import MB, region, run_tasks


def gpu_pair_machine():
    return minotauro_node(1, 2, noise_cv=0.0)


def make_gpu_task(machine, cost=0.002):
    reg = {}

    @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
    def k(x, y):
        pass

    machine.register_kernel_for_kind("cuda", "k", FixedCostModel(cost))
    return k


class TestPenalty:
    def test_penalty_zero_when_data_local(self):
        m = gpu_pair_machine()
        k = make_gpu_task(m)
        sched = LocalityVersioningScheduler()
        rt = OmpSsRuntime(m, sched)
        x = region("x", 6 * MB)
        with rt:
            k(x, region(("y", 0), MB))
        # after the run x is valid on the gpu that ran the task
        space = next(s for s in ("gpu0", "gpu1") if rt.directory.is_valid(x, s))
        w = next(w for w in rt.workers if w.space == space)
        from repro.runtime.task import TaskInstance

        inst = TaskInstance(k.definition, k.build_accesses(x, region(("y", 1), MB)))
        assert sched._placement_penalty(inst, k.definition.main_version, w) == 0.0

    def test_penalty_prices_missing_bytes(self):
        m = gpu_pair_machine()
        k = make_gpu_task(m)
        sched = LocalityVersioningScheduler()
        rt = OmpSsRuntime(m, sched)
        from repro.runtime.task import TaskInstance

        x = region("x", 6 * 10**9)  # 1 s over PCIe
        rt.directory.register(x)
        inst = TaskInstance(k.definition, k.build_accesses(x, region("y", MB)))
        w0 = next(w for w in rt.workers if w.space == "gpu0")
        pen = sched._placement_penalty(inst, k.definition.main_version, w0)
        assert pen == pytest.approx(1.0 + 15e-6)

    def test_smp_worker_reading_host_data_penalty_free(self):
        m = minotauro_node(1, 1, noise_cv=0.0)
        reg = {}

        @task(inputs=["x"], outputs=["y"], device="smp", name="s", registry=reg)
        def s(x, y):
            pass

        m.register_kernel_for_kind("smp", "s", FixedCostModel(0.001))
        sched = LocalityVersioningScheduler()
        rt = OmpSsRuntime(m, sched)
        from repro.runtime.task import TaskInstance

        x = region("x", MB)
        rt.directory.register(x)
        inst = TaskInstance(s.definition, s.build_accesses(x, region("y", MB)))
        w = next(w for w in rt.workers if w.space == "host")
        assert sched._placement_penalty(inst, s.definition.main_version, w) == 0.0


class TestBehaviour:
    def test_locality_reduces_transfers_on_reused_inputs(self):
        """Tasks repeatedly reading a handful of large inputs: the plain
        scheduler balances purely on busy time and replicates the inputs
        on both GPUs; the locality variant keeps each input's tasks on
        the GPU already holding it."""

        def run_with(scheduler_cls):
            m = gpu_pair_machine()
            k = make_gpu_task(m, cost=0.004)
            xs = [region(("x", i), 48 * MB) for i in range(2)]
            calls = [(k, xs[i % 2], region(("y", i), MB)) for i in range(40)]
            return run_tasks(m, scheduler_cls(), calls)

        plain = run_with(VersioningScheduler)
        local = run_with(LocalityVersioningScheduler)
        assert (
            local.transfer_stats.input_tx <= plain.transfer_stats.input_tx
        )
        assert local.transfer_stats.input_tx <= 2 * 48 * MB  # each input once

    def test_registered_in_registry(self):
        from repro.schedulers.registry import create_scheduler

        s = create_scheduler("versioning-locality")
        assert isinstance(s, LocalityVersioningScheduler)
        assert s.name == "versioning-locality"
