"""Tests for versioning-scheduler tunables and secondary behaviours."""

import pytest

from repro.core.versioning import VersioningScheduler
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import minotauro_node

from tests.conftest import MB, make_machine, make_two_version_task, region, run_tasks


def burst(work, n, size=MB):
    return [(work, region(("x", i), size), region(("y", i), size)) for i in range(n)]


class TestQueueDepth:
    @pytest.mark.parametrize("depth", [1, 2, 4, 8])
    def test_any_depth_completes_all_tasks(self, depth):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        sched = VersioningScheduler(queue_depth=depth)
        res = run_tasks(m, sched, burst(work, 50))
        assert res.tasks_completed == 50

    def test_depth_bounds_queues_while_estimates_unknown(self):
        """Post-λ dispatches with unknown estimates are room-gated: with
        λ=1 the mandatory runs are one per version, everything else must
        respect the queue bound (or wait in the pool)."""
        m = make_machine(2, 1, noise=0.0)
        work, _ = make_two_version_task(machine=m, smp_cost=1.0, gpu_cost=1.0)
        sched = VersioningScheduler(queue_depth=2, lam=1)
        rt = OmpSsRuntime(m, sched)
        with rt:
            for i in range(12):
                work(region(("x", i)), region(("y", i)))
            # at t=0 nothing has finished; each worker holds at most the
            # room bound plus possibly one mandatory λ run
            for w in rt.workers:
                assert w.load() <= 2 + 1
            assert sched.pool_size() > 0  # the surplus waits in the pool
        rt.result()


class TestEstimatorSelection:
    def test_ewma_option_propagates(self):
        sched = VersioningScheduler(estimator="ewma", estimator_options={"alpha": 0.9})
        m = make_machine(1, 1)
        work, reg = make_two_version_task()
        reg(m)
        run_tasks(m, sched, burst(work, 10))
        group = sched.table.group("work_smp", 2 * MB)
        from repro.core.estimator import EWMA

        est = group.profile("work_gpu").estimator
        assert isinstance(est, EWMA)
        assert est.alpha == 0.9

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValueError):
            VersioningScheduler(estimator="median")


class TestSchedulerOptionsViaRuntime:
    def test_options_passed_through_runtime_constructor(self):
        m = make_machine(1, 1)
        rt = OmpSsRuntime(m, "versioning", scheduler_options={"lam": 9})
        assert rt.scheduler.lam == 9

    def test_options_with_instance_rejected(self):
        m = make_machine(1, 1)
        with pytest.raises(ValueError):
            OmpSsRuntime(m, VersioningScheduler(), scheduler_options={"lam": 2})


class TestMultiplePhases:
    def test_profiles_survive_taskwait_phases(self):
        """One runtime, several taskwait-separated phases: learning done
        in phase 1 carries into phase 2 (no relearning)."""
        m = make_machine(2, 1)
        work, reg = make_two_version_task()
        reg(m)
        sched = VersioningScheduler(lam=3)
        rt = OmpSsRuntime(m, sched)
        with rt:
            for i in range(20):
                work(region(("p1", i)), region(("q1", i)))
            rt.taskwait()
            after_phase1 = sched.learning_dispatches
            for i in range(20):
                work(region(("p2", i)), region(("q2", i)))
        assert sched.learning_dispatches == after_phase1  # no new learning

    def test_two_apps_one_runtime_share_nothing(self):
        """The Table I scenario: distinct task sets profile separately."""
        from repro.apps.matmul import MatmulApp

        m = minotauro_node(2, 1, noise_cv=0.0)
        a = MatmulApp(n_tiles=2, tile_size=256, variant="hyb")
        b = MatmulApp(n_tiles=2, tile_size=512, variant="hyb")
        a.register_cost_models(m)
        b.register_cost_models(m)
        sched = VersioningScheduler()
        rt = OmpSsRuntime(m, sched)
        with rt:
            a.master(rt)
            rt.taskwait()
            b.master(rt)
        rt.result()
        vset = sched.table.version_set("matmul_tile_cublas")
        assert len(vset) == 2  # two size groups, independently learned
