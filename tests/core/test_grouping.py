"""Tests for data-set-size grouping strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    ExactSizeGrouping,
    FixedBinGrouping,
    RelativeSizeGrouping,
    make_grouping,
)


class TestExact:
    def test_distinct_sizes_distinct_groups(self):
        """The paper's §VII weakness: 1 byte apart = different groups."""
        g = ExactSizeGrouping()
        assert g.key(1000) != g.key(1001)

    def test_same_size_same_group(self):
        g = ExactSizeGrouping()
        assert g.key(12345) == g.key(12345)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExactSizeGrouping().key(-1)

    def test_label_human_readable(self):
        g = ExactSizeGrouping()
        assert g.label(g.key(2 * 1024**2)) == "2 MB"
        assert g.label(g.key(512)) == "512 B"


class TestRelative:
    def test_one_byte_apart_same_group(self):
        g = RelativeSizeGrouping(0.1)
        assert g.key(10**6) == g.key(10**6 + 1)

    def test_far_apart_different_groups(self):
        g = RelativeSizeGrouping(0.1)
        assert g.key(10**6) != g.key(2 * 10**6)

    def test_zero_has_own_group(self):
        g = RelativeSizeGrouping(0.1)
        assert g.key(0) == -1
        assert g.key(0) != g.key(1)
        assert g.label(-1) == "0 B"

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            RelativeSizeGrouping(0.0)

    @given(
        st.integers(min_value=1024, max_value=10**12),
        st.floats(min_value=-0.04, max_value=0.04),
    )
    @settings(max_examples=100, deadline=None)
    def test_nearby_sizes_share_or_neighbour(self, size, jitter):
        """Sizes within ~half the tolerance land in the same or an
        adjacent bucket — never far apart.  (Sizes below ~1 KB are
        excluded: integer truncation there breaks the 'nearby' premise,
        e.g. 2 B -> 1 B is a 50% change.)"""
        g = RelativeSizeGrouping(0.1)
        other = max(1, int(size * (1 + jitter)))
        assert abs(g.key(size) - g.key(other)) <= 1

    @given(st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=60, deadline=None)
    def test_keys_monotone(self, size):
        g = RelativeSizeGrouping(0.1)
        assert g.key(size) <= g.key(size * 2)


class TestFixedBin:
    def test_binning(self):
        g = FixedBinGrouping(100)
        assert g.key(0) == 0
        assert g.key(99) == 0
        assert g.key(100) == 1

    def test_label_shows_range(self):
        g = FixedBinGrouping(1024)
        assert g.label(0) == "[0 B, 1 KB)"

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedBinGrouping(0)


class TestFactory:
    def test_names(self):
        assert isinstance(make_grouping("exact"), ExactSizeGrouping)
        assert isinstance(make_grouping("relative", tolerance=0.2),
                          RelativeSizeGrouping)
        assert isinstance(make_grouping("range"), RelativeSizeGrouping)
        assert isinstance(make_grouping("fixed-bin", bin_bytes=10),
                          FixedBinGrouping)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_grouping("fuzzy")

    def test_exact_rejects_options(self):
        with pytest.raises(ValueError):
            make_grouping("exact", tolerance=0.1)
