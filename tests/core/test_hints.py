"""Tests for external hint files (XML / JSON)."""

import pytest

from repro.core.hints import load_hints, save_hints
from repro.core.profile import VersionProfileTable

MB = 1024**2


def make_table():
    t = VersionProfileTable()
    g = t.group("task1", 2 * MB)
    g.profile("v1").estimator.preload(0.030, 200)
    g.profile("v2").estimator.preload(0.018, 350)
    g2 = t.group("task1", 3 * MB)
    g2.profile("v1").estimator.preload(0.045, 80)
    t.group("task2", 5 * MB).profile("w1").estimator.preload(0.015, 40)
    return t


class TestRoundtrip:
    @pytest.mark.parametrize("ext", ["xml", "json"])
    def test_roundtrip_preserves_profiles(self, tmp_path, ext):
        path = tmp_path / f"hints.{ext}"
        save_hints(make_table(), path)
        snap = load_hints(path)
        t2 = VersionProfileTable()
        t2.preload(snap)
        assert t2.group("task1", 2 * MB).mean_time("v2") == pytest.approx(0.018)
        assert t2.group("task1", 2 * MB).executions("v2") == 350
        assert t2.group("task2", 5 * MB).executions("w1") == 40

    def test_format_inferred_from_extension(self, tmp_path):
        p = tmp_path / "hints.json"
        save_hints(make_table(), p)
        assert p.read_text().lstrip().startswith("{")
        p2 = tmp_path / "hints.xml"
        save_hints(make_table(), p2)
        assert b"<versioning-hints" in p2.read_bytes()

    def test_format_forced(self, tmp_path):
        p = tmp_path / "hints.dat"
        save_hints(make_table(), p, format="json")
        assert load_hints(p, format="json")["tasks"]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_hints(make_table(), tmp_path / "h.yaml")

    def test_grouping_and_estimator_metadata_kept(self, tmp_path):
        p = tmp_path / "h.xml"
        save_hints(make_table(), p)
        snap = load_hints(p)
        assert snap["grouping"] == "exact"
        assert snap["estimator"] == "mean"

    def test_versions_with_no_executions_dropped(self, tmp_path):
        t = VersionProfileTable()
        t.group("t", 100).profile("never_ran")  # 0 executions
        p = tmp_path / "h.xml"
        save_hints(t, p)
        snap = load_hints(p)
        assert snap["tasks"]["t"][0]["versions"] == {}


class TestMalformed:
    def test_bad_xml_rejected(self, tmp_path):
        p = tmp_path / "h.xml"
        p.write_text("<not-closed")
        with pytest.raises(ValueError, match="malformed"):
            load_hints(p)

    def test_wrong_root_rejected(self, tmp_path):
        p = tmp_path / "h.xml"
        p.write_text("<something/>")
        with pytest.raises(ValueError, match="not a hints file"):
            load_hints(p)

    def test_task_without_name_rejected(self, tmp_path):
        p = tmp_path / "h.xml"
        p.write_text("<versioning-hints><task/></versioning-hints>")
        with pytest.raises(ValueError, match="without name"):
            load_hints(p)

    def test_json_missing_tasks_rejected(self, tmp_path):
        p = tmp_path / "h.json"
        p.write_text("{}")
        with pytest.raises(ValueError, match="missing top-level"):
            load_hints(p)

    def test_json_group_missing_bytes_rejected(self, tmp_path):
        p = tmp_path / "h.json"
        p.write_text('{"tasks": {"t": [{"versions": {}}]}}')
        with pytest.raises(ValueError, match="representative_bytes"):
            load_hints(p)

    def test_json_groups_not_list_rejected(self, tmp_path):
        p = tmp_path / "h.json"
        p.write_text('{"tasks": {"t": {}}}')
        with pytest.raises(ValueError, match="not a list"):
            load_hints(p)

    def test_truncated_json_rejected_with_clear_error(self, tmp_path):
        p = tmp_path / "h.json"
        save_hints(make_table(), p)
        text = p.read_text()
        p.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="truncated or invalid"):
            load_hints(p)


class TestFormatEquivalence:
    def test_xml_and_json_snapshots_are_equivalent(self, tmp_path):
        """The two serialisations of one table preload identically."""
        xml_p, json_p = tmp_path / "h.xml", tmp_path / "h.json"
        save_hints(make_table(), xml_p)
        save_hints(make_table(), json_p)
        assert load_hints(xml_p) == load_hints(json_p)

    def test_cross_format_roundtrip(self, tmp_path):
        """JSON -> table -> XML -> table preserves every profile."""
        json_p = tmp_path / "h.json"
        save_hints(make_table(), json_p)
        t2 = VersionProfileTable()
        t2.preload(load_hints(json_p))
        xml_p = tmp_path / "h2.xml"
        save_hints(t2, xml_p)
        assert load_hints(xml_p) == load_hints(json_p)

    def test_legacy_snapshot_migrates_to_store_schema(self, tmp_path):
        """Both legacy formats lift to identical schema-v2 payloads."""
        from repro.store import SCHEMA_VERSION, read_payload

        xml_p, json_p = tmp_path / "h.xml", tmp_path / "h.json"
        save_hints(make_table(), xml_p)
        save_hints(make_table(), json_p)
        a, b = read_payload(xml_p), read_payload(json_p)
        assert a["schema_version"] == b["schema_version"] == SCHEMA_VERSION
        assert a["tasks"] == b["tasks"]
