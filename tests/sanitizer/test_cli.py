"""Tests for the ``python -m repro.sanitizer`` CLI."""

import pathlib
import subprocess
import sys

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.sanitizer", *args],
        capture_output=True,
        text=True,
        cwd=cwd or str(REPO_ROOT),
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_clean_tree_exits_zero(self):
        proc = run_cli("examples/", "src/repro/apps/")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_findings_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text('''
from repro.runtime.directives import task

@task(inputs=["a", "missing"], outputs=["b"])
def f(a, b):
    b[:] = a
''')
        proc = run_cli(str(bad))
        assert proc.returncode == 1
        assert "SAN-L001" in proc.stdout
        assert "missing" in proc.stdout

    def test_list_codes(self):
        proc = run_cli("--list-codes")
        assert proc.returncode == 0
        for code in ("SAN-L001", "SAN-R001", "SAN-R010", "SAN-T001", "SAN-T005"):
            assert code in proc.stdout

    def test_no_paths_is_usage_error(self):
        proc = run_cli()
        assert proc.returncode == 2

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("this is ( not python")
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 0
