"""Tests for the AST effect inference pass (SAN-S001..S005)."""

import pathlib

import numpy as np
import pytest

from repro.runtime.directives import target, task
from repro.runtime.runtime import OmpSsRuntime
from repro.sanitizer.static import check_definitions, check_effect_paths
from repro.sim.perfmodel import AffineBytesCostModel
from repro.sim.topology import minotauro_node

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def codes_by_task(diags):
    out = {}
    for d in diags:
        name = d.message.split("'")[1]
        out.setdefault(name, set()).add(d.code)
    return out


class TestSeededBugs:
    @pytest.fixture(scope="class")
    def diags(self):
        return check_effect_paths([str(FIXTURES / "effect_bugs.py")])

    def test_every_seeded_bug_is_caught(self, diags):
        by_task = codes_by_task(diags)
        assert "SAN-S001" in by_task["undeclared_call_write"]
        assert "SAN-S001" in by_task["undeclared_alias_write"]
        assert "SAN-S002" in by_task["dead_clause"]
        assert "SAN-S003" in by_task["downgradable"]
        assert "SAN-S005" in by_task["stale_read"]
        assert "SAN-S004" in by_task["wrong_version"]

    def test_clean_main_version_not_flagged(self, diags):
        assert "main_k" not in codes_by_task(diags)

    def test_findings_carry_fixture_location(self, diags):
        assert all(d.file and d.file.endswith("effect_bugs.py") for d in diags)
        assert all(d.line for d in diags)


class TestShippedTreeClean:
    def test_apps_and_examples_have_no_effect_findings(self):
        diags = check_effect_paths([
            str(REPO_ROOT / "src" / "repro" / "apps"),
            str(REPO_ROOT / "examples"),
        ])
        assert diags == [], [str(d) for d in diags]


class TestInferenceDetails:
    def check_snippet(self, tmp_path, body):
        p = tmp_path / "snippet.py"
        p.write_text(body)
        return check_effect_paths([str(p)])

    def test_empty_body_is_exempt_from_dead_clause(self, tmp_path):
        diags = self.check_snippet(tmp_path, '''
from repro.runtime.directives import task

@task(inputs=["a"], outputs=["b"])
def timing_only(a, b):
    pass
''')
        assert diags == [], [str(d) for d in diags]

    def test_numpy_out_kwarg_is_a_write(self, tmp_path):
        diags = self.check_snippet(tmp_path, '''
import numpy as np
from repro.runtime.directives import task

@task(inputs=["a", "b", "c"])
def out_kwarg(a, b, c):
    np.add(a, b, out=c)
''')
        assert [d.code for d in diags] == ["SAN-S001"]
        assert "'c'" in diags[0].message

    def test_pure_calls_do_not_write(self, tmp_path):
        diags = self.check_snippet(tmp_path, '''
import math
import numpy as np
from repro.runtime.directives import task

@task(inputs=["a"], outputs=["b"])
def pure_reader(a, b):
    b[:] = math.sqrt(2.0) * np.tanh(a)
''')
        assert diags == [], [str(d) for d in diags]

    def test_unknown_call_escapes_conservatively(self, tmp_path):
        # an unknown callee *may* write its argument: no S002/S003 noise
        diags = self.check_snippet(tmp_path, '''
from repro.runtime.directives import task
from somewhere import mystery

@task(inouts=["c"])
def escaped(c):
    mystery(c)
''')
        assert diags == [], [str(d) for d in diags]


class TestLiveDefinitions:
    def test_preflight_catches_buggy_definition(self):
        registry = {}

        @task(inputs=["a"], outputs=["b"], registry=registry)
        def leaky(a, b):
            b[:] = a * 2.0
            a[0] = -1.0  # undeclared write into an inputs-only param

        diags = check_definitions(registry)
        assert any(d.code == "SAN-S001" and "'a'" in d.message
                   for d in diags), [str(d) for d in diags]

    def test_preflight_skips_callable_clause_specs(self):
        registry = {}

        @task(inputs=lambda a, b: ["a"], outputs=lambda a, b: ["b"],
              registry=registry)
        def dynamic(a, b):
            a[0] = -1.0

        assert check_definitions(registry) == []

    def test_validate_static_flag_on_real_run(self):
        registry = {}

        @target(device="smp")
        @task(inputs=["a"], outputs=["b"], registry=registry)
        def leaky_run(a, b):
            b[:] = a * 2.0
            a[0] = -1.0

        m = minotauro_node(2, 0, seed=1)
        m.register_kernel_for_kind(
            "smp", "leaky_run", AffineBytesCostModel(0.0, 1e9))
        rt = OmpSsRuntime(m, "breadth-first")
        a, b = np.ones(8), np.zeros(8)
        with rt:
            leaky_run(a, b)
        res = rt.result()
        # default: static pre-flight off, dynamic analyses still clean
        assert not any(d.code.startswith("SAN-S0")
                       for d in res.validate(strict=False))
        diags = res.validate(strict=False, static=True)
        assert any(d.code == "SAN-S001" for d in diags), [str(d) for d in diags]
