"""Tests for the trace invariant checker (SAN-T*)."""

import numpy as np
import pytest

from repro.runtime.directives import target, task
from repro.runtime.runtime import OmpSsRuntime
from repro.sanitizer import SanitizerError, check_run, check_trace
from repro.sim.perfmodel import AffineBytesCostModel
from repro.sim.topology import minotauro_node
from repro.sim.trace import Trace

ALL_SCHEDULERS = ["breadth-first", "dependency-aware", "affinity", "versioning"]


def saxpy_run(scheduler, *, n_tasks=40, n_smp=4, n_gpus=2, seed=7):
    """A seeded mixed-device run with real dependences and transfers."""
    registry = {}

    @target(device="smp")
    @task(inputs=["a"], inouts=["b"], registry=registry)
    def saxpy(a, b):
        b += 2.0 * a

    @target(device="cuda", implements=saxpy)
    @task(inputs=["a"], inouts=["b"], registry=registry)
    def saxpy_cuda(a, b):
        b += 2.0 * a

    m = minotauro_node(n_smp, n_gpus, noise_cv=0.05, seed=seed)
    m.register_kernel_for_kind("smp", "saxpy", AffineBytesCostModel(0.0, 1e9))
    m.register_kernel_for_kind(
        "cuda", "saxpy_cuda", AffineBytesCostModel(10e-6, 20e9)
    )
    rt = OmpSsRuntime(m, scheduler)
    a = np.ones(1 << 12)
    bs = [np.zeros(1 << 12) for _ in range(n_tasks)]
    with rt:
        for b in bs:
            saxpy(a, b)
        # chain a second wave onto the same arrays: real RAW edges
        for b in bs[: n_tasks // 2]:
            saxpy(a, b)
    return rt.result()


class TestCleanRunsValidate:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_seeded_run_passes_validation(self, scheduler):
        res = saxpy_run(scheduler)
        assert res.validate() == []

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_check_run_directly(self, scheduler):
        res = saxpy_run(scheduler, n_tasks=12, seed=11)
        assert check_run(res) == []


class TestCorruptedTraces:
    def test_worker_overlap_is_t001(self):
        bad = Trace()
        bad.add(0.0, 2.0, "w:cpu0", "task", "t1", meta=(1,))
        bad.add(1.0, 3.0, "w:cpu0", "task", "t2", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T001"]
        assert diags[0].worker == "w:cpu0"

    def test_task_before_dependence_is_t002(self):
        bad = Trace()
        bad.add(0.0, 2.0, "w:cpu0", "task", "producer", meta=(1,))
        bad.add(0.5, 1.5, "w:cpu1", "task", "consumer", meta=(2,))
        diags = check_trace(bad, deps=[(1, 2)])
        assert [d.code for d in diags] == ["SAN-T002"]
        assert "consumer" in diags[0].message
        assert "producer" in diags[0].message

    def test_both_corruptions_reported_together(self):
        bad = Trace()
        bad.add(0.0, 2.0, "w:cpu0", "task", "t1", meta=(1,))
        bad.add(1.0, 3.0, "w:cpu0", "task", "t2", meta=(2,))
        bad.add(0.5, 1.5, "w:cpu1", "task", "t3", meta=(3,))
        diags = check_trace(bad, deps=[(1, 3)])
        assert sorted(d.code for d in diags) == ["SAN-T001", "SAN-T002"]

    def test_clean_hand_trace_passes(self):
        ok = Trace()
        ok.add(0.0, 1.0, "w:cpu0", "task", "t1", meta=(1,))
        ok.add(1.0, 2.0, "w:cpu1", "task", "t2", meta=(2,))
        assert check_trace(ok, deps=[(1, 2)]) == []

    def test_back_to_back_records_are_not_overlap(self):
        ok = Trace()
        ok.add(0.0, 1.0, "w:cpu0", "task", "t1", meta=(1,))
        ok.add(1.0, 2.0, "w:cpu0", "task", "t2", meta=(2,))
        assert check_trace(ok) == []


class TestWorkerWindows:
    def test_task_on_quarantined_worker_is_t004(self):
        bad = Trace()
        bad.add(1.0, 1.0, "w:gpu0", "quarantine", "cooldown=2")
        bad.add(2.0, 2.5, "w:gpu0", "task", "t1", meta=(1,))  # inside window
        bad.add(3.0, 3.0, "w:gpu0", "readmit", "")
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T004"]
        assert "quarantined" in diags[0].message

    def test_task_starting_at_readmit_is_fine(self):
        ok = Trace()
        ok.add(1.0, 1.0, "w:gpu0", "quarantine", "cooldown=2")
        ok.add(3.0, 3.0, "w:gpu0", "readmit", "")
        ok.add(3.0, 4.0, "w:gpu0", "task", "t1", meta=(1,))
        assert check_trace(ok) == []

    def test_task_on_dead_worker_is_t004(self):
        bad = Trace()
        bad.add(1.0, 1.0, "w:gpu0", "worker-down", "gpu0")
        bad.add(5.0, 6.0, "w:gpu0", "task", "zombie", meta=(1,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T004"]
        assert "dead" in diags[0].message

    def test_task_before_death_is_fine(self):
        ok = Trace()
        ok.add(0.0, 1.0, "w:gpu0", "task", "t1", meta=(1,))
        ok.add(2.0, 2.0, "w:gpu0", "worker-down", "gpu0")
        assert check_trace(ok) == []


class TestRunLevelInvariants:
    def test_corrupted_start_time_is_t003(self):
        """Rewind a GPU consumer's start to before its input transfer."""
        res = saxpy_run("versioning", n_tasks=16)
        transfers = res.trace.by_category("transfer")
        assert transfers, "expected PCIe transfers in a mixed run"
        gpu_spaces = {w.space for w in res.workers if "gpu" in w.name}
        victim = None
        for t in res.graph.tasks():
            w = next((w for w in res.workers if w.name == t.chosen_worker), None)
            if w is None or w.space not in gpu_spaces:
                continue
            read_labels = {a.region.label for a in t.accesses if a.reads}
            for rec in transfers:
                dst = rec.worker.split("->", 1)[1]
                if (
                    dst == w.space
                    and rec.label in read_labels
                    and rec.end <= t.start_time
                    and rec.duration > 0
                ):
                    victim = (t, rec)
                    break
            if victim:
                break
        assert victim is not None, "no GPU task with a completed input transfer"
        t, rec = victim
        # rewind the consumer's start into the middle of its input copy
        t.start_time = (rec.start + rec.end) / 2.0
        diags = check_run(res)
        assert any(d.code == "SAN-T003" for d in diags)

    def test_accounting_mismatch_is_t006(self):
        res = saxpy_run("breadth-first", n_tasks=8)
        res.tasks_completed += 1
        diags = check_run(res)
        assert [d.code for d in diags] == ["SAN-T006"]
        with pytest.raises(SanitizerError):
            res.validate()

    def test_lambda_shortfall_is_t005(self):
        """Raise λ after the fact: recorded executions now violate it."""
        res = saxpy_run("versioning")
        sched = res.scheduler_state
        assert sched.reliable_dispatches > 0, "run too short to graduate"
        assert check_run(res) == []
        sched.lam = 10_000
        diags = check_run(res)
        assert any(d.code == "SAN-T005" for d in diags)
        assert "λ=10000" in next(
            d.message for d in diags if d.code == "SAN-T005"
        )

    def test_versioning_lambda_counters_populated(self):
        res = saxpy_run("versioning")
        sched = res.scheduler_state
        assert sched.group_dispatches
        total_learning = sum(
            c["learning"] for c in sched.group_dispatches.values()
        )
        total_reliable = sum(
            c["reliable"] for c in sched.group_dispatches.values()
        )
        assert total_learning == sched.learning_dispatches
        assert total_reliable == sched.reliable_dispatches


class TestStragglerInvariants:
    def test_unactioned_straggler_is_t007(self):
        bad = Trace()
        bad.add(0.0, 1.0, "w:gpu0", "task", "t1", meta=(1,))
        bad.add(2.0, 2.0, "w:gpu0", "straggler", "v1", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T007"]
        assert "no speculation launch or retry" in diags[0].message

    def test_straggler_followed_by_speculation_is_clean(self):
        ok = Trace()
        ok.add(2.0, 2.0, "w:gpu0", "straggler", "v1", meta=(2,))
        ok.add(2.0, 2.0, "w:smp0", "speculate", "v0", meta=(2,))
        ok.add(2.0, 3.0, "w:smp0", "task", "t2", meta=(2,))
        assert check_trace(ok) == []

    def test_straggler_followed_by_retry_is_clean(self):
        ok = Trace()
        ok.add(2.0, 2.0, "w:gpu0", "straggler", "v1", meta=(2,))
        ok.add(0.5, 2.0, "w:gpu0", "aborted", "v1", meta=(2,))
        ok.add(2.0, 2.0, "w:gpu0", "retry", "v1", meta=(2,))
        ok.add(2.0, 3.0, "w:smp0", "task", "t2", meta=(2,))
        assert check_trace(ok) == []

    def test_followup_must_reference_the_same_task(self):
        bad = Trace()
        bad.add(2.0, 2.0, "w:gpu0", "straggler", "v1", meta=(2,))
        bad.add(2.0, 2.0, "w:smp0", "speculate", "v0", meta=(3,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T007"]

    def test_duplicate_completion_is_t008(self):
        bad = Trace()
        bad.add(0.0, 1.0, "w:gpu0", "task", "t1", meta=(1,))
        bad.add(0.5, 1.5, "w:smp0", "task", "t1", meta=(1,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T008"]
        assert "more than once" in diags[0].message

    def test_distinct_tasks_may_share_labels(self):
        ok = Trace()
        ok.add(0.0, 1.0, "w:gpu0", "task", "t", meta=(1,))
        ok.add(0.5, 1.5, "w:smp0", "task", "t", meta=(2,))
        assert check_trace(ok) == []

    def test_spec_abort_is_busy_time(self):
        # a withdrawn straggler's slice still occupied its worker: another
        # task overlapping it is a real SAN-T001 overlap
        bad = Trace()
        bad.add(0.0, 2.0, "w:gpu0", "spec-abort", "v1", meta=(1,))
        bad.add(1.0, 3.0, "w:gpu0", "task", "t2", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T001"]

    def test_spec_drop_is_not_busy_time(self):
        # a queued copy withdrawn before it ever started leaves only a
        # point marker; it must not count as occupancy on the worker
        ok = Trace()
        ok.add(0.0, 2.0, "w:smp0", "task", "t1", meta=(1,))
        ok.add(1.0, 1.0, "w:smp0", "spec-drop", "v0", meta=(2,))
        assert check_trace(ok) == []


class TestClusterNotifyInvariants:
    """SAN-T009: a cross-shard successor must wait for its notification."""

    def test_successor_before_delivery_is_t009(self):
        bad = Trace()
        bad.add(0.0, 4.0, "w:smp0", "task", "producer", meta=(1,))
        bad.add(4.0, 5.0, "node:host->node1", "notify", "consumer", meta=(2,))
        # the successor starts at 4.2, but its notification lands at 5.0
        bad.add(4.2, 6.0, "w:smp2", "task", "consumer", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T009"]
        assert diags[0].task == "consumer"
        assert diags[0].meta == (2,)
        assert "before its notification" in diags[0].message

    def test_successor_at_or_after_delivery_is_clean(self):
        ok = Trace()
        ok.add(0.0, 4.0, "w:smp0", "task", "producer", meta=(1,))
        ok.add(4.0, 5.0, "node:host->node1", "notify", "consumer", meta=(2,))
        ok.add(5.0, 6.0, "w:smp2", "task", "consumer", meta=(2,))
        assert check_trace(ok) == []

    def test_every_late_notification_is_reported(self):
        bad = Trace()
        bad.add(4.0, 5.0, "node:host->node1", "notify", "c", meta=(2,))
        bad.add(4.0, 7.0, "node:host->node2", "notify", "c", meta=(2,))
        bad.add(6.0, 8.0, "w:smp2", "task", "c", meta=(2,))
        diags = check_trace(bad)
        # started after the first delivery but before the second
        assert [d.code for d in diags] == ["SAN-T009"]
        assert diags[0].meta == (2,)

    def test_notify_without_task_record_is_ignored(self):
        # the successor may legitimately never run (e.g. truncated trace
        # window); nothing to order against
        ok = Trace()
        ok.add(4.0, 5.0, "node:host->node1", "notify", "ghost", meta=(99,))
        assert check_trace(ok) == []

    def test_sharded_cluster_run_validates_clean(self):
        from repro.apps.matmul import MatmulApp
        from repro.sim.topology import cluster_machine

        m = cluster_machine(2, smp_per_node=2, gpus_per_node=1,
                            noise_cv=0.02, seed=7)
        app = MatmulApp(n_tiles=3, variant="hyb")
        res = app.run(m, "cluster", scheduler_options={"partition": "hash"})
        assert res.run.trace.by_category("notify"), "fixture must cross shards"
        assert res.run.validate() == []


class TestReleaseProtocolInvariants:
    """SAN-T010: released exactly once, only on delivered notifications."""

    def test_duplicate_release_is_t010(self):
        bad = Trace()
        bad.add(4.0, 4.0, "node:host", "release", "consumer", meta=(2,))
        bad.add(5.0, 5.0, "node:node1", "release", "consumer", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T010"]
        assert "more than once" in diags[0].message
        assert diags[0].meta == (2,)

    def test_dropped_never_redelivered_release_is_t010(self):
        bad = Trace()
        bad.add(3.0, 4.0, "link:host->node1", "notify-drop", "consumer",
                meta=(2, 5))
        bad.add(4.5, 4.5, "node:node1", "release", "consumer", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T010"]
        assert "dropped and never redelivered" in diags[0].message
        assert diags[0].meta == (2, 5)

    def test_release_before_first_delivery_is_t010(self):
        bad = Trace()
        bad.add(3.0, 5.0, "node:host->node1", "notify", "consumer",
                meta=(2, 5))
        bad.add(4.0, 4.0, "node:node1", "release", "consumer", meta=(2,))
        diags = check_trace(bad)
        assert [d.code for d in diags] == ["SAN-T010"]
        assert "before its notification" in diags[0].message

    def test_retransmitted_drop_is_clean(self):
        # the first transmission is dropped, the retransmit lands, the
        # release waits for it: the logical message was delivered
        ok = Trace()
        ok.add(3.0, 4.0, "link:host->node1", "notify-drop", "consumer",
               meta=(2, 5))
        ok.add(4.5, 5.5, "node:host->node1", "notify", "consumer",
               meta=(2, 5))
        ok.add(5.5, 5.5, "node:node1", "release", "consumer", meta=(2,))
        assert check_trace(ok) == []

    def test_late_duplicate_after_release_is_clean(self):
        # duplicate suppression: the second arrival of wire seq 5 lands
        # after the release, which is fine — the FIRST delivery gates it
        ok = Trace()
        ok.add(3.0, 4.0, "node:host->node1", "notify", "consumer",
               meta=(2, 5))
        ok.add(4.0, 4.0, "node:node1", "release", "consumer", meta=(2,))
        ok.add(4.0, 6.0, "node:host->node1", "notify-dup", "consumer",
               meta=(2, 5))
        ok.add(4.5, 7.0, "w:smp2", "task", "consumer", meta=(2,))
        assert check_trace(ok) == []

    def test_chaos_cluster_run_validates_clean(self):
        from repro.apps.matmul import MatmulApp
        from repro.resilience import FaultPlan, MessageFaultRule
        from repro.sim.topology import cluster_machine

        m = cluster_machine(3, smp_per_node=2, gpus_per_node=1,
                            noise_cv=0.02, seed=7)
        app = MatmulApp(n_tiles=4, variant="hyb")
        plan = FaultPlan(seed=3, message_faults=[MessageFaultRule(drop=0.1)])
        app.register_cost_models(m)
        rt = OmpSsRuntime(m, "cluster",
                          scheduler_options={"partition": "block",
                                             "protocol": {"ack_timeout": 0.001}},
                          fault_plan=plan)
        with rt:
            app.master(rt)
        res = rt.result()
        assert res.trace.by_category("release"), "fixture must release tasks"
        assert res.validate() == []
