"""Tests for the dynamic dependence-race detector (SAN-R*)."""

import numpy as np
import pytest

from repro.runtime.dataregion import AccessKind, DataAccess, region_of
from repro.runtime.dependences import DependenceGraph
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
from repro.sanitizer import SanitizerError
from repro.sanitizer.races import (
    AccessRecorder,
    TrackedArray,
    _Watch,
    check_happens_before,
    summarize,
)
from repro.sim.perfmodel import AffineBytesCostModel
from repro.sim.topology import minotauro_node


def make_machine(kernels, n_smp=2, n_gpus=0):
    m = minotauro_node(n_smp, n_gpus, noise_cv=0.0, seed=3)
    for k in kernels:
        m.register_kernel_for_kind("smp", k, AffineBytesCostModel(0.0, 1e9))
        if n_gpus:
            m.register_kernel_for_kind("cuda", k, AffineBytesCostModel(0.0, 1e10))
    return m


def run_recorded(body_fns, arrays_per_call):
    """Run a list of (task_fn, args) under record_accesses."""
    machine = make_machine({fn.definition.name for fn, _ in body_fns})
    rt = OmpSsRuntime(
        machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
    )
    with rt:
        for fn, args in body_fns:
            fn(*args)
    return rt.result()


class TestTrackedArray:
    def test_reads_via_ufunc(self):
        a = np.ones(8)
        w = _Watch()
        at = a.view(TrackedArray)
        at._watch = w
        _ = at * 2
        assert w.read and not w.written

    def test_write_via_setitem_is_not_a_read(self):
        b = np.zeros(8)
        w = _Watch()
        bt = b.view(TrackedArray)
        bt._watch = w
        bt[:] = 1.0
        assert w.written and not w.read

    def test_inplace_ufunc_is_read_and_write(self):
        b = np.zeros(8)
        w = _Watch()
        bt = b.view(TrackedArray)
        bt._watch = w
        bt += 1.0
        assert w.written and w.read

    def test_getitem_is_a_read(self):
        b = np.arange(8).astype(float)
        w = _Watch()
        bt = b.view(TrackedArray)
        bt._watch = w
        _ = bt[3]
        assert w.read

    def test_view_keeps_watch_fresh_array_drops_it(self):
        b = np.zeros(8)
        w = _Watch()
        bt = b.view(TrackedArray)
        bt._watch = w
        half = bt[:4]          # aliasing view: still watched
        assert half._watch is w
        fresh = bt + 1.0       # plain result: never watched
        assert getattr(fresh, "_watch", None) is None

    def test_setitem_credits_read_of_tracked_source(self):
        a = np.ones(8)
        b = np.zeros(8)
        wa, wb = _Watch(), _Watch()
        at = a.view(TrackedArray)
        at._watch = wa
        bt = b.view(TrackedArray)
        bt._watch = wb
        bt[:] = at
        assert wa.read and wb.written and not wb.read


class TestDeclaredVsActual:
    def test_undeclared_inout_write_is_reported(self):
        """Acceptance fixture: a body writing its declared *input* is a
        race, reported with task name, region and missing clause kind."""
        registry = {}

        @task(inputs=["a", "b"], registry=registry)
        def sneaky(a, b):
            b += a

        machine = make_machine(["sneaky"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        a, b = np.ones(64), np.zeros(64)
        with rt:
            sneaky(a, b)
        res = rt.result()

        diags = res.race_diagnostics()
        assert summarize(diags) == {"SAN-R001": 1}
        d = diags[0]
        assert d.task == "sneaky"                     # task name
        assert d.region == region_of(b).label         # region
        assert d.meta[0] == "inout"                   # missing clause kind
        with pytest.raises(SanitizerError):
            res.validate()

    def test_undeclared_read_is_reported(self):
        registry = {}

        @task(outputs=["b"], registry=registry)
        def peeker(a, b):
            b[:] = a * 2  # reads a, which is not declared at all

        machine = make_machine(["peeker"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        a, b = np.ones(64), np.zeros(64)
        with rt:
            peeker(a, b)
        res = rt.result()
        counts = summarize(res.recorder.diagnostics())
        assert counts == {"SAN-R002": 1}

    def test_clean_run_has_no_findings_and_correct_numerics(self):
        registry = {}

        @task(inputs=["x"], inouts=["y"], registry=registry)
        def ok(x, y):
            y += x

        machine = make_machine(["ok"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        x, y = np.ones(64), np.zeros(64)
        with rt:
            for _ in range(5):
                ok(x, y)
        res = rt.result()
        assert res.validate() == []
        assert np.allclose(y, 5.0)  # the recorder really ran the bodies

    def test_checksum_catches_writes_tracking_misses(self):
        registry = {}

        @task(inputs=["A"], registry=registry)
        def lapack_ish(A):
            # np.linalg writes through interfaces the view tracking
            # cannot intercept; the before/after digest still sees it
            base = A.view(np.ndarray)
            base[:] = np.linalg.cholesky(base @ base.T + np.eye(len(base)))

        machine = make_machine(["lapack_ish"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        A = np.eye(8)
        with rt:
            lapack_ish(A)
        res = rt.result()
        counts = summarize(res.recorder.diagnostics())
        assert counts.get("SAN-R001") == 1


class TestHappensBefore:
    def _def(self, name="t"):
        d = TaskDefinition(name)
        d.add_version(TaskVersion(name + "_v", name, ("smp",), "k", is_main=True))
        return d

    def test_declared_graph_is_race_free(self):
        d = self._def()
        x = region_of(np.zeros(16))
        g = DependenceGraph()
        t1 = TaskInstance(d, [DataAccess(x, AccessKind.OUTPUT)], label="w")
        t2 = TaskInstance(d, [DataAccess(x, AccessKind.INPUT)], label="r")
        g.add_task(t1)
        g.add_task(t2)
        assert check_happens_before(g) == []

    def test_transitive_ordering_suffices(self):
        d = self._def()
        x = region_of(np.zeros(16))
        y = region_of(np.zeros(16))
        g = DependenceGraph()
        # t1 writes x; t2 reads x, writes y; t3 reads y AND x.
        # t1 -> t2 -> t3 gives t1 -> t3 transitively: no race on x.
        t1 = TaskInstance(d, [DataAccess(x, AccessKind.OUTPUT)], label="t1")
        t2 = TaskInstance(
            d,
            [DataAccess(x, AccessKind.INPUT), DataAccess(y, AccessKind.OUTPUT)],
            label="t2",
        )
        t3 = TaskInstance(
            d,
            [DataAccess(y, AccessKind.INPUT), DataAccess(x, AccessKind.INPUT)],
            label="t3",
        )
        for t in (t1, t2, t3):
            g.add_task(t)
        assert check_happens_before(g) == []

    def test_undeclared_shared_write_is_confirmed_race(self):
        registry = {}

        @task(inouts=["x"], registry=registry)
        def t1(x, z):
            x += 1
            z += 1

        @task(inouts=["y"], registry=registry)
        def t2(y, z):
            y += 1
            z += 2

        machine = make_machine(["t1", "t2"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        x, y, z = np.ones(32), np.ones(32), np.zeros(32)
        with rt:
            t1(x, z)
            t2(y, z)
        res = rt.result()
        diags = res.race_diagnostics()
        counts = summarize(diags)
        assert counts.get("SAN-R010") == 1
        confirmed = [d for d in diags if d.code == "SAN-R010"]
        assert "CONFIRMED" in confirmed[0].message
        assert "write/write" in confirmed[0].message


class TestRecorderMechanics:
    def test_recorder_observes_actual_access_sets(self):
        registry = {}

        @task(inputs=["a"], outputs=["b"], registry=registry)
        def copy2(a, b):
            b[:] = a * 2

        machine = make_machine(["copy2"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        a, b = np.ones(16), np.zeros(16)
        with rt:
            copy2(a, b)
        res = rt.result()
        assert isinstance(res.recorder, AccessRecorder)
        (observed,) = res.recorder.observed.values()
        flags = {r.key: (rd, wr) for r, rd, wr in observed}
        assert flags[region_of(a).key] == (True, False)
        assert flags[region_of(b).key][1] is True

    def test_dedup_repeated_instances(self):
        registry = {}

        @task(inputs=["a", "b"], registry=registry)
        def sneaky(a, b):
            b += a

        machine = make_machine(["sneaky"])
        rt = OmpSsRuntime(
            machine, "breadth-first", config=RuntimeConfig(record_accesses=True)
        )
        a, b = np.ones(16), np.zeros(16)
        with rt:
            for _ in range(4):
                sneaky(a, b)
        res = rt.result()
        # four racy instances, one deduplicated finding
        assert summarize(res.recorder.diagnostics()) == {"SAN-R001": 1}
