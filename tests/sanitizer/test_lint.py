"""Tests for the static directive lint (SAN-L*)."""

import pathlib

from repro.sanitizer import CODES, Severity, lint_paths
from repro.sanitizer.lint import lint_files

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def write(tmp_path, name, source):
    p = tmp_path / name
    p.write_text(source)
    return str(p)


def codes(diags):
    return sorted(d.code for d in diags)


class TestCleanTree:
    def test_examples_and_apps_lint_clean(self):
        """The satellite gate: the shipped tree has zero findings."""
        diags = lint_paths([
            str(REPO_ROOT / "examples"),
            str(REPO_ROOT / "src" / "repro" / "apps"),
        ])
        assert diags == [], "\n".join(d.render() for d in diags)

    def test_finds_declarations_in_shipped_tree(self):
        # guard against the lint silently parsing nothing
        from repro.sanitizer.lint import DirectiveLinter

        files = [
            str(p)
            for p in (REPO_ROOT / "src" / "repro" / "apps").glob("*.py")
        ]
        linter = DirectiveLinter(files)
        n = sum(len(m.decls) for m in linter.modules)
        assert n >= 10  # matmul 3 + cholesky 6 + pbpi 7


class TestClauseNames:
    def test_unknown_clause_name(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a", "nosuch"], outputs=["b"])
def f(a, b):
    b[:] = a
''')
        diags = lint_files([f])
        assert codes(diags) == ["SAN-L001"]
        d = diags[0]
        assert "nosuch" in d.message
        assert d.severity is Severity.ERROR
        assert d.file == f and d.line is not None

    def test_callable_clause_spec_is_skipped(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=lambda xs, y: list(xs), outputs=["y"])
def f(xs, y):
    y[:] = 0
''')
        assert lint_files([f]) == []


class TestBodyWrites:
    def test_input_assigned_in_body(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a", "b"])
def f(a, b):
    b[:] = a
''')
        diags = lint_files([f])
        assert codes(diags) == ["SAN-L002"]
        assert "'b'" in diags[0].message

    def test_augmented_assignment_counts(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a"], outputs=["b"])
def f(a, b):
    a += 1
    b[:] = a
''')
        diags = lint_files([f])
        assert codes(diags) == ["SAN-L002"]
        assert "'a'" in diags[0].message

    def test_inout_write_is_fine(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a"], inouts=["b"])
def f(a, b):
    b += a
''')
        assert lint_files([f]) == []

    def test_local_rebinding_is_not_a_region_write(self, tmp_path):
        # rebinding the *name* does not mutate the caller's array
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a"], outputs=["b"])
def f(a, b):
    tmp = a * 2
    b[:] = tmp
''')
        assert lint_files([f]) == []


class TestDuplicates:
    def test_same_name_twice_in_one_clause(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a", "a"], outputs=["b"])
def f(a, b):
    b[:] = a
''')
        assert codes(lint_files([f])) == ["SAN-L003"]

    def test_same_name_in_two_clauses(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a"], outputs=["a"])
def f(a):
    a[:] = 0
''')
        assert codes(lint_files([f])) == ["SAN-L003"]


class TestImplementsConsistency:
    def test_mismatched_clause_sets(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task, target

@task(inputs=["x"], outputs=["y"])
def main_v(x, y):
    y[:] = x

@target(device="cuda", implements=main_v)
@task(inputs=["x"], inouts=["y"])
def alt_v(x, y):
    y[:] = x
''')
        diags = lint_files([f])
        assert codes(diags) == ["SAN-L004"]
        assert "alt_v" in diags[0].message and "main_v" in diags[0].message

    def test_matching_clause_sets(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task, target

@task(inputs=["x"], inouts=["y"])
def main_v(x, y):
    y += x

@target(device="cuda", implements=main_v)
@task(inputs=["x"], inouts=["y"])
def alt_v(x, y):
    y += x
''')
        assert lint_files([f]) == []

    def test_positionally_identical_renamed_params_ok(self, tmp_path):
        # call form: clauses map to the same parameter positions
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task, target

def kern_a(A, B):
    B[:] = A

def kern_b(X, Y):
    Y[:] = X

main = task(kern_a, inputs=["A"], outputs=["B"], name="t_main")
alt = target(device="cuda", implements=main)(
    task(kern_b, inputs=["X"], outputs=["Y"], name="t_alt")
)
''')
        assert lint_files([f]) == []


class TestWaivers:
    def test_san_ignore_comment_waives_finding(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a"], inouts=["b"])
def f(a, b):
    a += 1  # san-ignore: SAN-L002
    b += a
''')
        assert lint_files([f]) == []

    def test_wrong_code_does_not_waive(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

@task(inputs=["a"], inouts=["b"])
def f(a, b):
    a += 1  # san-ignore: SAN-L001
    b += a
''')
        # the finding survives, and the waiver that suppressed nothing
        # is itself reported as stale
        assert codes(lint_files([f])) == ["SAN-L002", "SAN-L005"]


class TestCallForm:
    def test_call_form_resolves_kernel_signature(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

def my_kernel(p, q):
    q[:] = p

bound = task(my_kernel, inputs=["p", "wrong"], outputs=["q"], name="k")
''')
        diags = lint_files([f])
        assert codes(diags) == ["SAN-L001"]
        assert "wrong" in diags[0].message

    def test_kwargs_dict_expansion(self, tmp_path):
        f = write(tmp_path, "a.py", '''
from repro.runtime.directives import task

def my_kernel(p, q):
    q[:] = p

shared = dict(inputs=["p", "oops"], outputs=["q"])
bound = task(my_kernel, name="k", **shared)
''')
        diags = lint_files([f])
        assert codes(diags) == ["SAN-L001"]


class TestDiagnosticModel:
    def test_every_emitted_code_is_registered(self):
        for code in ("SAN-L001", "SAN-L002", "SAN-L003", "SAN-L004"):
            assert code in CODES

    def test_unknown_code_rejected(self):
        import pytest

        from repro.sanitizer import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic(code="SAN-X999", message="nope")
