"""Seeded clause/effect bugs — every task here must trip exactly one
SAN-S00x code (see test_effects.py for the expected mapping).

Analysis-only fixture: parsed by the effect checker, never imported.
"""

from repro.runtime.directives import task


def helper_write(dst, src):
    dst[:] = src * 2


@task(inputs=["a", "b"])
def undeclared_call_write(a, b):
    # SAN-S001: b is written through helper_write but declared input-only
    helper_write(b, a)


@task(inputs=["a", "c"])
def undeclared_alias_write(a, c):
    # SAN-S001: c is written through the alias `view`
    view = c
    view[:] = a


@task(inputs=["a", "b"], inouts=["c"])
def dead_clause(a, c, b):
    # SAN-S002: b is declared but the body never touches it
    c += a * 2


@task(inputs=["a"], inouts=["c"])
def downgradable(a, c):
    # SAN-S003: c is declared inout but only ever read
    return float((a + c).sum())


@task(inputs=["a"], outputs=["r"])
def stale_read(a, r):
    # SAN-S005: r is output-only but `r += a` reads its stale value
    r += a


@task(inputs=["a"], inouts=["c"], name="main_k")
def main_k(a, c):
    c += a


@task(inputs=["a"], inouts=["c"], implements="main_k", device="cuda")
def wrong_version(a, c):
    # SAN-S004: the main version writes c, this implementation never does
    return float(a.sum())
