"""Seeded scheduler-contract bugs — every class here except OkScheduler
must trip exactly one SAN-S01x code (see test_contracts.py).

Analysis-only fixture: parsed by the contract checker, never imported.
"""


class DropScheduler:
    # SAN-S012: low-priority tasks fall off the end of task_ready
    def task_ready(self, t):
        if t.priority > 0:
            self.rt.dispatch(t, self.workers[0], None)


class PokeScheduler:
    # SAN-S011: scheduler flips worker lifecycle state it does not own
    def task_ready(self, t):
        w = self.workers[0]
        w.alive = False
        w.queue.append(t)


class HistoryScheduler:
    # SAN-S010: scheduler erases recorded trace history
    def task_ready(self, t):
        self.rt.trace.events.clear()
        self.rt.trace.add(0, 1, "w", "sched", "x")
        self._pool.append(t)


class UidScheduler:
    # SAN-S013: raw uid leaks into a trace label (the second add is
    # fine — it goes through the _local_ids mapping)
    def task_ready(self, t):
        self.rt.trace.add(0, 1, "w0", "sched", label=f"pick:{t.uid}")
        self.rt.trace.add(0, 1, "w0", "sched", "ok",
                          meta=(self.rt._local_ids.get(t.uid, t.uid),))
        self.rt.dispatch(t, self.workers[0], None)


class OkScheduler:
    # clean: buffering, loop dispatch and a loud raise all count as
    # handling the task
    def task_ready(self, t):
        if self.router is not None and self.router.pending(t.uid) > 0:
            self._buffered[t.uid] = t
            return
        for w in self.workers:
            if w.alive:
                self.rt.dispatch(t, w, None)
                return
        raise RuntimeError("no workers")
