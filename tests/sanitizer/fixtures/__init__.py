"""Seeded-bug fixtures for the static analysis tests.

``effect_bugs.py`` and ``contract_bugs.py`` are *analysis-only*: the
tests hand their paths to the static checkers and never import them
(some of them would not survive execution — that is the point).
``broken_routers.py`` is importable: the model-checking tests explore
its deliberately broken NotificationRouter subclasses.
"""
