"""Deliberately broken NotificationRouter variants.

Each subclass removes exactly one defensive mechanism from the shipped
protocol; the model checker must find the resulting property violation
(see test_modelcheck.py for the expected code per router).
"""

from repro.cluster.protocol import NotificationRouter


class NoDedupRouter(NotificationRouter):
    """Duplicate suppression removed: a retransmitted or duplicated wire
    message is delivered (and counted) twice → SAN-P004 (a successor is
    released after fewer *distinct* notifications than it has
    predecessors)."""

    def _is_duplicate(self, src_node, seq):
        return False


class NoFenceRouter(NotificationRouter):
    """Epoch fencing removed from the delivery path: traffic sent by a
    node's dead incarnation is accepted after the crash → SAN-P003."""

    def _on_wire_delivered(self, msg, dst_node):
        if self._is_duplicate(msg.src_node, msg.seq):
            self.stats.dup_suppressed += 1
        else:
            self._deliver_logical(msg)
        if self.config.reliable and dst_node != msg.src_node:
            self._send_ack(msg, dst_node)


class DoubleReleaseRouter(NotificationRouter):
    """Crash recovery without the dedup/cleared guard: an edge whose
    message already landed is cleared again → SAN-P001 (double
    release)."""

    def _recover(self, msg):
        self._pending.pop(msg.succ_uid, None)
        self.on_clear(msg.succ_uid)
