"""Tests for the scheduler-contract lint (SAN-S010..S013)."""

import pathlib

import pytest

from repro.sanitizer.static import check_contract_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def codes_by_class(diags):
    out = {}
    for d in diags:
        cls = d.message.split(".")[0].split(":")[0].split()[0]
        out.setdefault(cls, set()).add(d.code)
    return out


class TestSeededBugs:
    @pytest.fixture(scope="class")
    def diags(self):
        return check_contract_paths([str(FIXTURES / "contract_bugs.py")])

    def test_every_seeded_bug_is_caught(self, diags):
        by_cls = codes_by_class(diags)
        assert by_cls["DropScheduler"] == {"SAN-S012"}
        assert by_cls["PokeScheduler"] == {"SAN-S011"}
        assert by_cls["HistoryScheduler"] == {"SAN-S010"}
        assert by_cls["UidScheduler"] == {"SAN-S013"}

    def test_clean_scheduler_not_flagged(self, diags):
        assert "OkScheduler" not in codes_by_class(diags)

    def test_local_id_mapped_uid_is_not_flagged(self, diags):
        # UidScheduler's second trace.add routes the uid through
        # _local_ids.get and must produce no second SAN-S013
        uid_findings = [d for d in diags if d.code == "SAN-S013"]
        assert len(uid_findings) == 1


class TestShippedTreeClean:
    def test_schedulers_and_cluster_have_no_contract_findings(self):
        diags = check_contract_paths([
            str(REPO_ROOT / "src" / "repro" / "schedulers"),
            str(REPO_ROOT / "src" / "repro" / "cluster"),
        ])
        assert diags == [], [str(d) for d in diags]


class TestScoping:
    def test_non_scheduler_code_is_out_of_scope(self, tmp_path):
        # worker-state writes outside scheduler scope (no task_ready,
        # not under a schedulers/cluster dir) are the runtime's business
        p = tmp_path / "runtime_helper.py"
        p.write_text('''
class WorkerPool:
    def reap(self):
        for w in self.workers:
            w.alive = False
''')
        assert check_contract_paths([str(p)]) == []

    def test_any_class_with_task_ready_is_in_scope(self, tmp_path):
        p = tmp_path / "anywhere.py"
        p.write_text('''
class SneakyScheduler:
    def task_ready(self, t):
        self.rt.workers[0].alive = False
        self.rt.dispatch(t, self.rt.workers[0], None)
''')
        diags = check_contract_paths([str(p)])
        assert [d.code for d in diags] == ["SAN-S011"]

    def test_raise_counts_as_loud_handling(self, tmp_path):
        p = tmp_path / "loud.py"
        p.write_text('''
class LoudScheduler:
    def task_ready(self, t):
        raise NotImplementedError("submit-side scheduling only")
''')
        assert check_contract_paths([str(p)]) == []
