"""Tests for the bounded protocol model checker (SAN-P001..P004)."""

import time

import pytest

from repro.sanitizer.static import (
    ablation_scenario,
    check_protocol,
    default_scenarios,
    explore,
    render_msc,
)

from .fixtures.broken_routers import (
    DoubleReleaseRouter,
    NoDedupRouter,
    NoFenceRouter,
)

SCENARIOS = {s.name: s for s in default_scenarios()}


class TestShippedRouter:
    def test_small_suite_verifies_clean(self):
        diags = check_protocol(small=True)
        assert diags == [], [str(d) for d in diags]

    @pytest.mark.integration
    def test_full_scope_verifies_clean_within_budget(self):
        # acceptance scope: 3 nodes, 3 messages, <=1 crash, <60s
        t0 = time.monotonic()
        diags = check_protocol()
        elapsed = time.monotonic() - t0
        assert diags == [], [str(d) for d in diags]
        assert elapsed < 60.0, f"exhaustive exploration took {elapsed:.1f}s"

    def test_crash_recovery_scenario_clean(self):
        res = explore(SCENARIOS["sender-crash-recovery"])
        assert res.ok and not res.truncated
        assert res.states > 0


class TestBrokenRouters:
    def test_missing_dedup_is_double_count(self):
        res = explore(SCENARIOS["two-preds-one-succ"],
                      router_factory=NoDedupRouter)
        assert "SAN-P004" in {v.code for v in res.violations}

    def test_missing_epoch_fence_is_caught(self):
        res = explore(SCENARIOS["sender-crash-recovery"],
                      router_factory=NoFenceRouter)
        assert "SAN-P003" in {v.code for v in res.violations}

    def test_unguarded_recovery_is_double_release(self):
        res = explore(SCENARIOS["sender-crash-recovery"],
                      router_factory=DoubleReleaseRouter)
        assert "SAN-P001" in {v.code for v in res.violations}

    def test_violation_renders_a_counterexample(self):
        res = explore(SCENARIOS["sender-crash-recovery"],
                      router_factory=DoubleReleaseRouter)
        text = res.violations[0].render()
        assert "counterexample in scenario 'sender-crash-recovery'" in text
        assert "VIOLATION SAN-P" in text
        assert "node0" in text and "node1" in text


class TestAblation:
    def test_unreliable_config_deadlocks(self):
        res = explore(ablation_scenario())
        codes = {v.code for v in res.violations}
        assert "SAN-P002" in codes

    def test_deadlock_counterexample_shows_the_lost_message(self):
        res = explore(ablation_scenario())
        v = next(v for v in res.violations if v.code == "SAN-P002")
        text = v.render()
        assert "DROP" in text
        assert "never released" in text

    def test_check_protocol_reports_ablation_as_diagnostic(self):
        diags = check_protocol(scenarios=[ablation_scenario()])
        assert any(d.code == "SAN-P002" for d in diags)
        assert any(d.region == "scenario:unreliable-ablation" for d in diags)


class TestRendering:
    def test_msc_golden(self):
        timeline = [
            ("msg", 0, 1, "send uid=7"),
            ("note", 1, "apply (pending 1)"),
            ("global", "VIOLATION SAN-P001: example"),
        ]
        expected = (
            "             node0                         node1\n"
            "  1.                |-------- send uid=7 -------->|\n"
            "  2.                |                             |"
            " apply (pending 1)\n"
            "  3. == VIOLATION SAN-P001: example =="
        )
        assert render_msc(timeline, 2) == expected

    def test_msc_three_lifelines_and_reverse_arrow(self):
        out = render_msc([
            ("msg", 2, 0, "ack seq=1"),
            ("note", 2, "crash"),
        ], 3)
        lines = out.splitlines()
        assert "node2" in lines[0]
        arrow = lines[1]
        assert "<" in arrow and "ack seq=1" in arrow
        assert "crash" in lines[2]
