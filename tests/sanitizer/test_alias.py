"""Tests for the aliasing diagnostic (SAN-R003) in the dependence graph."""

import numpy as np
import pytest

from repro.runtime.dataregion import AccessKind, DataAccess, region_of
from repro.runtime.dependences import DependenceGraph
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
from repro.sanitizer import SanitizerError
from repro.sim.perfmodel import AffineBytesCostModel
from repro.sim.topology import minotauro_node


def make_def(name="t"):
    d = TaskDefinition(name)
    d.add_version(TaskVersion(name + "_v", name, ("smp",), "k", is_main=True))
    return d


def overlapping_regions():
    base = np.zeros(128)
    return region_of(base), region_of(base[:64])


class TestReportPolicy:
    def test_report_collects_diagnostic_instead_of_raising(self):
        whole, half = overlapping_regions()
        d = make_def()
        g = DependenceGraph(alias_policy="report")
        t1 = TaskInstance(d, [DataAccess(whole, AccessKind.INOUT)], label="writer")
        t2 = TaskInstance(d, [DataAccess(half, AccessKind.INPUT)], label="reader")
        g.add_task(t1)
        g.add_task(t2)  # must not raise
        assert len(g.alias_diagnostics) == 1
        diag = g.alias_diagnostics[0]
        assert diag.code == "SAN-R003"
        # task names and both region intervals are in the message
        assert "writer" in diag.message and "reader" in diag.message
        assert "0x" in diag.message
        (iv_new, iv_old, owner) = diag.meta
        assert owner == "writer"
        assert iv_new[0] == half.base and iv_old[0] == whole.base

    def test_no_diagnostic_for_disjoint_regions(self):
        a, b = region_of(np.zeros(64)), region_of(np.zeros(64))
        d = make_def()
        g = DependenceGraph(alias_policy="report")
        g.add_task(TaskInstance(d, [DataAccess(a, AccessKind.INOUT)]))
        g.add_task(TaskInstance(d, [DataAccess(b, AccessKind.INOUT)]))
        assert g.alias_diagnostics == []

    def test_same_region_reused_is_not_aliasing(self):
        r = region_of(np.zeros(64))
        d = make_def()
        g = DependenceGraph(alias_policy="report")
        g.add_task(TaskInstance(d, [DataAccess(r, AccessKind.INOUT)]))
        g.add_task(TaskInstance(d, [DataAccess(r, AccessKind.INPUT)]))
        assert g.alias_diagnostics == []


class TestRejectPolicyCompat:
    def test_check_aliasing_true_still_raises_value_error(self):
        whole, half = overlapping_regions()
        d = make_def()
        g = DependenceGraph(check_aliasing=True)
        g.add_task(TaskInstance(d, [DataAccess(whole, AccessKind.INOUT)]))
        with pytest.raises(ValueError, match="overlaps"):
            g.add_task(TaskInstance(d, [DataAccess(half, AccessKind.INPUT)]))

    def test_reject_message_names_the_tasks(self):
        whole, half = overlapping_regions()
        d = make_def()
        g = DependenceGraph(alias_policy="reject")
        g.add_task(TaskInstance(d, [DataAccess(whole, AccessKind.INOUT)], label="first"))
        with pytest.raises(ValueError, match="first"):
            g.add_task(
                TaskInstance(d, [DataAccess(half, AccessKind.INPUT)], label="second")
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="alias_policy"):
            DependenceGraph(alias_policy="maybe")


class TestRuntimeIntegration:
    def test_alias_report_surfaces_through_validate(self):
        registry = {}

        @task(inouts=["x"], registry=registry)
        def bump(x):
            x += 1

        m = minotauro_node(2, 0, noise_cv=0.0, seed=5)
        m.register_kernel_for_kind("smp", "bump", AffineBytesCostModel(0.0, 1e9))
        rt = OmpSsRuntime(
            m, "breadth-first", config=RuntimeConfig(alias_policy="report")
        )
        base = np.zeros(128)
        with rt:
            bump(base)
            bump(base[:64])  # overlapping view: distinct region, aliased
        res = rt.result()
        diags = res.race_diagnostics()
        assert any(d.code == "SAN-R003" for d in diags)
        with pytest.raises(SanitizerError):
            res.validate()
