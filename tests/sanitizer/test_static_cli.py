"""Tests for the ``--static`` / ``--protocol`` CLI modes, exit codes,
``--json`` output and baseline handling."""

import json
import pathlib
import subprocess
import sys

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])

ERROR_SNIPPET = '''
from repro.runtime.directives import task

def helper_write(dst, src):
    dst[:] = src * 2

@task(inputs=["a", "b"])
def f(a, b):
    helper_write(b, a)
'''

WARNING_SNIPPET = '''
from repro.runtime.directives import task

@task(inputs=["a", "b"], inouts=["c"])
def g(a, b, c):
    c += a * 2
'''

CLEAN_SNIPPET = '''
from repro.runtime.directives import task

@task(inputs=["a"], inouts=["c"])
def h(a, c):
    c += a
'''


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.sanitizer", *args],
        capture_output=True,
        text=True,
        cwd=cwd or str(REPO_ROOT),
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


class TestExitCodes:
    def test_clean_tree_is_zero(self, tmp_path):
        p = tmp_path / "clean.py"
        p.write_text(CLEAN_SNIPPET)
        proc = run_cli("--static", str(p))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_errors_are_one(self, tmp_path):
        p = tmp_path / "bad.py"
        p.write_text(ERROR_SNIPPET)
        proc = run_cli("--static", str(p))
        assert proc.returncode == 1
        assert "SAN-S001" in proc.stdout

    def test_warnings_alone_are_zero(self, tmp_path):
        p = tmp_path / "warn.py"
        p.write_text(WARNING_SNIPPET)
        proc = run_cli("--static", str(p))
        assert proc.returncode == 0
        assert "SAN-S002" in proc.stdout

    def test_strict_promotes_warnings(self, tmp_path):
        p = tmp_path / "warn.py"
        p.write_text(WARNING_SNIPPET)
        proc = run_cli("--static", "--strict", str(p))
        assert proc.returncode == 1

    def test_no_paths_is_usage_error(self):
        proc = run_cli("--static")
        assert proc.returncode == 2

    def test_shipped_tree_is_clean_under_static(self):
        proc = run_cli("--static", "src", "examples")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestJsonOutput:
    def test_shape_and_counts(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(ERROR_SNIPPET + WARNING_SNIPPET)
        proc = run_cli("--static", "--json", str(bad))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert set(doc) == {"findings", "errors", "warnings"}
        assert doc["errors"] == 1 and doc["warnings"] == 1
        codes = [f["code"] for f in doc["findings"]]
        assert "SAN-S001" in codes and "SAN-S002" in codes
        for f in doc["findings"]:
            assert f["file"] == str(bad)
            assert isinstance(f["line"], int)

    def test_clean_json_is_empty(self, tmp_path):
        p = tmp_path / "clean.py"
        p.write_text(CLEAN_SNIPPET)
        proc = run_cli("--static", "--json", str(p))
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc == {"findings": [], "errors": 0, "warnings": 0}


class TestBaseline:
    def test_write_then_apply_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(ERROR_SNIPPET)
        base = tmp_path / "baseline.json"

        assert run_cli("--static", str(bad)).returncode == 1
        proc = run_cli("--static", "--write-baseline", str(base), str(bad))
        assert proc.returncode == 0
        assert json.loads(base.read_text())["version"] == 1

        proc = run_cli("--static", "--baseline", str(base), str(bad))
        assert proc.returncode == 0, proc.stdout

    def test_stale_baseline_entry_is_reported(self, tmp_path):
        bad = tmp_path / "code.py"
        bad.write_text(ERROR_SNIPPET)
        base = tmp_path / "baseline.json"
        run_cli("--static", "--write-baseline", str(base), str(bad))

        bad.write_text(CLEAN_SNIPPET)  # the finding is fixed
        proc = run_cli("--static", "--baseline", str(base), str(bad))
        assert proc.returncode == 0  # stale entries warn, not fail
        assert "SAN-L005" in proc.stdout
        proc = run_cli("--static", "--strict", "--baseline", str(base),
                       str(bad))
        assert proc.returncode == 1

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        p = tmp_path / "clean.py"
        p.write_text(CLEAN_SNIPPET)
        base = tmp_path / "baseline.json"
        base.write_text("{}")
        proc = run_cli("--static", "--baseline", str(base), str(p))
        assert proc.returncode == 2


class TestWaivers:
    def test_waiver_suppresses_and_stale_waiver_reports(self, tmp_path):
        # SAN-S001 anchors at the declaration (`def`) line, so that is
        # where the waiver goes
        p = tmp_path / "waived.py"
        p.write_text(ERROR_SNIPPET.replace(
            "def f(a, b):",
            "def f(a, b):  # san-ignore: SAN-S001",
        ))
        proc = run_cli("--static", str(p))
        assert proc.returncode == 0, proc.stdout

        stale = tmp_path / "stale.py"
        stale.write_text(CLEAN_SNIPPET.replace(
            "    c += a",
            "    c += a  # san-ignore: SAN-S001",
        ))
        proc = run_cli("--static", str(stale))
        assert proc.returncode == 0
        assert "SAN-L005" in proc.stdout


class TestProtocolMode:
    def test_protocol_small_needs_no_paths(self):
        proc = run_cli("--protocol", "--small")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout


class TestListCodes:
    def test_new_code_families_are_documented(self):
        proc = run_cli("--list-codes")
        assert proc.returncode == 0
        for code in ("SAN-L005", "SAN-S001", "SAN-S005", "SAN-S010",
                     "SAN-S013", "SAN-P001", "SAN-P004"):
            assert code in proc.stdout
