"""Tests for the breadth-first baseline scheduler."""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.schedulers.breadth_first import BreadthFirstScheduler
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import make_machine, make_two_version_task, region, run_tasks


class TestBreadthFirst:
    def test_registered(self):
        from repro.schedulers.registry import create_scheduler

        assert isinstance(create_scheduler("bf"), BreadthFirstScheduler)
        assert isinstance(create_scheduler("breadth-first"), BreadthFirstScheduler)

    def test_fifo_dispatch_order(self):
        m = make_machine(1, 0, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="smp", name="w", registry=reg)
        def w(y):
            pass

        m.register_kernel_for_kind("smp", "w", FixedCostModel(0.001))
        rt = OmpSsRuntime(m, "bf")
        with rt:
            tasks = [w(region(("y", i))) for i in range(6)]
        res = rt.result()
        assert res.finish_order == [t.uid for t in tasks]

    def test_spreads_over_idle_workers(self):
        m = make_machine(4, 0, noise=0.0)
        reg = {}

        @task(outputs=["y"], device="smp", name="w", registry=reg)
        def w(y):
            pass

        m.register_kernel_for_kind("smp", "w", FixedCostModel(0.010))
        res = run_tasks(m, "bf", [(w, region(("y", i))) for i in range(8)])
        from collections import Counter

        per = Counter(r.worker for r in res.trace.by_category("task"))
        assert sorted(per.values()) == [2, 2, 2, 2]

    def test_main_version_only(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        res = run_tasks(m, "bf",
                        [(work, region(("x", i)), region(("y", i))) for i in range(6)])
        assert res.version_counts["work_smp"] == {"work_smp": 6}

    def test_unrunnable_task_raises_at_submit(self):
        m = make_machine(2, 0)
        reg = {}

        @task(device="cuda", name="k", registry=reg)
        def k():
            pass

        rt = OmpSsRuntime(m, "bf")
        with pytest.raises(RuntimeError):
            with rt:
                k()

    def test_all_tasks_complete_with_dependences(self):
        m = make_machine(2, 0, noise=0.0)
        reg = {}

        @task(inouts=["x"], device="smp", name="step", registry=reg)
        def step(x):
            pass

        m.register_kernel_for_kind("smp", "step", FixedCostModel(0.002))
        x = region("x")
        res = run_tasks(m, "bf", [(step, x)] * 7)
        assert res.tasks_completed == 7
        assert res.makespan == pytest.approx(7 * 0.002)
