"""Scheduler conformance suite.

Every scheduler in the registry — including the sharded cluster
scheduler — must produce a *valid* execution on a set of fixture
graphs: a straight chain, a fork-join, the tiled hybrid matmul and the
Cholesky DAG.  Valid means

* every task completes exactly once (count and uniqueness),
* no dependence edge is violated (``verify_schedule``),
* the trace passes every sanitizer invariant (``validate()`` clean),
* a second identical run reproduces the same makespan and trace
  (seeded determinism).

The suite runs both on a single MinoTauro-like node and on a 2-node
cluster machine, so any scheduler that mishandles multi-node worker
sets fails here rather than in a bench.
"""

from __future__ import annotations

import pytest

from repro.schedulers.registry import canonical_schedulers
from repro.sim.topology import cluster_machine, minotauro_node

from tests.conftest import (
    SMALL_APP_TASKS,
    SMALL_APPS,
    chain_calls,
    fork_join_calls,
    make_two_version_task,
    run_app,
    run_tasks,
)

SCHEDULERS = canonical_schedulers()

MACHINES = {
    "node": lambda: minotauro_node(2, 2, noise_cv=0.02, seed=7),
    "cluster2": lambda: cluster_machine(
        2, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=7
    ),
}

CHAIN_LEN = 8
FJ_WIDTH = 4


def _synthetic_calls(shape, machine):
    work, register = make_two_version_task(name=f"conf_{shape}")
    register(machine)
    if shape == "chain":
        return chain_calls(work, n=CHAIN_LEN), CHAIN_LEN
    return fork_join_calls(work, width=FJ_WIDTH), 2 * FJ_WIDTH


def _assert_valid(res, expected):
    assert res.tasks_completed == expected
    # exactly once: no uid repeats in the finish order
    assert len(res.finish_order) == expected
    assert len(set(res.finish_order)) == expected
    res.graph.verify_schedule(res.finish_order)
    assert res.validate() == []  # strict: raises on any error finding
    assert res.makespan > 0


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("shape", ["chain", "fork-join"])
@pytest.mark.parametrize("sched", SCHEDULERS)
def test_synthetic_graph_conformance(sched, shape, machine_name):
    def once():
        machine = MACHINES[machine_name]()
        calls, expected = _synthetic_calls(shape, machine)
        return run_tasks(machine, sched, calls), expected

    res, expected = once()
    _assert_valid(res, expected)
    res2, _ = once()
    assert res2.makespan == res.makespan
    assert res2.trace == res.trace


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("app_name", ["matmul", "cholesky"])
@pytest.mark.parametrize("sched", SCHEDULERS)
def test_app_graph_conformance(sched, app_name, machine_name):
    def once():
        machine = MACHINES[machine_name]()
        return run_app(SMALL_APPS[app_name]("hyb"), machine, sched)

    res = once()
    _assert_valid(res, SMALL_APP_TASKS[app_name])
    res2 = once()
    assert res2.makespan == res.makespan
    assert res2.trace == res.trace


@pytest.mark.parametrize("partition", ["hash", "block", "affinity"])
def test_cluster_partitions_conform_on_matmul(partition):
    def once():
        machine = cluster_machine(
            4, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=7
        )
        return run_app(
            SMALL_APPS["matmul"]("hyb"),
            machine,
            "cluster",
            scheduler_options={"partition": partition},
        )

    res = once()
    _assert_valid(res, SMALL_APP_TASKS["matmul"])
    res2 = once()
    assert res2.makespan == res.makespan
    assert res2.trace == res.trace
