"""Tests for the affinity scheduler."""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import MB, make_machine, make_two_version_task, region, run_tasks


def gpu_task(machine, cost=0.002):
    reg = {}

    @task(inputs=["x"], outputs=["y"], device="cuda", name="k", registry=reg)
    def k(x, y):
        pass

    machine.register_kernel_for_kind("cuda", "k", FixedCostModel(cost))
    return k


class TestLocality:
    def test_repeated_input_stays_on_one_gpu(self):
        """A dependence chain re-reading one region keeps running where
        the data is — a single Input Tx of each region in total."""
        m = make_machine(0, 2)
        reg = {}

        @task(inputs=["x"], inouts=["acc"], device="cuda", name="k",
              registry=reg)
        def k(x, acc):
            pass

        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.010))
        x, acc = region("x", 8 * MB), region("acc", MB)
        calls = [(k, x, acc)] * 6
        res = run_tasks(m, "affinity", calls)
        assert res.transfer_stats.input_tx == 9 * MB  # x and acc, once each
        workers = {rec.worker for rec in res.trace.by_category("task")}
        assert len(workers) == 1

    def test_disjoint_inputs_split_between_gpus(self):
        m = make_machine(0, 2)
        k = gpu_task(m, cost=0.010)
        xa, xb = region("xa", 8 * MB), region("xb", 8 * MB)
        calls = []
        for i in range(6):
            calls.append((k, xa if i % 2 == 0 else xb, region(("y", i), MB)))
        res = run_tasks(m, "affinity", calls)
        workers = {}
        for rec in res.trace.by_category("task"):
            workers.setdefault(rec.worker, 0)
            workers[rec.worker] += 1
        assert len(workers) == 2


class TestStealing:
    def test_idle_worker_steals_despite_locality(self):
        """When one GPU's queue runs ahead by more than the slack, the
        other steals — paying extra transfers (the paper's Cholesky
        observation)."""
        m = make_machine(0, 2)
        k = gpu_task(m, cost=0.010)
        x = region("x", 8 * MB)
        calls = [(k, x, region(("y", i), MB)) for i in range(12)]
        res = run_tasks(m, "affinity", calls)
        workers = {rec.worker for rec in res.trace.by_category("task")}
        assert len(workers) == 2  # the second GPU stole work
        assert res.transfer_stats.input_tx == 16 * MB  # x replicated


class TestMainVersionOnly:
    def test_ignores_implements_versions(self):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)
        calls = [(work, region(("x", i)), region(("y", i))) for i in range(8)]
        res = run_tasks(m, "affinity", calls)
        assert res.version_counts["work_smp"] == {"work_smp": 8}

    def test_unrunnable_main_raises(self):
        m = make_machine(0, 1)
        work, _ = make_two_version_task(machine=m)
        rt = OmpSsRuntime(m, "affinity")
        with pytest.raises(RuntimeError):
            with rt:
                work(region("x"), region("y"))
