"""Tests for the scheduler plug-in registry."""

import pytest

from repro.core.locality import LocalityVersioningScheduler
from repro.core.versioning import VersioningScheduler
from repro.schedulers.affinity import AffinityScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.dependency_aware import DependencyAwareScheduler
from repro.schedulers.registry import (
    ENV_VAR,
    available_schedulers,
    create_scheduler,
    register_scheduler,
    scheduler_from_env,
)


class TestBuiltins:
    def test_all_builtin_names_available(self):
        names = available_schedulers()
        for expected in ("dep", "dependency-aware", "affinity", "aff",
                         "versioning", "ver", "versioning-locality", "ver-loc"):
            assert expected in names

    def test_create_each_kind(self):
        assert isinstance(create_scheduler("dep"), DependencyAwareScheduler)
        assert isinstance(create_scheduler("affinity"), AffinityScheduler)
        assert isinstance(create_scheduler("versioning"), VersioningScheduler)
        assert isinstance(create_scheduler("ver-loc"), LocalityVersioningScheduler)

    def test_case_insensitive(self):
        assert isinstance(create_scheduler("VERSIONING"), VersioningScheduler)

    def test_options_forwarded(self):
        s = create_scheduler("versioning", lam=7)
        assert s.lam == 7

    def test_unknown_rejected_with_choices(self):
        with pytest.raises(ValueError, match="available:"):
            create_scheduler("wfq")


class TestEnvSelection:
    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "affinity")
        assert isinstance(scheduler_from_env(), AffinityScheduler)

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert isinstance(scheduler_from_env(default="versioning"),
                          VersioningScheduler)


class TestCustomRegistration:
    def test_register_decorator(self):
        @register_scheduler("test-custom-policy")
        class Custom(Scheduler):
            name = "test-custom-policy"

            def task_ready(self, t):  # pragma: no cover - never dispatched
                pass

        assert isinstance(create_scheduler("test-custom-policy"), Custom)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_scheduler("dep")
            class Clash(Scheduler):
                def task_ready(self, t):  # pragma: no cover
                    pass

    def test_non_scheduler_rejected(self):
        with pytest.raises(TypeError):
            register_scheduler("x-not-a-scheduler")(dict)
