"""Tests for the dependency-aware scheduler."""

import pytest

from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel

from tests.conftest import make_machine, make_two_version_task, region, run_tasks


def chain_task(machine, registry=None, cost=0.005):
    reg = {} if registry is None else registry

    @task(inouts=["x"], device="smp", name="step", registry=reg)
    def step(x):
        pass

    machine.register_kernel_for_kind("smp", "step", FixedCostModel(cost))
    return step


class TestChainFollowing:
    def test_chain_stays_on_one_worker(self):
        m = make_machine(4, 0)
        step = chain_task(m)
        x = region("x")
        res = run_tasks(m, "dep", [(step, x)] * 8)
        workers = {r.worker for r in res.trace.by_category("task")}
        assert len(workers) == 1

    def test_independent_chains_spread_across_workers(self):
        m = make_machine(4, 0)
        step = chain_task(m)
        calls = []
        xs = [region(("x", i)) for i in range(4)]
        for _ in range(5):
            for x in xs:
                calls.append((step, x))
        res = run_tasks(m, "dep", calls)
        workers = {r.worker for r in res.trace.by_category("task")}
        assert len(workers) == 4

    def test_chain_hint_does_not_defeat_balance(self):
        """A fan-out from one task must not all land on one worker."""
        m = make_machine(4, 0)
        reg = {}

        @task(outputs=["x"], device="smp", name="src", registry=reg)
        def src(x):
            pass

        @task(inputs=["x"], outputs=["y"], device="smp", name="sink", registry=reg)
        def sink(x, y):
            pass

        m.register_kernel_for_kind("smp", "src", FixedCostModel(0.001))
        m.register_kernel_for_kind("smp", "sink", FixedCostModel(0.010))
        x = region("x")
        calls = [(src, x)] + [(sink, x, region(("y", i))) for i in range(8)]
        res = run_tasks(m, "dep", calls)
        workers = {r.worker for r in res.trace.by_category("task") if r.label == "sink"}
        assert len(workers) == 4  # spread, not serialised on the src worker


class TestMainVersionOnly:
    def test_ignores_implements_versions(self):
        """Paper footnote 1: pre-versioning schedulers run only the main
        implementation."""
        m = make_machine(2, 1)
        work, _ = make_two_version_task(machine=m)  # main = SMP
        calls = [(work, region(("x", i)), region(("y", i))) for i in range(10)]
        res = run_tasks(m, "dep", calls)
        counts = res.version_counts["work_smp"]
        assert counts == {"work_smp": 10}  # the GPU version never runs

    def test_unrunnable_main_raises(self):
        m = make_machine(0, 1)  # GPUs only
        work, _ = make_two_version_task(machine=m)  # main targets SMP
        rt = OmpSsRuntime(m, "dep")
        with pytest.raises(RuntimeError, match="main"):
            with rt:
                work(region("x"), region("y"))


class TestFallback:
    def test_least_loaded_when_no_hint(self):
        m = make_machine(3, 0)
        step = chain_task(m)
        xs = [region(("x", i)) for i in range(9)]
        res = run_tasks(m, "dep", [(step, x) for x in xs])
        # 9 independent tasks over 3 workers: 3 each
        from collections import Counter

        per = Counter(r.worker for r in res.trace.by_category("task"))
        assert sorted(per.values()) == [3, 3, 3]
