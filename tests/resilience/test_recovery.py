"""Integration tests for the recovery machinery: retries, alternate
(version, worker) pairs, permanent worker death, quarantine, and
transfer retries — all driven through the full runtime."""

import numpy as np
import pytest

from repro import (
    FaultPlan,
    OmpSsRuntime,
    RecoveryPolicy,
    TaskFaultRule,
    TaskRetryExceededError,
    TransferFaultRule,
    TransferRetryExceededError,
    WorkerFailure,
)
from repro.runtime.directives import task
from repro.sim.perfmodel import FixedCostModel
from tests.conftest import make_machine, make_two_version_task, region


def run_with_plan(machine, scheduler, calls, *, plan=None, policy=None,
                  config=None, scheduler_options=None):
    rt = OmpSsRuntime(machine, scheduler, config=config,
                      scheduler_options=scheduler_options,
                      fault_plan=plan, recovery=policy)
    with rt:
        for fn, *args in calls:
            fn(*args)
    return rt.result()


def records(trace, category):
    return [r for r in trace if r.category == category]


class TestTransientFaults:
    def test_transient_fault_is_retried_and_run_completes(self, registry):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(registry, machine=m)
        calls = [(work, region(("a", i)), region(("b", i))) for i in range(10)]
        plan = FaultPlan(task_faults=[TaskFaultRule(worker="gpu0",
                                                    at_starts=(1,))])
        res = run_with_plan(m, "versioning", calls, plan=plan)
        assert res.tasks_completed == 10
        assert res.resilience.task_faults == 1
        assert res.resilience.retries == 1
        assert len(records(res.trace, "fault")) == 1
        assert len(records(res.trace, "retry")) == 1
        # the faulted slice still occupied the worker in the trace
        assert records(res.trace, "fault")[0].worker == "w:gpu0"

    def test_retry_prefers_alternate_version_worker_pair(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        calls = [(work, region(("a", i)), region(("b", i))) for i in range(6)]
        # the very first task start anywhere faults once
        plan = FaultPlan(task_faults=[TaskFaultRule(at_starts=(1,))])
        res = run_with_plan(m, "versioning", calls, plan=plan)
        assert res.tasks_completed == 6

        (fault,) = records(res.trace, "fault")
        failed_pair = (fault.worker, fault.label)  # (worker, version)
        local_id = fault.meta[0]
        done = [r for r in records(res.trace, "task")
                if r.meta and r.meta[0] == local_id]
        assert len(done) == 1
        # both a different worker AND a different version are available;
        # the retry must not reuse the failed pair
        assert (done[0].worker, done[0].label) != failed_pair

    def test_retry_budget_exhaustion_aborts_the_run(self, registry):
        m = make_machine(1, 0)
        work, _ = make_two_version_task(registry, machine=m)
        # only one (version, worker) pair exists, and it always faults
        plan = FaultPlan(task_faults=[TaskFaultRule(at_starts=(1, 2, 3))])
        policy = RecoveryPolicy(max_task_retries=2, quarantine_threshold=99)
        rt = OmpSsRuntime(m, "bf", fault_plan=plan, recovery=policy)
        with pytest.raises(TaskRetryExceededError, match="faulted 3 times"):
            with rt:
                work(region("a"), region("b"))

    def test_faulted_runs_never_reach_profile_tables(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        calls = [(work, region(("a", i)), region(("b", i))) for i in range(8)]
        plan = FaultPlan(task_faults=[TaskFaultRule(worker="gpu0",
                                                    at_starts=(1, 3))])
        rt = OmpSsRuntime(m, "versioning", fault_plan=plan)
        with rt:
            for fn, *args in calls:
                fn(*args)
        res = rt.result()
        assert res.tasks_completed == 8
        # recorded executions == completed tasks: no faulted duration leaked
        table = rt.scheduler.table
        total_recorded = sum(
            grp.total_executions()
            for vset in table.sets() for grp in vset.groups()
        )
        assert total_recorded == 8


class TestWorkerDeath:
    def _axpy(self, registry, machine):
        @task(inputs=["x"], outputs=["y"], device="smp", name="axpy_smp",
              registry=registry)
        def axpy(x, y):
            y[:] = 2.0 * x + 1.0

        @task(inputs=["x"], outputs=["y"], device="cuda",
              implements="axpy_smp", name="axpy_gpu", registry=registry)
        def axpy_gpu(x, y):
            y[:] = 2.0 * x + 1.0

        machine.register_kernel_for_kind("smp", "axpy_smp",
                                         FixedCostModel(0.004))
        machine.register_kernel_for_kind("cuda", "axpy_gpu",
                                         FixedCostModel(0.001))
        return axpy

    def test_dead_gpu_tasks_are_redispatched_and_results_correct(self, registry):
        m = make_machine(2, 2)
        axpy = self._axpy(registry, m)
        n = 40
        xs = [np.full(256, float(i)) for i in range(n)]
        ys = [np.zeros(256) for _ in range(n)]
        death = 0.0035
        plan = FaultPlan(worker_failures=[WorkerFailure("gpu1", death)])
        rt = OmpSsRuntime(m, "versioning", fault_plan=plan)
        with rt:
            for x, y in zip(xs, ys):
                axpy(x, y)
        res = rt.result()

        assert res.resilience.worker_failures == 1
        # gpu1 had work (running and/or queued) that moved elsewhere
        assert res.resilience.tasks_redispatched >= 1
        assert len(records(res.trace, "worker-down")) == 1
        # the run still completes every task, numerically correct
        assert res.tasks_completed == n
        for i in range(n):
            np.testing.assert_allclose(ys[i], 2.0 * xs[i] + 1.0)
        # nothing executes on the dead worker after its death time
        late = [r for r in res.trace.for_worker("w:gpu1")
                if r.category == "task" and r.start >= death]
        assert late == []
        # the surviving GPU keeps executing afterwards
        assert any(r.category == "task" and r.start > death
                   for r in res.trace.for_worker("w:gpu0"))

    def test_aborted_task_does_not_burn_retry_budget(self, registry):
        m = make_machine(1, 1)
        axpy = self._axpy(registry, m)
        xs = [np.full(64, float(i)) for i in range(4)]
        ys = [np.zeros(64) for _ in range(4)]
        plan = FaultPlan(worker_failures=[WorkerFailure("gpu0", 0.0005)])
        # a zero retry budget: any *fault* would abort the run, so
        # completing proves the abort path never touched the budget
        policy = RecoveryPolicy(max_task_retries=0)
        rt = OmpSsRuntime(m, "versioning", fault_plan=plan, recovery=policy)
        with rt:
            for x, y in zip(xs, ys):
                axpy(x, y)
        res = rt.result()
        assert res.tasks_completed == 4
        assert res.resilience.task_faults == 0
        assert len(records(res.trace, "aborted")) <= 1


class TestDeterminism:
    def _run(self, registry):
        m = make_machine(2, 2, noise=0.05, seed=3)
        work, _ = make_two_version_task(registry, machine=m)
        calls = [(work, region(("a", i)), region(("b", i)))
                 for i in range(30)]
        plan = FaultPlan(
            seed=11,
            task_faults=[TaskFaultRule(probability=0.15)],
            transfer_faults=[TransferFaultRule(dst="gpu0", at_attempts=(2,))],
            worker_failures=[WorkerFailure("gpu1", 0.02)],
        )
        return run_with_plan(m, "versioning", calls, plan=plan)

    def test_same_fault_plan_seed_gives_identical_traces(self):
        a = self._run({})
        b = self._run({})
        assert a.resilience.any_failures  # the plan actually did something
        assert a.trace == b.trace
        assert a.makespan == b.makespan
        assert a.resilience.as_dict() == b.resilience.as_dict()
        assert a.version_counts == b.version_counts


class TestQuarantine:
    def test_streak_quarantines_then_readmits(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        calls = [(work, region(("a", i)), region(("b", i)))
                 for i in range(16)]
        # two consecutive faults on gpu0 trip the threshold
        plan = FaultPlan(task_faults=[TaskFaultRule(worker="gpu0",
                                                    at_starts=(1, 2))])
        policy = RecoveryPolicy(max_task_retries=3, quarantine_threshold=2,
                                quarantine_cooldown=0.02)
        res = run_with_plan(m, "versioning", calls, plan=plan, policy=policy)

        assert res.tasks_completed == 16
        assert res.resilience.quarantines == 1
        assert res.resilience.readmissions == 1
        (q,) = records(res.trace, "quarantine")
        (r,) = records(res.trace, "readmit")
        assert q.worker == r.worker == "w:gpu0"
        window = (q.start, q.start + 0.02)
        # no task starts on the quarantined worker inside the window
        started_in_window = [
            rec for rec in res.trace.for_worker("w:gpu0")
            if rec.category in ("task", "fault")
            and window[0] <= rec.start < window[1]
        ]
        assert started_in_window == []
        # after readmission the worker earns work again
        assert any(rec.category == "task" and rec.start >= window[1]
                   for rec in res.trace.for_worker("w:gpu0"))

    def test_success_resets_the_fault_streak(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        calls = [(work, region(("a", i)), region(("b", i)))
                 for i in range(12)]
        # faults on gpu0 starts 1 and 3: a clean execution sits between
        # them, so the streak never reaches the threshold of 2
        plan = FaultPlan(task_faults=[TaskFaultRule(worker="gpu0",
                                                    at_starts=(1, 3))])
        policy = RecoveryPolicy(quarantine_threshold=2)
        res = run_with_plan(m, "versioning", calls, plan=plan, policy=policy)
        assert res.tasks_completed == 12
        assert res.resilience.task_faults == 2
        assert res.resilience.quarantines == 0


class TestTransferFaults:
    def test_transfer_fault_is_retried_with_backoff(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        calls = [(work, region(("a", i)), region(("b", i))) for i in range(4)]
        plan = FaultPlan(transfer_faults=[
            TransferFaultRule(src="host", dst="gpu0", at_attempts=(1,)),
        ])
        res = run_with_plan(m, "versioning", calls, plan=plan)
        assert res.tasks_completed == 4
        assert res.resilience.transfer_faults == 1
        assert res.resilience.transfer_retries == 1
        faulted = records(res.trace, "transfer-fault")
        assert len(faulted) == 1
        assert faulted[0].worker == "link:host->gpu0"

    def test_transfer_retry_budget_exhaustion_aborts(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        plan = FaultPlan(transfer_faults=[
            TransferFaultRule(dst="gpu0", at_attempts=(1, 2, 3)),
        ])
        policy = RecoveryPolicy(transfer_max_retries=2)
        rt = OmpSsRuntime(m, "versioning", fault_plan=plan, recovery=policy)
        with pytest.raises(TransferRetryExceededError):
            with rt:
                # several tasks so the learning phase sends one to the GPU
                # (its input transfer then faults past the retry budget)
                for i in range(6):
                    work(region(("a", i)), region(("b", i)))
