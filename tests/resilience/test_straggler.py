"""Straggler robustness: adaptive deadlines, speculative re-execution,
the progress watchdog, and their interaction with quarantine.

These are the acceptance tests of the robustness work: a seeded plan
with one hang and a 20x worker slowdown must complete within 2x of the
fault-free makespan with speculation on, while the same plan with
speculation off stalls (progress-watchdog abort) or degrades past 10x.
"""

import pytest

from repro import FaultPlan, OmpSsRuntime, RecoveryPolicy, TaskFaultRule
from repro.resilience.faults import HangRule, WorkerSlowdown
from repro.resilience.watchdog import ProgressStallError, ProgressWatchdog
from repro.runtime.runtime import RuntimeConfig
from repro.store import ProfileStore
from tests.conftest import make_machine, make_two_version_task, region


def run_tasks(machine, calls, *, plan=None, policy=None, config=None,
              scheduler_options=None):
    """Run ``calls`` through a versioning runtime; return (rt, result)."""
    rt = OmpSsRuntime(machine, "versioning", config=config,
                      scheduler_options=scheduler_options,
                      fault_plan=plan, recovery=policy)
    with rt:
        for fn, *args in calls:
            fn(*args)
    return rt, rt.result()


def make_calls(work, n):
    return [(work, region(("a", i)), region(("b", i))) for i in range(n)]


def records(trace, category):
    return [r for r in trace if r.category == category]


# ----------------------------------------------------------------------
# Adaptive deadlines
# ----------------------------------------------------------------------
class TestAdaptiveDeadlines:
    def test_deadlines_start_cold_then_become_profile_derived(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        rt, res = run_tasks(m, make_calls(work, 16),
                            policy=RecoveryPolicy(speculate=True))
        assert res.tasks_completed == 16
        log = rt.resilience.watchdog.armed_log
        assert len(log) == 16  # one deadline per primary execution
        sources = [src for _, _, src in log]
        # the first execution has no samples anywhere: cold multiplier
        assert sources[0] == "cold"
        # each of the two versions arms cold for exactly its first
        # min_deadline_samples (=2) executions, profile ever after --
        # regardless of how the starts of the slow and fast worker
        # interleave in the log
        assert sources.count("cold") == 4
        assert sources.count("profile") == 12

    def test_profile_deadline_is_grace_mean_plus_k_sigma(self, registry):
        m = make_machine(1, 0)  # one worker: one version, fixed mean
        work, _ = make_two_version_task(registry, smp_cost=0.010, machine=m)
        policy = RecoveryPolicy(speculate=True, deadline_grace=2.0,
                                deadline_k=3.0)
        rt, res = run_tasks(m, make_calls(work, 6), policy=policy)
        assert res.tasks_completed == 6
        profile_arms = [d for _, d, src in rt.resilience.watchdog.armed_log
                        if src == "profile"]
        assert profile_arms  # noiseless: sigma == 0, deadline = 2*mean
        for d in profile_arms:
            assert d == pytest.approx(2.0 * 0.010)

    def test_cold_deadline_uses_multiplier(self, registry):
        m = make_machine(1, 0)
        work, _ = make_two_version_task(registry, smp_cost=0.010, machine=m)
        policy = RecoveryPolicy(speculate=True, cold_multiplier=5.0)
        rt, _ = run_tasks(m, make_calls(work, 2), policy=policy)
        (label0, d0, src0) = rt.resilience.watchdog.armed_log[0]
        assert src0 == "cold"
        assert d0 == pytest.approx(5.0 * 0.010)

    def test_speculation_off_arms_no_deadlines(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, machine=m)
        rt, res = run_tasks(m, make_calls(work, 6))  # default policy
        assert res.tasks_completed == 6
        assert rt.resilience.watchdog.armed_log == []


class TestWarmStartedDeadlines:
    def test_persisted_variance_arms_first_deadlines_from_profile(
        self, registry, tmp_path
    ):
        """A warm-started run must trust ``mean + k*sigma`` from run one's
        persisted profiles without re-learning: no cold deadlines at all."""
        m1 = make_machine(1, 1, noise=0.05, seed=3)
        work, _ = make_two_version_task(registry, machine=m1)
        rt1, res1 = run_tasks(m1, make_calls(work, 24),
                              policy=RecoveryPolicy(speculate=True))
        assert res1.tasks_completed == 24

        store = ProfileStore(tmp_path / "profiles.json")
        store.absorb(rt1.scheduler.table)
        hints = store.hints()
        assert hints is not None
        # the persisted entries carry the learned variance
        assert any(
            v.get("variance") not in (None, 0.0)
            for groups in hints["tasks"].values()
            for g in groups
            for v in g["versions"].values()
        )

        registry2 = {}
        m2 = make_machine(1, 1, noise=0.05, seed=4)
        work2, _ = make_two_version_task(registry2, machine=m2)
        rt2, res2 = run_tasks(
            m2, make_calls(work2, 12),
            policy=RecoveryPolicy(speculate=True),
            scheduler_options={"hints": hints},
        )
        assert res2.tasks_completed == 12
        assert rt2.scheduler.preloaded_entries > 0
        sources = [src for _, _, src in rt2.resilience.watchdog.armed_log]
        assert sources and sources[0] == "profile"
        assert all(s == "profile" for s in sources)


# ----------------------------------------------------------------------
# Speculative re-execution
# ----------------------------------------------------------------------
class TestSpeculation:
    def test_speculation_rescues_a_hang(self, registry):
        m = make_machine(2, 2)
        work, _ = make_two_version_task(registry, machine=m)
        plan = FaultPlan(seed=1, hangs=[HangRule(at_starts=(6,))])
        rt, res = run_tasks(m, make_calls(work, 30), plan=plan,
                            policy=RecoveryPolicy(speculate=True))
        assert res.tasks_completed == 30
        assert res.resilience.hangs == 1
        assert res.resilience.straggler_detected >= 1
        assert res.resilience.speculations_launched >= 1
        assert res.resilience.speculations_won >= 1
        # the hung original was withdrawn: a spec-abort closes its slice
        assert len(records(res.trace, "spec-abort")) >= 1
        assert records(res.trace, "straggler")
        assert records(res.trace, "speculate")
        res.validate()  # SAN-clean, including SAN-T007/T008

    def test_slow_original_that_still_finishes_wastes_the_copy(self, registry):
        # gpu0 runs everything in 1ms until a 2x slowdown at t=0.01; its
        # profile deadline (grace=1, k=0) then fires mid-execution, but
        # the copy lands on the 10x slower smp worker, so the original
        # still wins and the speculation is withdrawn as wasted
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        plan = FaultPlan(slowdowns=[WorkerSlowdown("gpu0", 0.01, 2.0)])
        policy = RecoveryPolicy(speculate=True, deadline_grace=1.0,
                                deadline_k=0.0)
        rt, res = run_tasks(m, make_calls(work, 20), plan=plan, policy=policy)
        assert res.tasks_completed == 20
        assert res.resilience.straggler_detected >= 1
        assert res.resilience.speculations_wasted >= 1
        res.validate()

    def test_speculation_budgets_are_respected(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        plan = FaultPlan(slowdowns=[WorkerSlowdown("gpu0", 0.01, 2.0)])
        policy = RecoveryPolicy(speculate=True, deadline_grace=1.0,
                                deadline_k=0.0, max_concurrent_speculations=1,
                                max_speculations_per_task=1)
        rt, res = run_tasks(m, make_calls(work, 20), plan=plan, policy=policy)
        assert res.tasks_completed == 20
        spec = records(res.trace, "speculate")
        # per-task budget: each task speculated at most once
        per_task = [r.meta[0] for r in spec]
        assert len(per_task) == len(set(per_task))
        res.validate()


class TestQuarantineInteraction:
    def test_no_alternate_pair_when_the_only_other_worker_is_quarantined(
        self, registry
    ):
        """gpu0 quarantines itself out for the whole run; a hang on the
        smp worker then has no speculation target (the straggler's own
        worker never counts), so recovery falls back to cancel-and-retry
        — which must still satisfy SAN-T007."""
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        plan = FaultPlan(
            task_faults=[TaskFaultRule(worker="gpu0", at_starts=(1, 2))],
            hangs=[HangRule(worker="smp0", at_starts=(2,))],
        )
        policy = RecoveryPolicy(speculate=True, quarantine_threshold=2,
                                quarantine_cooldown=10.0)
        rt, res = run_tasks(m, make_calls(work, 12), plan=plan, policy=policy)
        assert res.tasks_completed == 12
        assert res.resilience.quarantines == 1
        assert res.resilience.hangs == 1
        assert res.resilience.straggler_detected >= 1
        # no eligible pair existed: the straggler path retried instead
        assert res.resilience.speculations_launched == 0
        assert records(res.trace, "speculate") == []
        res.validate()

    def test_speculation_target_avoids_quarantined_workers(self, registry):
        """With gpu0 quarantined and gpu1 hung, the copy must land on the
        smp worker — never on a worker inside its quarantine window."""
        m = make_machine(1, 2)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        plan = FaultPlan(
            task_faults=[TaskFaultRule(worker="gpu0", at_starts=(1, 2))],
            hangs=[HangRule(worker="gpu1", at_starts=(2,))],
        )
        policy = RecoveryPolicy(speculate=True, quarantine_threshold=2,
                                quarantine_cooldown=10.0)
        rt, res = run_tasks(m, make_calls(work, 16), plan=plan, policy=policy)
        assert res.tasks_completed == 16
        assert res.resilience.quarantines == 1

        windows = {}  # worker -> (start, end) quarantine window
        for q in records(res.trace, "quarantine"):
            cooldown = float(q.label.split("=", 1)[1])
            windows[q.worker] = (q.start, q.start + cooldown)
        assert "w:gpu0" in windows
        spec = records(res.trace, "speculate")
        assert spec  # the gpu1 hang did trigger a speculation
        for r in spec:
            lo_hi = windows.get(r.worker)
            assert lo_hi is None or not (lo_hi[0] <= r.start < lo_hi[1]), (
                f"speculative copy targeted quarantined worker {r.worker}"
            )
        res.validate()

    def test_probationary_readmission_with_speculation_enabled(self, registry):
        m = make_machine(1, 1)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        plan = FaultPlan(task_faults=[TaskFaultRule(worker="gpu0",
                                                    at_starts=(1, 2))])
        policy = RecoveryPolicy(speculate=True, quarantine_threshold=2,
                                quarantine_cooldown=0.02)
        rt, res = run_tasks(m, make_calls(work, 16), plan=plan, policy=policy)
        assert res.tasks_completed == 16
        assert res.resilience.quarantines == 1
        assert res.resilience.readmissions == 1
        # after readmission the worker earns work again
        (r,) = records(res.trace, "readmit")
        assert any(rec.category == "task" and rec.start >= r.start
                   for rec in res.trace.for_worker("w:gpu0"))
        res.validate()


# ----------------------------------------------------------------------
# The acceptance criterion (test-sized mirror of bench_straggler)
# ----------------------------------------------------------------------
class TestAcceptance:
    N = 40

    def _plan(self):
        return FaultPlan(
            seed=7,
            hangs=[HangRule(at_starts=(6,))],
            slowdowns=[WorkerSlowdown("gpu1", 0.01, 20.0)],
        )

    def _run(self, *, plan, speculate, progress_horizon=None):
        registry = {}
        m = make_machine(2, 2)
        work, _ = make_two_version_task(registry, smp_cost=0.010,
                                        gpu_cost=0.001, machine=m)
        config = RuntimeConfig(progress_horizon=progress_horizon)
        _, res = run_tasks(m, make_calls(work, self.N), plan=plan,
                           config=config,
                           policy=RecoveryPolicy(speculate=speculate))
        assert res.tasks_completed == self.N
        res.validate()
        return res

    def test_speculation_recovers_within_2x_while_off_stalls(self):
        base = self._run(plan=None, speculate=True)
        spec = self._run(plan=self._plan(), speculate=True)
        assert spec.resilience.straggler_detected >= 1
        assert spec.resilience.speculations_launched >= 1
        assert spec.resilience.hangs == 1
        assert spec.makespan <= 2.0 * base.makespan, (
            f"speculation recovered only to "
            f"{spec.makespan / base.makespan:.2f}x of fault-free"
        )
        # same plan, speculation off: the hang pins its worker forever and
        # the progress watchdog is the only way out
        with pytest.raises(ProgressStallError):
            self._run(plan=self._plan(), speculate=False,
                      progress_horizon=base.makespan)


# ----------------------------------------------------------------------
# Progress watchdog
# ----------------------------------------------------------------------
class TestProgressWatchdog:
    def test_fires_on_a_hang_with_diagnostic_dump(self, registry):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(registry, machine=m)
        plan = FaultPlan(hangs=[HangRule(at_starts=(1,))])
        config = RuntimeConfig(progress_horizon=0.005, progress_stall_limit=2)
        with pytest.raises(ProgressStallError, match="no task completed") as ei:
            run_tasks(m, make_calls(work, 8), plan=plan, config=config)
        assert "progress watchdog dump at t=" in ei.value.dump
        assert "unfinished" in str(ei.value)

    def test_clean_run_is_not_aborted(self, registry):
        m = make_machine(2, 1)
        work, _ = make_two_version_task(registry, machine=m)
        # the horizon must exceed the longest task (0.010s smp cost):
        # "no completion for a whole horizon" must mean a real stall
        config = RuntimeConfig(progress_horizon=0.02)
        rt, res = run_tasks(m, make_calls(work, 12), config=config)
        assert res.tasks_completed == 12
        assert rt.progress_watchdog is not None

    def test_config_validation(self):
        with pytest.raises(ValueError, match="progress_horizon"):
            RuntimeConfig(progress_horizon=-1.0)
        with pytest.raises(ValueError, match="stall_limit"):
            RuntimeConfig(progress_stall_limit=0)

    def test_watchdog_ctor_validation(self, registry):
        m = make_machine(1, 0)
        work, _ = make_two_version_task(registry, machine=m)
        rt = OmpSsRuntime(m, "versioning")
        with pytest.raises(ValueError, match="horizon"):
            ProgressWatchdog(rt, 0.0)
        with pytest.raises(ValueError, match="stall_limit"):
            ProgressWatchdog(rt, 1.0, stall_limit=0)
