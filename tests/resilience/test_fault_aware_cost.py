"""Fault-aware cost estimation: the earliest-executor computation
inflates a worker's estimated finish time by its observed fault rate, so
a flaky-but-fast device stops monopolising the reliable phase."""

import pytest

from repro.core.versioning import VersioningScheduler
from repro.resilience.faults import FaultPlan, TaskFaultRule
from repro.resilience.recovery import ResilienceManager
from repro.runtime.runtime import OmpSsRuntime
from tests.conftest import make_machine, make_two_version_task, region


def run_flaky_gpu(*, fault_aware, n_tasks=80):
    """GPU slightly faster than SMP on paper, but every other GPU start
    faults transiently (rate ~0.5 → effective cost doubles)."""
    registry = {}
    m = make_machine(2, 1)
    # close enough that a 2x fault inflation flips the decision
    work, _ = make_two_version_task(
        registry, machine=m, smp_cost=0.010, gpu_cost=0.008
    )
    plan = FaultPlan(
        task_faults=[
            TaskFaultRule(worker="gpu0", at_starts=tuple(range(1, 4 * n_tasks, 2)))
        ]
    )
    sched = VersioningScheduler(fault_aware=fault_aware)
    rt = OmpSsRuntime(m, sched, fault_plan=plan)
    with rt:
        for i in range(n_tasks):
            work(region(("a", i)), region(("b", i)))
    res = rt.result()
    gpu_runs = res.version_counts["work_smp"].get("work_gpu", 0)
    return res, sched, gpu_runs


class TestWorkerFaultRate:
    def test_rate_is_faults_over_attempts(self):
        mgr = ResilienceManager()
        mgr._worker_faults["w:gpu0"] = 3
        mgr._worker_completions["w:gpu0"] = 9
        assert mgr.worker_fault_rate("w:gpu0") == pytest.approx(0.25)

    def test_unknown_worker_rate_is_zero(self):
        assert ResilienceManager().worker_fault_rate("w:nowhere") == 0.0

    def test_fault_rates_lists_all_seen_workers(self):
        mgr = ResilienceManager()
        mgr._worker_faults["w:gpu0"] = 1
        mgr._worker_completions["w:smp0"] = 4
        rates = mgr.fault_rates()
        assert rates == {"w:gpu0": 1.0, "w:smp0": 0.0}

    def test_rates_tracked_through_a_run(self):
        res, _, _ = run_flaky_gpu(fault_aware=False, n_tasks=20)
        # ResilienceManager counted both faults and completions on gpu0
        assert res.resilience.task_faults > 0


class TestFaultAwareSelection:
    def test_flaky_but_fast_device_is_discounted(self):
        res_off, sched_off, gpu_off = run_flaky_gpu(fault_aware=False)
        res_on, sched_on, gpu_on = run_flaky_gpu(fault_aware=True)
        # both runs finish the full workload despite the faults
        assert res_off.tasks_completed == res_on.tasks_completed == 80
        # without fault awareness the nominally-faster GPU keeps winning
        # the earliest-executor race; with it, the observed ~50% fault
        # rate doubles its effective cost and the SMP workers take over
        assert gpu_on < gpu_off
        # fault-triggered retries shrink accordingly
        assert res_on.resilience.task_faults < res_off.resilience.task_faults

    def test_default_is_off(self):
        assert VersioningScheduler().fault_aware is False

    def test_rate_cap_bounds_the_inflation(self):
        with pytest.raises(ValueError, match="fault_rate_cap"):
            VersioningScheduler(fault_aware=True, fault_rate_cap=1.0)

    def test_fault_aware_run_validates_clean(self):
        res, _, _ = run_flaky_gpu(fault_aware=True, n_tasks=40)
        # fault-aware placement must not break any trace invariant
        diags = res.validate(strict=False)
        assert all(d.severity.name != "ERROR" for d in diags)
