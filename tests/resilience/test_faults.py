"""Unit tests for the deterministic fault-plan machinery."""

import pytest

from repro.resilience.faults import (
    FaultPlan,
    HangRule,
    LinkDegradation,
    MessageFaultRule,
    NodeCrashRule,
    TaskFaultRule,
    TransferFaultRule,
    WorkerFailure,
    WorkerSlowdown,
)


class TestRuleValidation:
    def test_task_rule_needs_a_trigger(self):
        with pytest.raises(ValueError, match="never fire"):
            TaskFaultRule(worker="gpu0")

    def test_task_rule_rejects_zero_start_index(self):
        with pytest.raises(ValueError, match="1-based"):
            TaskFaultRule(at_starts=(0,))

    def test_task_rule_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            TaskFaultRule(probability=1.5)

    def test_task_rule_rejects_bad_work_fraction(self):
        with pytest.raises(ValueError, match="work_fraction"):
            TaskFaultRule(at_starts=(1,), work_fraction=0.0)

    def test_transfer_rule_needs_a_trigger(self):
        with pytest.raises(ValueError, match="never fire"):
            TransferFaultRule(src="host")

    def test_worker_failure_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkerFailure("gpu0", -1.0)

    def test_plan_rejects_duplicate_worker_failure(self):
        with pytest.raises(ValueError, match="twice"):
            FaultPlan(worker_failures=[WorkerFailure("gpu0", 1.0),
                                       WorkerFailure("gpu0", 2.0)])

    def test_plan_normalises_lists_to_tuples(self):
        plan = FaultPlan(task_faults=[TaskFaultRule(at_starts=[2])])
        assert plan.task_faults[0].at_starts == (2,)

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(worker_failures=[WorkerFailure("gpu0", 1.0)]).empty


class TestTaskFaultMatching:
    def test_at_starts_counts_matching_starts_only(self):
        plan = FaultPlan(task_faults=[
            TaskFaultRule(worker="gpu0", kernel="k", at_starts=(2,)),
        ])
        inj = plan.injector()
        # non-matching starts do not advance the rule's counter
        assert inj.task_fault("w:smp0", "smp0", "k") is None
        assert inj.task_fault("w:gpu0", "gpu0", "other") is None
        # first matching start: clean; second: faults
        assert inj.task_fault("w:gpu0", "gpu0", "k") is None
        assert inj.task_fault("w:gpu0", "gpu0", "k") == pytest.approx(0.5)
        assert inj.task_fault("w:gpu0", "gpu0", "k") is None

    def test_worker_matches_device_or_worker_name(self):
        plan = FaultPlan(task_faults=[TaskFaultRule(worker="w:gpu0", at_starts=(1,))])
        inj = plan.injector()
        assert inj.task_fault("w:gpu0", "gpu0", "k") is not None

    def test_wildcards_match_everything(self):
        plan = FaultPlan(task_faults=[TaskFaultRule(at_starts=(1, 2))])
        inj = plan.injector()
        assert inj.task_fault("w:a", "a", "x") is not None
        assert inj.task_fault("w:b", "b", "y") is not None
        assert inj.task_fault("w:c", "c", "z") is None

    def test_work_fraction_returned(self):
        plan = FaultPlan(task_faults=[
            TaskFaultRule(at_starts=(1,), work_fraction=0.25),
        ])
        assert plan.injector().task_fault("w", "d", "k") == pytest.approx(0.25)

    def test_probabilistic_faults_are_deterministic(self):
        plan = FaultPlan(seed=7, task_faults=[TaskFaultRule(probability=0.3)])
        inj1, inj2 = plan.injector(), plan.injector()
        seq1 = [inj1.task_fault("w", "d", "k") is not None for _ in range(50)]
        seq2 = [inj2.task_fault("w", "d", "k") is not None for _ in range(50)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)

    def test_different_seeds_differ(self):
        def seq(seed):
            plan = FaultPlan(seed=seed,
                             task_faults=[TaskFaultRule(probability=0.5)])
            inj = plan.injector()
            return [inj.task_fault("w", "d", "k") is not None for _ in range(64)]

        assert seq(1) != seq(2)


class TestTransferFaultMatching:
    def test_at_attempts_counts_per_link(self):
        plan = FaultPlan(transfer_faults=[TransferFaultRule(at_attempts=(1,))])
        inj = plan.injector()
        # each directed link has its own attempt counter
        assert inj.transfer_fault("host", "gpu0") is True
        assert inj.transfer_fault("host", "gpu0") is False
        assert inj.transfer_fault("host", "gpu1") is True
        assert inj.transfer_fault("gpu0", "host") is True

    def test_src_dst_filters(self):
        plan = FaultPlan(transfer_faults=[
            TransferFaultRule(src="host", dst="gpu0", at_attempts=(1,)),
        ])
        inj = plan.injector()
        assert inj.transfer_fault("host", "gpu1") is False
        assert inj.transfer_fault("gpu0", "host") is False
        assert inj.transfer_fault("host", "gpu0") is True


class TestHangMatching:
    def test_hang_rule_needs_a_trigger(self):
        with pytest.raises(ValueError, match="never fire"):
            HangRule(worker="gpu0")

    def test_hang_rule_rejects_zero_start_index(self):
        with pytest.raises(ValueError, match="1-based"):
            HangRule(at_starts=(0,))

    def test_at_starts_counts_matching_starts_only(self):
        plan = FaultPlan(hangs=[HangRule(worker="gpu0", at_starts=(2,))])
        inj = plan.injector()
        assert inj.task_hang("w:smp0", "smp0", "k") is False  # no match
        assert inj.task_hang("w:gpu0", "gpu0", "k") is False  # 1st match
        assert inj.task_hang("w:gpu0", "gpu0", "k") is True   # 2nd match
        assert inj.task_hang("w:gpu0", "gpu0", "k") is False

    def test_probabilistic_hangs_are_deterministic(self):
        plan = FaultPlan(seed=11, hangs=[HangRule(probability=0.3)])
        inj1, inj2 = plan.injector(), plan.injector()
        seq1 = [inj1.task_hang("w", "d", "k") for _ in range(50)]
        seq2 = [inj2.task_hang("w", "d", "k") for _ in range(50)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)


class TestWorkerSlowdown:
    def test_rejects_negative_at_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkerSlowdown("gpu0", -1.0, 2.0)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError, match="positive"):
            WorkerSlowdown("gpu0", 0.0, 0.0)

    def test_rejects_until_before_at_time(self):
        with pytest.raises(ValueError, match="until"):
            WorkerSlowdown("gpu0", 1.0, 2.0, until=0.5)

    def test_window_and_matching(self):
        plan = FaultPlan(slowdowns=[WorkerSlowdown("gpu0", 1.0, 4.0, until=2.0)])
        inj = plan.injector()
        assert inj.slowdown_factor("w:gpu0", "gpu0", 0.5) == pytest.approx(1.0)
        assert inj.slowdown_factor("w:gpu0", "gpu0", 1.0) == pytest.approx(4.0)
        assert inj.slowdown_factor("w:gpu0", "gpu0", 2.0) == pytest.approx(1.0)
        # other workers unaffected; worker name matches too
        assert inj.slowdown_factor("w:gpu1", "gpu1", 1.5) == pytest.approx(1.0)
        plan2 = FaultPlan(slowdowns=[WorkerSlowdown("w:gpu0", 0.0, 3.0)])
        assert plan2.injector().slowdown_factor("w:gpu0", "gpu0", 0.0) == pytest.approx(3.0)

    def test_overlapping_slowdowns_compose_multiplicatively(self):
        plan = FaultPlan(slowdowns=[
            WorkerSlowdown("gpu0", 0.0, 2.0),
            WorkerSlowdown("gpu0", 1.0, 3.0),
        ])
        inj = plan.injector()
        assert inj.slowdown_factor("w:gpu0", "gpu0", 0.5) == pytest.approx(2.0)
        assert inj.slowdown_factor("w:gpu0", "gpu0", 1.5) == pytest.approx(6.0)


class TestNetworkRuleValidation:
    """Satellite: malformed chaos rules fail fast, naming the rule."""

    def test_message_rule_needs_a_trigger(self):
        with pytest.raises(ValueError, match="MessageFaultRule.*never fire"):
            MessageFaultRule(src="host")

    def test_message_rule_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="MessageFaultRule.*drop probability"):
            MessageFaultRule(drop=-0.1)
        with pytest.raises(ValueError, match="duplicate probability"):
            MessageFaultRule(duplicate=1.5)

    def test_message_rule_rejects_zero_message_index(self):
        with pytest.raises(ValueError, match="1-based"):
            MessageFaultRule(at_messages=(0,))

    def test_message_rule_rejects_delay_without_delay_time(self):
        with pytest.raises(ValueError, match="delay without delay_time"):
            MessageFaultRule(delay=0.5)

    def test_degradation_rejects_inverted_window(self):
        with pytest.raises(ValueError, match="LinkDegradation.*inverted window"):
            LinkDegradation(at_time=2.0, until=1.0, bandwidth_factor=2.0)

    def test_degradation_rejects_speedups(self):
        with pytest.raises(ValueError, match="degradation"):
            LinkDegradation(bandwidth_factor=0.5)

    def test_degradation_needs_an_effect(self):
        with pytest.raises(ValueError, match="never fire"):
            LinkDegradation(src="host")

    def test_node_crash_rejects_node_zero(self):
        with pytest.raises(ValueError, match="NodeCrashRule.*node 0"):
            NodeCrashRule(node=0, at_time=1.0)

    def test_node_crash_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            NodeCrashRule(node=1, at_time=-1.0)

    def test_node_crash_rejects_nonpositive_rejoin(self):
        with pytest.raises(ValueError, match="rejoin_after"):
            NodeCrashRule(node=1, at_time=1.0, rejoin_after=0.0)

    def test_plan_rejects_duplicate_node_crash(self):
        with pytest.raises(ValueError, match="node 2 crashes twice"):
            FaultPlan(node_crashes=[NodeCrashRule(node=2, at_time=1.0),
                                    NodeCrashRule(node=2, at_time=2.0)])


class TestMessageFaultMatching:
    def test_at_messages_counts_matching_transmissions_only(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(src="host", at_messages=(2,)),
        ])
        inj = plan.injector()
        assert inj.message_fault("node1", "host", "t") is None  # no match
        assert inj.message_fault("host", "node1", "t") is None  # 1st match
        fault = inj.message_fault("host", "node2", "t")         # 2nd match
        assert fault is not None and fault.drop
        assert inj.message_fault("host", "node1", "t") is None

    def test_label_prefix_targets_ack_traffic(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="ack:", at_messages=(1,)),
        ])
        inj = plan.injector()
        assert inj.message_fault("host", "node1", "gemm") is None
        assert inj.message_fault("node1", "host", "ack:gemm") is not None

    def test_probabilistic_drops_are_deterministic(self):
        plan = FaultPlan(seed=7, message_faults=[MessageFaultRule(drop=0.3)])
        inj1, inj2 = plan.injector(), plan.injector()
        seq1 = [inj1.message_fault("a", "b", "x") is not None for _ in range(60)]
        seq2 = [inj2.message_fault("a", "b", "x") is not None for _ in range(60)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)

    def test_delay_carries_delay_time(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(delay=1.0, delay_time=0.25),
        ])
        fault = plan.injector().message_fault("a", "b", "x")
        assert fault.delay == pytest.approx(0.25)
        assert not fault.drop and not fault.duplicate


class TestLinkDegradationMatching:
    def test_window_and_composition(self):
        plan = FaultPlan(link_degradations=[
            LinkDegradation(src="host", dst="node1", at_time=1.0, until=2.0,
                            bandwidth_factor=4.0),
            LinkDegradation(dst="node1", at_time=0.0, latency_factor=3.0),
        ])
        inj = plan.injector()
        assert inj.link_factors("host", "node1", 0.5) == (1.0, 3.0)
        assert inj.link_factors("host", "node1", 1.5) == (4.0, 3.0)
        assert inj.link_factors("host", "node1", 2.0) == (1.0, 3.0)
        assert inj.link_factors("host", "node2", 1.5) == (1.0, 1.0)
