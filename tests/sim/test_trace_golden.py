"""Golden-trace equivalence suite (the tentpole's non-negotiable gate).

Every case in :mod:`sim.golden_cases` — app × scheduler × machine ×
seed, with and without fault plans, with and without speculation — must
reproduce the committed SHA-256 digests of its serialized
:class:`RunResult` and :class:`Trace` **byte for byte**, on both the
pure-Python and the compiled event-core backend.  The fixtures were
generated from the pre-optimization tree, so a pass simultaneously
proves

* the flattened hot path did not change observable behavior vs the
  seed commit, and
* the two backends are trace-equivalent.

Regenerate fixtures only after an intentional semantic change::

    PYTHONPATH=src python -m pytest tests/sim/test_trace_golden.py --update-golden
"""

from __future__ import annotations

import pytest

from .conftest import use_backend
from .golden_cases import (
    CASES,
    CASES_BY_ID,
    compute_all,
    digest_result,
    load_fixture,
    run_case,
    write_fixture,
)

CASE_IDS = list(CASES_BY_ID)


@pytest.fixture(scope="session")
def golden(request):
    """The committed digests (regenerated under ``--update-golden``)."""
    if request.config.getoption("--update-golden"):
        with use_backend("pure"):
            payload = compute_all()
        write_fixture(payload)
        return payload
    return load_fixture()


@pytest.fixture(scope="session")
def pure_digests():
    with use_backend("pure"):
        return compute_all()


@pytest.fixture(scope="session")
def compiled_digests():
    from repro.sim.evcore_build import EvcoreBuildError, load_evcore

    try:
        load_evcore()
    except EvcoreBuildError as exc:
        pytest.skip(f"compiled event core unavailable: {exc}")
    with use_backend("compiled"):
        return compute_all()


def test_fixture_covers_every_case(golden):
    assert sorted(golden) == sorted(CASE_IDS)


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_pure_backend_matches_golden(case_id, golden, pure_digests):
    assert pure_digests[case_id] == golden[case_id]


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_compiled_backend_matches_golden(case_id, golden, compiled_digests):
    assert compiled_digests[case_id] == golden[case_id]


def test_armed_wall_deadline_does_not_perturb_traces(golden):
    """A generous armed deadline must not change a single trace byte.

    The deadline check consumes no simulated time and no RNG draws; the
    digest must equal the fixture recorded with the deadline disarmed.
    """
    case = CASES[0]
    with use_backend("pure"):
        result, events = run_case(case, wall_deadline=600.0)
    assert digest_result(result, events) == golden[case.id]
