"""Tests for kernel cost models and the per-device PerfModel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.perfmodel import (
    AffineBytesCostModel,
    FixedCostModel,
    FlopsCostModel,
    GemmCostModel,
    PerfModel,
    ScaledCostModel,
    TableCostModel,
)


class TestFixedCostModel:
    def test_constant(self):
        m = FixedCostModel(0.5)
        assert m(0, {}) == 0.5
        assert m(10**9, {}) == 0.5


class TestAffineBytesCostModel:
    def test_linear_in_bytes(self):
        m = AffineBytesCostModel(base=0.001, bandwidth=1e9)
        assert m(0, {}) == pytest.approx(0.001)
        assert m(10**9, {}) == pytest.approx(1.001)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            AffineBytesCostModel(0.0, 0.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            AffineBytesCostModel(0.0, -1.0)


class TestGemmCostModel:
    def test_square_tile_flops(self):
        m = GemmCostModel(gflops=2.0)  # 2e9 flop/s
        # 2 * 100^3 flops = 2e6 -> 1e-3 s
        assert m(0, {"n": 100}) == pytest.approx(1e-3)

    def test_rectangular(self):
        m = GemmCostModel(gflops=1.0)
        d = m(0, {"n": 10, "m": 20, "k": 30})
        assert d == pytest.approx(2 * 10 * 20 * 30 / 1e9)

    def test_launch_overhead_added(self):
        m = GemmCostModel(gflops=1.0, launch_overhead=0.5)
        assert m(0, {"n": 1}) == pytest.approx(0.5 + 2e-9)

    def test_missing_n_raises(self):
        with pytest.raises(KeyError, match="params\\['n'\\]"):
            GemmCostModel(1.0)(0, {})

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            GemmCostModel(0.0)


class TestFlopsCostModel:
    def test_duration_from_flops(self):
        m = FlopsCostModel(gflops=10.0)
        assert m(0, {"flops": 1e9}) == pytest.approx(0.1)

    def test_missing_flops_raises(self):
        with pytest.raises(KeyError, match="flops"):
            FlopsCostModel(1.0)(0, {})


class TestTableCostModel:
    def test_exact_lookup(self):
        m = TableCostModel({100: 1.0, 200: 3.0})
        assert m(100, {}) == 1.0
        assert m(200, {}) == 3.0

    def test_interpolation(self):
        m = TableCostModel({100: 1.0, 200: 3.0})
        assert m(150, {}) == pytest.approx(2.0)

    def test_edge_extrapolation_clamps(self):
        m = TableCostModel({100: 1.0, 200: 3.0})
        assert m(50, {}) == 1.0
        assert m(500, {}) == 3.0

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TableCostModel({})


class TestScaledCostModel:
    def test_scaling(self):
        inner = FixedCostModel(1.0)
        assert ScaledCostModel(inner, 60.0)(0, {}) == pytest.approx(60.0)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError):
            ScaledCostModel(FixedCostModel(1.0), 0.0)


class TestPerfModel:
    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="no cost model"):
            PerfModel().duration("nope", 0, {})

    def test_register_and_query(self):
        pm = PerfModel()
        pm.register("k", FixedCostModel(0.1))
        assert pm.has_kernel("k")
        assert not pm.has_kernel("other")
        assert pm.kernels() == ["k"]
        assert pm.duration("k", 0, {}) == 0.1

    def test_no_noise_is_deterministic_exactly(self):
        pm = PerfModel({"k": FixedCostModel(0.1)}, noise_cv=0.0)
        assert pm.duration("k", 0, {}) == 0.1
        assert pm.duration("k", 0, {}) == 0.1

    def test_noise_varies_but_seeded(self):
        a = PerfModel({"k": FixedCostModel(0.1)}, noise_cv=0.1, seed=5)
        b = PerfModel({"k": FixedCostModel(0.1)}, noise_cv=0.1, seed=5)
        seq_a = [a.duration("k", 0, {}) for _ in range(20)]
        seq_b = [b.duration("k", 0, {}) for _ in range(20)]
        assert seq_a == seq_b
        assert len(set(seq_a)) > 1

    def test_noise_bounded_and_positive(self):
        pm = PerfModel({"k": FixedCostModel(1.0)}, noise_cv=0.2, seed=3)
        samples = [pm.duration("k", 0, {}) for _ in range(500)]
        assert all(0.4 - 1e-9 <= s <= 1.6 + 1e-9 for s in samples)

    def test_noise_mean_near_nominal(self):
        pm = PerfModel({"k": FixedCostModel(1.0)}, noise_cv=0.05, seed=11)
        samples = [pm.duration("k", 0, {}) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.02)

    def test_invalid_noise_cv_rejected(self):
        with pytest.raises(ValueError):
            PerfModel(noise_cv=-0.1)
        with pytest.raises(ValueError):
            PerfModel(noise_cv=1.0)

    @given(st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=50, deadline=None)
    def test_affine_monotone_in_bytes(self, nbytes):
        m = AffineBytesCostModel(1e-6, 5e9)
        assert m(nbytes, {}) <= m(nbytes + 1024, {})
