"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    WALL_DEADLINE_CHECK_EVERY,
    Event,
    EventKind,
    SimEngine,
    WallDeadlineExceededError,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert SimEngine().now == 0.0

    def test_single_event_advances_clock(self):
        eng = SimEngine()
        fired = []
        eng.schedule(1.5, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [1.5]
        assert eng.now == 1.5

    def test_events_fire_in_time_order(self):
        eng = SimEngine()
        fired = []
        for t in (3.0, 1.0, 2.0):
            eng.schedule(t, lambda t=t: fired.append(t))
        eng.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        eng = SimEngine()
        fired = []
        for i in range(10):
            eng.schedule(1.0, lambda i=i: fired.append(i))
        eng.run()
        assert fired == list(range(10))

    def test_schedule_after_uses_relative_delay(self):
        eng = SimEngine()
        out = []
        eng.schedule(1.0, lambda: eng.schedule_after(0.5, lambda: out.append(eng.now)))
        eng.run()
        assert out == [1.5]

    def test_schedule_in_past_rejected(self):
        eng = SimEngine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError, match="before current time"):
            eng.schedule(0.5, lambda: None)

    def test_schedule_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            SimEngine().schedule(float("nan"), lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="negative delay"):
            SimEngine().schedule_after(-1.0, lambda: None)

    def test_schedule_at_current_time_allowed(self):
        eng = SimEngine()
        fired = []
        eng.schedule(0.0, lambda: fired.append(True))
        eng.run()
        assert fired == [True]

    def test_events_scheduled_during_run_execute(self):
        eng = SimEngine()
        fired = []
        eng.schedule(1.0, lambda: eng.schedule(2.0, lambda: fired.append("inner")))
        eng.run()
        assert fired == ["inner"]
        assert eng.now == 2.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = SimEngine()
        fired = []
        ev = eng.schedule(1.0, lambda: fired.append("a"))
        eng.schedule(2.0, lambda: fired.append("b"))
        ev.cancel()
        eng.run()
        assert fired == ["b"]

    def test_cancelled_event_does_not_advance_clock(self):
        eng = SimEngine()
        ev = eng.schedule(5.0, lambda: None)
        ev.cancel()
        eng.run()
        assert eng.now == 0.0

    def test_cancelled_not_counted_in_processed(self):
        eng = SimEngine()
        ev = eng.schedule(1.0, lambda: None)
        ev.cancel()
        eng.schedule(2.0, lambda: None)
        eng.run()
        assert eng.events_processed == 1


class TestRunControl:
    def test_step_returns_false_when_empty(self):
        assert SimEngine().step() is False

    def test_step_executes_one_event(self):
        eng = SimEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(2.0, lambda: fired.append(2))
        assert eng.step() is True
        assert fired == [1]

    def test_run_until_stops_before_later_events(self):
        eng = SimEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.schedule(5.0, lambda: fired.append(5))
        eng.run(until=3.0)
        assert fired == [1]
        assert eng.now == 3.0
        eng.run()
        assert fired == [1, 5]

    def test_run_returns_executed_count(self):
        eng = SimEngine()
        for t in (1.0, 2.0, 3.0):
            eng.schedule(t, lambda: None)
        assert eng.run() == 3

    def test_max_events_guard(self):
        eng = SimEngine()

        def resubmit():
            eng.schedule_after(1.0, resubmit)

        eng.schedule(0.0, resubmit)
        with pytest.raises(RuntimeError, match="max_events"):
            eng.run(max_events=50)

    def test_max_events_executes_exactly_the_limit(self):
        # regression: the guard used to fire only after N+1 executions
        eng = SimEngine()
        fired = []

        def resubmit():
            fired.append(eng.now)
            eng.schedule_after(1.0, resubmit)

        eng.schedule(0.0, resubmit)
        with pytest.raises(RuntimeError, match="max_events"):
            eng.run(max_events=50)
        assert len(fired) == 50

    def test_max_events_zero_executes_nothing(self):
        eng = SimEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        with pytest.raises(RuntimeError, match="max_events"):
            eng.run(max_events=0)
        assert fired == []
        assert eng.now == 0.0

    def test_run_until_advances_clock_on_empty_queue(self):
        # regression: an empty queue used to leave ``now`` behind
        eng = SimEngine()
        assert eng.run(until=5.0) == 0
        assert eng.now == 5.0

    def test_run_until_advances_clock_when_queue_drains_early(self):
        eng = SimEngine()
        fired = []
        eng.schedule(1.0, lambda: fired.append(1))
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0

    def test_run_until_never_rewinds_the_clock(self):
        eng = SimEngine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        assert eng.now == 5.0
        eng.run(until=3.0)
        assert eng.now == 5.0

    def test_run_not_reentrant(self):
        eng = SimEngine()
        err = []

        def inner():
            try:
                eng.run()
            except RuntimeError as e:
                err.append(str(e))

        eng.schedule(1.0, inner)
        eng.run()
        assert err and "not reentrant" in err[0]

    def test_reset(self):
        eng = SimEngine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.reset()
        assert eng.now == 0.0
        assert eng.pending == 0
        assert eng.events_processed == 0


class TestEventObject:
    def test_event_ordering(self):
        a = Event(1.0, 0, EventKind.GENERIC, lambda: None)
        b = Event(1.0, 1, EventKind.GENERIC, lambda: None)
        c = Event(0.5, 2, EventKind.GENERIC, lambda: None)
        assert a < b
        assert c < a

    def test_pending_counts_queue(self):
        eng = SimEngine()
        eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_execution_order_is_sorted(self, times):
        eng = SimEngine()
        fired = []
        for t in times:
            eng.schedule(t, lambda t=t: fired.append(t))
        eng.run()
        assert fired == sorted(times)
        assert eng.now == max(times)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cancellation_subset(self, spec):
        eng = SimEngine()
        fired = []
        for t, keep in spec:
            ev = eng.schedule(t, lambda t=t: fired.append(t))
            if not keep:
                ev.cancel()
        eng.run()
        assert fired == sorted(t for t, keep in spec if keep)

class TestWallDeadline:
    """Cooperative wall-clock deadline (service per-submission budgets)."""

    def test_expired_deadline_raises_typed_error(self):
        import time

        eng = SimEngine()
        for i in range(WALL_DEADLINE_CHECK_EVERY + 1):
            eng.schedule(float(i), lambda: None)
        eng.wall_deadline = time.perf_counter() - 1.0
        with pytest.raises(WallDeadlineExceededError) as err:
            eng.run()
        assert err.value.overshoot > 0
        # the check is cooperative: sampled once per window, so at most
        # one full window of events ran before the raise
        assert eng.events_processed <= WALL_DEADLINE_CHECK_EVERY

    def test_generous_deadline_does_not_interfere(self):
        import time

        eng = SimEngine()
        fired = []
        for i in range(WALL_DEADLINE_CHECK_EVERY * 2):
            eng.schedule(float(i), lambda i=i: fired.append(i))
        eng.wall_deadline = time.perf_counter() + 300.0
        eng.run()
        assert len(fired) == WALL_DEADLINE_CHECK_EVERY * 2

    def test_no_deadline_means_no_clock_sampling(self):
        eng = SimEngine()
        assert eng.wall_deadline is None
        eng.schedule(1.0, lambda: None)
        assert eng.run() == 1


class _FakeClock:
    """Deterministic perf_counter stand-in: advances a fixed step per call.

    Because the engine samples the wall clock only at deadline-check
    ordinals, a fixed per-call step turns "which event ordinal trips the
    deadline" into a pure function of the sampling schedule — exactly
    the thing the batched/stepped equivalence must pin.
    """

    def __init__(self, step=1.0):
        self.step = step
        self.t = 0.0

    def perf_counter(self):
        self.t += self.step
        return self.t


class TestWallDeadlineModeEquivalence:
    """Regression: the batched drains must sample the deadline at the
    exact event ordinals the one-event-per-call step() path uses, so
    deadline-exceeded fires at the identical processed-event count in
    all three modes (step / run / run_while)."""

    N_EVENTS = WALL_DEADLINE_CHECK_EVERY * 3 + 10
    #: trips on the third sample: checks happen at processed-event
    #: ordinals 0, 256, 512, ... and the fake clock ticks once per check
    DEADLINE = 2.5

    def _engine(self, monkeypatch):
        from repro.sim import engine as engine_mod

        eng = SimEngine()
        monkeypatch.setattr(engine_mod, "_time", _FakeClock())
        eng.wall_deadline = self.DEADLINE
        for i in range(self.N_EVENTS):
            eng.schedule(float(i), lambda: None)
        return eng

    def _trip_ordinal(self, eng, drive):
        with pytest.raises(WallDeadlineExceededError):
            drive(eng)
        return eng.events_processed

    def test_all_modes_trip_at_same_event_ordinal(self, monkeypatch):
        def drive_step(eng):
            while eng.step():
                pass

        def drive_run(eng):
            eng.run()

        def drive_run_while(eng):
            eng.run_while(lambda: True)

        ordinals = {
            name: self._trip_ordinal(self._engine(monkeypatch), drive)
            for name, drive in [
                ("step", drive_step),
                ("run", drive_run),
                ("run_while", drive_run_while),
            ]
        }
        assert len(set(ordinals.values())) == 1, ordinals
        # the trip lands on a sampling ordinal, after at least one window
        tripped = next(iter(ordinals.values()))
        assert tripped % WALL_DEADLINE_CHECK_EVERY == 0
        assert 0 < tripped < self.N_EVENTS

    def test_mixed_mode_agrees_with_pure_modes(self, monkeypatch):
        """Stepping partway then batch-draining must not shift the ordinal."""
        eng = self._engine(monkeypatch)
        for _ in range(WALL_DEADLINE_CHECK_EVERY // 2):
            eng.step()
        with pytest.raises(WallDeadlineExceededError):
            eng.run()
        mixed = eng.events_processed

        ref = self._engine(monkeypatch)
        with pytest.raises(WallDeadlineExceededError):
            ref.run()
        assert mixed == ref.events_processed
