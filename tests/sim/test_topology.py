"""Tests for links, machines and the MinoTauro node factory."""

import pytest

from repro.sim.devices import DeviceKind, GPUDevice, SMPDevice
from repro.sim.perfmodel import FixedCostModel, PerfModel
from repro.sim.topology import HOST_SPACE, Link, Machine, MachineSpec, minotauro_node


class TestLink:
    def test_transfer_time_latency_plus_wire(self):
        link = Link("host", "gpu0", bandwidth=1e9, latency=1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_zero_bytes_costs_latency_only(self):
        link = Link("host", "gpu0", 1e9, 2e-3)
        assert link.transfer_time(0) == pytest.approx(2e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", 1e9).transfer_time(-1)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", 1e9, -1e-3)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a", 1e9)


class TestMachine:
    def test_duplicate_device_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate device names"):
            Machine("m", [SMPDevice("x"), SMPDevice("x")], [])

    def test_needs_a_device(self):
        with pytest.raises(ValueError):
            Machine("m", [], [])

    def test_duplicate_link_rejected(self):
        devs = [SMPDevice("s"), GPUDevice("g")]
        links = [Link(HOST_SPACE, "g", 1e9), Link(HOST_SPACE, "g", 2e9)]
        with pytest.raises(ValueError, match="duplicate link"):
            Machine("m", devs, links)

    def test_device_lookup(self):
        m = Machine("m", [SMPDevice("s0")], [])
        assert m.device("s0").name == "s0"
        with pytest.raises(KeyError):
            m.device("nope")

    def test_devices_of_kind(self):
        m = minotauro_node(3, 2)
        assert len(m.devices_of_kind("smp")) == 3
        assert len(m.devices_of_kind(DeviceKind.CUDA)) == 2

    def test_spaces_host_first(self):
        m = minotauro_node(2, 2)
        assert m.spaces() == ["host", "gpu0", "gpu1"]

    def test_missing_link_raises(self):
        m = Machine("m", [SMPDevice("s0")], [])
        with pytest.raises(KeyError, match="no link"):
            m.link("host", "gpu0")

    def test_register_kernel_for_kind_requires_devices(self):
        m = Machine("m", [SMPDevice("s0")], [])
        with pytest.raises(ValueError, match="no cuda devices"):
            m.register_kernel_for_kind("cuda", "k", FixedCostModel(1.0))

    def test_register_kernel_hits_all_matching_devices(self):
        m = minotauro_node(2, 2, noise_cv=0.0)
        m.register_kernel_for_kind("cuda", "k", FixedCostModel(0.5))
        for d in m.devices_of_kind("cuda"):
            assert d.duration("k", 0, {}) == 0.5
        for d in m.devices_of_kind("smp"):
            assert not d.perf.has_kernel("k")


class TestMinotauroFactory:
    def test_device_counts(self):
        m = minotauro_node(12, 2)
        assert len(m.devices) == 14

    def test_links_exist_between_all_spaces(self):
        m = minotauro_node(1, 2)
        for a in ("gpu0", "gpu1"):
            assert m.has_link(HOST_SPACE, a)
            assert m.has_link(a, HOST_SPACE)
        assert m.has_link("gpu0", "gpu1")
        assert m.has_link("gpu1", "gpu0")

    def test_no_host_to_host_link(self):
        m = minotauro_node(2, 1)
        assert not m.has_link(HOST_SPACE, HOST_SPACE)

    def test_gpu_memory_capacity(self):
        m = minotauro_node(1, 1)
        gpu = m.device("gpu0")
        assert gpu.memory_bytes == 6 * 1024**3

    def test_pcie_rates_applied(self):
        spec = MachineSpec(n_smp=1, n_gpus=1, pcie_bandwidth=2e9, pcie_latency=1e-6)
        m = minotauro_node(spec=spec)
        assert m.transfer_time(HOST_SPACE, "gpu0", 2e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_devices_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(n_smp=0, n_gpus=0)

    def test_gpu_only_machine_allowed(self):
        m = minotauro_node(0, 2)
        assert len(m.devices_of_kind("smp")) == 0
        assert len(m.devices_of_kind("cuda")) == 2

    def test_different_seeds_give_different_noise(self):
        m1 = minotauro_node(1, 0, noise_cv=0.1, seed=1)
        m2 = minotauro_node(1, 0, noise_cv=0.1, seed=2)
        m1.device("smp0").register_kernel("k", FixedCostModel(1.0))
        m2.device("smp0").register_kernel("k", FixedCostModel(1.0))
        s1 = [m1.device("smp0").duration("k", 0, {}) for _ in range(5)]
        s2 = [m2.device("smp0").duration("k", 0, {}) for _ in range(5)]
        assert s1 != s2
