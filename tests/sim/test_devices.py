"""Tests for device models."""

import pytest

from repro.sim.devices import Device, DeviceKind, DeviceStats, GPUDevice, SMPDevice
from repro.sim.perfmodel import FixedCostModel, PerfModel


class TestDeviceKind:
    def test_parse_strings(self):
        assert DeviceKind.parse("smp") is DeviceKind.SMP
        assert DeviceKind.parse("cuda") is DeviceKind.CUDA
        assert DeviceKind.parse("CUDA") is DeviceKind.CUDA
        assert DeviceKind.parse("spe") is DeviceKind.SPE

    def test_parse_passthrough(self):
        assert DeviceKind.parse(DeviceKind.SMP) is DeviceKind.SMP

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            DeviceKind.parse("fpga")


class TestSMPDevice:
    def test_defaults(self):
        d = SMPDevice("smp0")
        assert d.kind is DeviceKind.SMP
        assert d.memory_space == "host"
        assert d.can_run_kind("smp")
        assert not d.can_run_kind("cuda")

    def test_duration_uses_perfmodel(self):
        d = SMPDevice("smp0", PerfModel({"k": FixedCostModel(0.25)}))
        assert d.duration("k", 0, {}) == 0.25

    def test_register_kernel(self):
        d = SMPDevice("smp0")
        d.register_kernel("k", FixedCostModel(1.0))
        assert d.duration("k", 0, {}) == 1.0


class TestGPUDevice:
    def test_private_memory_space_defaults_to_name(self):
        d = GPUDevice("gpu3")
        assert d.memory_space == "gpu3"
        assert d.kind is DeviceKind.CUDA

    def test_memory_bytes_default_6gb(self):
        assert GPUDevice("gpu0").memory_bytes == 6 * 1024**3

    def test_invalid_memory_rejected(self):
        with pytest.raises(ValueError):
            GPUDevice("gpu0", memory_bytes=0)

    def test_invalid_dma_channels_rejected(self):
        with pytest.raises(ValueError):
            GPUDevice("gpu0", dma_channels=0)

    def test_explicit_space(self):
        d = GPUDevice("gpu0", memory_space="devmem")
        assert d.memory_space == "devmem"


class TestDeviceStats:
    def test_utilisation(self):
        s = DeviceStats("gpu0", tasks_run=10, busy_time=3.0, idle_time=1.0)
        assert s.utilisation == pytest.approx(0.75)

    def test_utilisation_zero_when_no_time(self):
        s = DeviceStats("gpu0", 0, 0.0, 0.0)
        assert s.utilisation == 0.0


class TestDeviceBase:
    def test_unknown_kernel_raises(self):
        d = Device("x", DeviceKind.SMP, "host")
        with pytest.raises(KeyError):
            d.duration("missing", 0, {})

    def test_repr_mentions_name_and_space(self):
        d = SMPDevice("smp1")
        assert "smp1" in repr(d)
        assert "host" in repr(d)
