"""Tests for multi-hop routing and cluster machines."""

import pytest

from repro.sim.topology import (
    HOST_SPACE,
    Link,
    Machine,
    cluster_machine,
    minotauro_node,
)
from repro.sim.devices import SMPDevice, GPUDevice
from repro.sim.perfmodel import PerfModel


class TestRouting:
    def test_direct_link_is_single_hop(self):
        m = minotauro_node(1, 2, noise_cv=0.0)
        path = m.route(HOST_SPACE, "gpu0")
        assert len(path) == 1
        assert (path[0].src, path[0].dst) == (HOST_SPACE, "gpu0")

    def test_route_self_rejected(self):
        m = minotauro_node(1, 1, noise_cv=0.0)
        with pytest.raises(ValueError):
            m.route(HOST_SPACE, HOST_SPACE)

    def test_unreachable_raises(self):
        m = Machine("m", [SMPDevice("s0"), GPUDevice("g0")], [])
        with pytest.raises(KeyError, match="no route"):
            m.route(HOST_SPACE, "g0")

    def test_cluster_cross_node_gpu_routes_via_hosts(self):
        m = cluster_machine(2, 1, 1, noise_cv=0.0)
        path = m.route("gpu0", "node1.gpu0")
        hops = [(l.src, l.dst) for l in path]
        assert hops == [("gpu0", "host"), ("host", "node1"), ("node1", "node1.gpu0")]

    def test_route_cached_and_consistent(self):
        m = cluster_machine(2, 1, 1, noise_cv=0.0)
        assert m.route("gpu0", "node1.gpu0") is m.route("gpu0", "node1.gpu0")

    def test_path_transfer_time_sums_hops(self):
        m = cluster_machine(2, 1, 1, noise_cv=0.0)
        direct = m.path_transfer_time(HOST_SPACE, "gpu0", 10**9)
        staged = m.path_transfer_time("gpu0", "node1.gpu0", 10**9)
        assert staged > 2 * direct  # PCIe + network + PCIe


class TestClusterMachine:
    def test_device_counts_and_spaces(self):
        m = cluster_machine(3, 4, 2, noise_cv=0.0)
        assert len(m.devices_of_kind("smp")) == 12
        assert len(m.devices_of_kind("cuda")) == 6
        spaces = m.spaces()
        assert spaces[0] == "host"
        assert "node1" in spaces and "node2" in spaces
        assert "node1.gpu0" in spaces

    def test_node0_matches_minotauro_naming(self):
        m = cluster_machine(1, 2, 2, noise_cv=0.0)
        assert {d.memory_space for d in m.devices_of_kind("cuda")} == {"gpu0", "gpu1"}

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ValueError):
            cluster_machine(0)

    def test_network_rates_applied(self):
        m = cluster_machine(2, 1, 0, network_bandwidth=1e9, network_latency=1e-3,
                            noise_cv=0.0)
        assert m.transfer_time("host", "node1", 1e9) == pytest.approx(1.001)


class TestClusterExecution:
    def test_matmul_scales_across_nodes(self):
        from repro.apps.matmul import MatmulApp

        def run(nodes):
            m = cluster_machine(nodes, 2, 2, noise_cv=0.0, seed=1)
            app = MatmulApp(n_tiles=6, variant="hyb")
            return app.run(m, "versioning")

        one = run(1)
        two = run(2)
        assert two.gflops > one.gflops  # more GPUs help despite the network
        assert two.run.tasks_completed == one.run.tasks_completed == 216

    def test_cross_node_traffic_accounted(self):
        from repro.apps.matmul import MatmulApp

        m = cluster_machine(2, 2, 2, noise_cv=0.0, seed=1)
        app = MatmulApp(n_tiles=4, variant="hyb")
        res = app.run(m, "versioning")
        # remote-node hops exist in the trace
        hops = {r.worker for r in res.run.trace.by_category("transfer")}
        assert any("node1" in h for h in hops)

    def test_coherence_invariants_on_cluster(self):
        from repro.apps.cholesky import CholeskyApp
        from repro.runtime.runtime import OmpSsRuntime

        m = cluster_machine(2, 2, 1, noise_cv=0.0, seed=2)
        app = CholeskyApp(n_blocks=4, variant="hyb")
        app.register_cost_models(m)
        rt = OmpSsRuntime(m, "versioning")
        with rt:
            app.master(rt)
        res = rt.result()
        rt.directory.check_invariants()
        rt.graph.verify_schedule(res.finish_order)
        res.trace.check_no_overlap()
