"""Tests for execution traces."""

import pytest

from repro.sim.trace import Trace, TraceRecord


def make_trace():
    tr = Trace()
    tr.add(0.0, 1.0, "w0", "task", "a")
    tr.add(1.0, 2.0, "w0", "task", "b")
    tr.add(0.5, 1.5, "w1", "task", "c")
    tr.add(0.0, 0.4, "link", "transfer", "x")
    return tr


class TestTraceRecord:
    def test_duration(self):
        assert TraceRecord(1.0, 3.5, "w", "task", "l").duration == 2.5

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(2.0, 1.0, "w", "task", "l")

    def test_zero_length_allowed(self):
        assert TraceRecord(1.0, 1.0, "w", "task", "l").duration == 0.0


class TestTrace:
    def test_len_and_iter(self):
        tr = make_trace()
        assert len(tr) == 4
        assert len(list(tr)) == 4

    def test_workers_sorted(self):
        assert make_trace().workers() == ["link", "w0", "w1"]

    def test_makespan(self):
        assert make_trace().makespan() == 2.0

    def test_makespan_empty(self):
        assert Trace().makespan() == 0.0

    def test_for_worker(self):
        assert len(make_trace().for_worker("w0")) == 2

    def test_by_category(self):
        assert len(make_trace().by_category("transfer")) == 1

    def test_busy_time(self):
        tr = make_trace()
        assert tr.busy_time("w0") == pytest.approx(2.0)
        assert tr.busy_time("link", category="transfer") == pytest.approx(0.4)
        assert tr.busy_time("link", category=None) == pytest.approx(0.4)

    def test_sorted_by_start(self):
        starts = [r.start for r in make_trace().sorted()]
        assert starts == sorted(starts)

    def test_equality(self):
        assert make_trace() == make_trace()
        other = make_trace()
        other.add(9.0, 10.0, "w0", "task", "z")
        assert make_trace() != other

    def test_equality_with_non_trace(self):
        assert make_trace() != "trace"


class TestOverlapCheck:
    def test_no_overlap_passes(self):
        make_trace().check_no_overlap()

    def test_overlap_detected(self):
        tr = Trace()
        tr.add(0.0, 2.0, "w0", "task", "a")
        tr.add(1.0, 3.0, "w0", "task", "b")
        with pytest.raises(AssertionError, match="overlapping"):
            tr.check_no_overlap()

    def test_overlap_on_other_worker_ok(self):
        tr = Trace()
        tr.add(0.0, 2.0, "w0", "task", "a")
        tr.add(1.0, 3.0, "w1", "task", "b")
        tr.check_no_overlap()

    def test_touching_intervals_ok(self):
        tr = Trace()
        tr.add(0.0, 1.0, "w0", "task", "a")
        tr.add(1.0, 2.0, "w0", "task", "b")
        tr.check_no_overlap()

    def test_overlap_across_categories_ignored(self):
        tr = Trace()
        tr.add(0.0, 2.0, "w0", "task", "a")
        tr.add(1.0, 3.0, "w0", "transfer", "x")
        tr.check_no_overlap("task")


class TestGantt:
    def test_empty(self):
        assert Trace().gantt() == "(empty trace)"

    def test_rows_per_worker(self):
        out = make_trace().gantt(width=40)
        assert "w0" in out and "w1" in out

    def test_labels_used_as_fill(self):
        tr = Trace()
        tr.add(0.0, 1.0, "w0", "task", "gemm")
        assert "g" in tr.gantt(width=10)
