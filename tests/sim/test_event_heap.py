"""Property tests for the array-backed event heap (both backends).

Three contracts, each checked against simple reference models:

* pop order equals a ``heapq`` reference over ``(time, seq)`` keys;
* FIFO stability: among equal timestamps, insertion order wins;
* free-list reuse can never resurrect (or re-cancel) a later slot
  occupant — stale handles are dead after the generation bump.

The same properties run against the pure-Python ``EventHeap`` and, when
a C toolchain is available, the compiled ``_evcore`` heap with both
event classes.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Event as PureEvent
from repro.sim.engine import EventHeap as PureHeap
from repro.sim.engine import EventKind

from .conftest import compiled_heap_classes


backends = pytest.mark.parametrize("backend", ["pure", "compiled"])


def _classes(backend: str):
    """(heap_cls, event_cls) for a backend name; skips when unbuildable.

    A plain helper rather than a fixture: hypothesis forbids
    function-scoped fixtures under ``@given``, and the classes carry no
    per-test state anyway.
    """
    if backend == "pure":
        return PureHeap, PureEvent
    return compiled_heap_classes()


#: small float times with deliberate duplicates so ties are common
times = st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=16)


@backends
@given(st.lists(times, max_size=80))
@settings(max_examples=120, deadline=None)
def test_pop_order_equals_heapq_model(backend, ts):
    heap_cls, event_cls = _classes(backend)
    h = heap_cls()
    model: list[tuple[float, int]] = []
    for seq, t in enumerate(ts):
        h.push(event_cls(t, seq, EventKind.GENERIC, None))
        heapq.heappush(model, (t, seq))
    out = []
    while True:
        ev = h.pop()
        if ev is None:
            break
        out.append((ev.time, ev.seq))
    assert out == [heapq.heappop(model) for _ in range(len(model))]
    assert len(h) == 0 and h.live == 0


@backends
@given(st.integers(min_value=2, max_value=40))
@settings(max_examples=60, deadline=None)
def test_fifo_stability_among_equal_timestamps(backend, n):
    heap_cls, event_cls = _classes(backend)
    h = heap_cls()
    for seq in range(n):
        h.push(event_cls(1.0, seq, EventKind.GENERIC, None))
    popped = [h.pop().seq for _ in range(n)]
    assert popped == list(range(n))


#: op stream: (kind, payload) where kind 0=push(time), 1=cancel(index),
#: 2=pop — indexes are taken modulo the pushed-event count
ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), times,
              st.integers(min_value=0, max_value=10**6)),
    max_size=120,
)


@backends
@given(ops)
@settings(max_examples=120, deadline=None)
def test_interleaved_ops_match_reference_model(backend, stream):
    """Pushes, lazy cancels and pops against a filtered-heapq model."""
    heap_cls, event_cls = _classes(backend)
    h = heap_cls()
    events = []
    cancelled: set[int] = set()
    model: list[tuple[float, int]] = []
    seq = 0
    for kind, t, idx in stream:
        if kind == 0 or not events:
            ev = event_cls(t, seq, EventKind.GENERIC, None)
            h.push(ev)
            events.append(ev)
            heapq.heappush(model, (t, seq))
            seq += 1
        elif kind == 1:
            ev = events[idx % len(events)]
            ev.cancel()
            cancelled.add(ev.seq)
        else:
            while model and model[0][1] in cancelled:
                heapq.heappop(model)
            want = heapq.heappop(model) if model else None
            got = h.pop()
            got_key = None if got is None else (got.time, got.seq)
            assert got_key == want
        live_model = sum(1 for _, s in model if s not in cancelled)
        assert h.live == live_model
    # drain: the tails must agree too
    while True:
        while model and model[0][1] in cancelled:
            heapq.heappop(model)
        want = heapq.heappop(model) if model else None
        got = h.pop()
        got_key = None if got is None else (got.time, got.seq)
        assert got_key == want
        if got is None:
            break
    assert h.live == 0


@backends
def test_free_list_reuse_never_resurrects_cancelled_events(backend):
    heap_cls, event_cls = _classes(backend)
    h = heap_cls()
    doomed = [event_cls(float(i), i, EventKind.GENERIC, None) for i in range(8)]
    for ev in doomed:
        h.push(ev)
    for ev in doomed:
        ev.cancel()
    assert h.live == 0
    # popping prunes the cancelled payloads and recycles every slot
    assert h.pop() is None
    # the recycled slots must serve fresh events exactly once
    fresh = [event_cls(float(i), 100 + i, EventKind.GENERIC, None)
             for i in range(8)]
    for ev in fresh:
        h.push(ev)
    assert h.slots <= 8  # slots were reused, not regrown
    out = [h.pop().seq for _ in range(8)]
    assert out == [100 + i for i in range(8)]
    assert h.pop() is None


@backends
def test_stale_handle_cannot_touch_reused_slot(backend):
    """A double-cancel on a dead event must not affect the slot's new
    occupant (the per-slot generation counter makes the handle stale)."""
    heap_cls, event_cls = _classes(backend)
    h = heap_cls()
    old = event_cls(1.0, 0, EventKind.GENERIC, None)
    h.push(old)
    old.cancel()
    assert h.live == 0
    assert h.pop() is None  # recycles old's slot
    new = event_cls(2.0, 1, EventKind.GENERIC, None)
    h.push(new)
    assert h.live == 1
    # stale: old's slot was recycled into `new`
    old.cancel()
    old.cancel()
    assert h.live == 1
    got = h.pop()
    assert got is not None and got.seq == 1 and not got.cancelled


@backends
def test_double_cancel_counts_once(backend):
    heap_cls, event_cls = _classes(backend)
    h = heap_cls()
    a = event_cls(1.0, 0, EventKind.GENERIC, None)
    h.push(a)
    h.push(event_cls(2.0, 1, EventKind.GENERIC, None))
    a.cancel()
    a.cancel()
    a.cancel()
    assert h.live == 1
    assert h.pop().seq == 1
    assert h.pop() is None
    assert h.live == 0


def test_cross_backend_event_interchange():
    """Each heap accepts the other backend's event objects (the generic
    attribute protocol), so mixed-object tests and tooling keep working."""
    c_heap_cls, c_event_cls = compiled_heap_classes()
    ph, ch = PureHeap(), c_heap_cls()
    ph.push(c_event_cls(1.0, 0, EventKind.GENERIC, None))
    ch.push(PureEvent(1.0, 0, EventKind.GENERIC, None))
    assert ph.pop().seq == 0 and ch.pop().seq == 0
    # ordering comparison crosses types too (pure Event.__lt__ mirror)
    assert c_event_cls(0.5, 2, EventKind.GENERIC, None) < PureEvent(
        1.0, 0, EventKind.GENERIC, None
    )
