"""Tests for perturbed cost models and scheduler adaptation to them."""

import pytest

from repro.sim.perfmodel import FixedCostModel
from repro.sim.perturb import DriftCostModel, PhaseShiftCostModel, SpikeCostModel


class TestPhaseShift:
    def test_switches_after_budget(self):
        m = PhaseShiftCostModel([(FixedCostModel(1.0), 3), (FixedCostModel(9.0), 0)])
        assert [m(0, {}) for _ in range(5)] == [1.0, 1.0, 1.0, 9.0, 9.0]

    def test_three_phases(self):
        m = PhaseShiftCostModel(
            [(FixedCostModel(1.0), 2), (FixedCostModel(2.0), 2), (FixedCostModel(3.0), 0)]
        )
        assert [m(0, {}) for _ in range(6)] == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhaseShiftCostModel([])

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            PhaseShiftCostModel([(FixedCostModel(1.0), 0), (FixedCostModel(2.0), 0)])


class TestSpike:
    def test_every_nth_spikes(self):
        m = SpikeCostModel(FixedCostModel(1.0), every_n=3, factor=10.0)
        assert [m(0, {}) for _ in range(6)] == [1.0, 1.0, 10.0, 1.0, 1.0, 10.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeCostModel(FixedCostModel(1.0), every_n=0, factor=2.0)
        with pytest.raises(ValueError):
            SpikeCostModel(FixedCostModel(1.0), every_n=2, factor=0.0)


class TestDrift:
    def test_geometric_growth(self):
        m = DriftCostModel(FixedCostModel(1.0), rate_per_call=0.5)
        assert m(0, {}) == pytest.approx(1.0)
        assert m(0, {}) == pytest.approx(1.5)
        assert m(0, {}) == pytest.approx(2.25)

    def test_negative_rate_warmup(self):
        m = DriftCostModel(FixedCostModel(1.0), rate_per_call=-0.5)
        first = m(0, {})
        second = m(0, {})
        assert second < first

    def test_clamped_at_max_factor(self):
        m = DriftCostModel(FixedCostModel(1.0), rate_per_call=1.0, max_factor=4.0)
        vals = [m(0, {}) for _ in range(10)]
        assert max(vals) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftCostModel(FixedCostModel(1.0), 0.1, max_factor=0.0)


class TestSchedulerAdaptation:
    def test_versioning_adapts_to_phase_shift(self):
        """After the GPU version degrades 20x, the EWMA-estimating
        scheduler routes (chained) work back to the SMP version."""
        from repro.core.versioning import VersioningScheduler
        from repro.runtime.dataregion import DataRegion
        from repro.runtime.directives import task
        from repro.runtime.runtime import OmpSsRuntime
        from repro.sim.topology import minotauro_node

        registry = {}

        @task(inputs=["x"], inouts=["acc"], device="smp", name="w_smp",
              registry=registry)
        def w(x, acc):
            pass

        @task(inputs=["x"], inouts=["acc"], device="cuda", implements="w_smp",
              name="w_gpu", registry=registry)
        def w_gpu(x, acc):
            pass

        m = minotauro_node(2, 1, noise_cv=0.0)
        m.register_kernel_for_kind("smp", "w_smp", FixedCostModel(0.004))
        m.register_kernel_for_kind(
            "cuda", "w_gpu",
            PhaseShiftCostModel([(FixedCostModel(0.001), 60),
                                 (FixedCostModel(0.020), 0)]),
        )
        sched = VersioningScheduler(estimator="ewma", estimator_options={"alpha": 0.4})
        rt = OmpSsRuntime(m, sched)
        accs = [DataRegion(("acc", c), 1024) for c in range(4)]
        with rt:
            for i in range(240):
                w(DataRegion(("x", i), 1024), accs[i % 4])
        res = rt.result()
        counts = res.version_counts["w_smp"]
        # late tasks go SMP: more SMP than GPU runs overall despite the
        # GPU winning the whole first phase
        assert counts.get("w_smp", 0) > counts.get("w_gpu", 0)
