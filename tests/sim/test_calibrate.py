"""Tests for cost-model calibration."""

import numpy as np
import pytest

from repro.core.profile import TaskVersionSet
from repro.sim.calibrate import (
    fit_affine_bytes,
    fit_fixed,
    fit_gemm,
    table_model_from_profile,
)
from repro.sim.perfmodel import AffineBytesCostModel, GemmCostModel

MB = 1024**2


class TestFitFixed:
    def test_mean(self):
        m = fit_fixed([1.0, 2.0, 3.0])
        assert m.seconds == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_fixed([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fit_fixed([1.0, -0.1])


class TestFitAffine:
    def test_recovers_known_model(self):
        truth = AffineBytesCostModel(base=1e-3, bandwidth=5e9)
        sizes = [MB, 4 * MB, 16 * MB, 64 * MB]
        samples = [(s, truth(s, {})) for s in sizes]
        fitted = fit_affine_bytes(samples)
        assert fitted.base == pytest.approx(1e-3, rel=1e-6)
        assert fitted.bandwidth == pytest.approx(5e9, rel=1e-6)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        truth = AffineBytesCostModel(base=2e-3, bandwidth=2e9)
        samples = [
            (s, truth(s, {}) * (1 + 0.02 * rng.standard_normal()))
            for s in np.linspace(MB, 128 * MB, 40).astype(int)
        ]
        fitted = fit_affine_bytes(samples)
        assert fitted.bandwidth == pytest.approx(2e9, rel=0.05)

    def test_single_size_rejected(self):
        with pytest.raises(ValueError, match="span"):
            fit_affine_bytes([(MB, 1.0), (MB, 1.1)])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_affine_bytes([(MB, 1.0)])

    def test_base_clamped_nonnegative(self):
        # samples implying a negative intercept still yield a valid model
        samples = [(MB, 0.0001), (2 * MB, 0.0004), (3 * MB, 0.0007)]
        fitted = fit_affine_bytes(samples)
        assert fitted.base >= 0.0


class TestFitGemm:
    def test_recovers_known_model(self):
        truth = GemmCostModel(gflops=300.0, launch_overhead=20e-6)
        ns = [256, 512, 1024, 2048]
        samples = [(n, truth(0, {"n": n})) for n in ns]
        fitted = fit_gemm(samples)
        assert fitted.gflops == pytest.approx(300.0, rel=1e-6)
        assert fitted.launch_overhead == pytest.approx(20e-6, rel=1e-3)

    def test_predictions_match(self):
        truth = GemmCostModel(gflops=150.0, launch_overhead=0.0)
        samples = [(n, truth(0, {"n": n})) for n in (128, 512, 1024)]
        fitted = fit_gemm(samples)
        assert fitted(0, {"n": 768}) == pytest.approx(truth(0, {"n": 768}), rel=1e-6)


class TestProfileReplay:
    def test_table_from_profile(self):
        vset = TaskVersionSet("t")
        vset.group_for(2 * MB).profile("v").estimator.preload(0.018, 10)
        vset.group_for(3 * MB).profile("v").estimator.preload(0.025, 10)
        model = table_model_from_profile(vset, "v")
        assert model(2 * MB, {}) == pytest.approx(0.018)
        assert model(3 * MB, {}) == pytest.approx(0.025)
        # interpolation between observed sizes
        assert 0.018 < model(int(2.5 * MB), {}) < 0.025

    def test_empty_profile_rejected(self):
        vset = TaskVersionSet("t")
        vset.group_for(MB)  # group exists, no executions
        with pytest.raises(ValueError, match="no executions"):
            table_model_from_profile(vset, "v")

    def test_roundtrip_through_hints(self, tmp_path):
        """Profile -> XML hints -> profile -> machine model: the full
        'written by the runtime from a previous execution' loop."""
        from repro.core.hints import load_hints, save_hints
        from repro.core.profile import VersionProfileTable

        t = VersionProfileTable()
        t.group("k", 4 * MB).profile("k_gpu").estimator.preload(0.007, 5)
        path = tmp_path / "h.xml"
        save_hints(t, path)
        t2 = VersionProfileTable()
        t2.preload(load_hints(path))
        model = table_model_from_profile(t2.version_set("k"), "k_gpu")
        assert model(4 * MB, {}) == pytest.approx(0.007)
