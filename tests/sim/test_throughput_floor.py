"""Tier-2 perf-regression harness for the simulator hot path.

Two layers:

* always-on unit tests for the bench harness itself (the calibrated
  regression arithmetic in ``benchmarks/bench_sim_throughput.py`` must
  gate correctly on synthetic numbers — a perf gate with a broken
  comparator silently stops gating);
* a tier-2 throughput floor (``REPRO_PERF_TESTS=1``) that runs a small
  fixed workload and asserts events/sec stays above a conservative,
  machine-calibrated floor.  It is opt-in because wall-clock assertions
  on shared/loaded CI boxes flake; the CI workflow runs it in the
  dedicated perf-smoke step alongside ``bench_sim_throughput --check``.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _bench_module():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_sim_throughput
    finally:
        sys.path.remove(str(BENCH_DIR))
    return bench_sim_throughput


# ----------------------------------------------------------------------
# Harness unit tests (always on)
# ----------------------------------------------------------------------
def _payload(calib, rates):
    return {
        "backend": "pure",
        "calibration_score": calib,
        "workloads": {
            name: {"events_per_sec": r} for name, r in rates.items()
        },
    }


def test_check_passes_within_tolerance(capsys):
    bench = _bench_module()
    base = _payload(1000.0, {"w": 100.0})
    cur = _payload(1000.0, {"w": 80.0})  # -20% on an identical machine
    assert bench.check(cur, base, tolerance=0.30) == []


def test_check_fails_beyond_tolerance(capsys):
    bench = _bench_module()
    base = _payload(1000.0, {"w": 100.0})
    cur = _payload(1000.0, {"w": 60.0})  # -40%
    failures = bench.check(cur, base, tolerance=0.30)
    assert len(failures) == 1 and "w" in failures[0]


def test_check_calibrates_across_machine_speeds(capsys):
    """A uniformly 2x-slower machine must not trip the gate."""
    bench = _bench_module()
    base = _payload(1000.0, {"w": 100.0})
    cur = _payload(500.0, {"w": 50.0})
    assert bench.check(cur, base, tolerance=0.30) == []


def test_check_flags_missing_workload_and_backend_mismatch(capsys):
    bench = _bench_module()
    base = _payload(1000.0, {"w": 100.0})
    cur = _payload(1000.0, {})
    assert any("missing" in f for f in bench.check(cur, base, 0.30))
    cur = _payload(1000.0, {"w": 100.0})
    cur["backend"] = "compiled"
    assert any("backend" in f for f in bench.check(cur, base, 0.30))


def test_committed_baseline_is_wellformed():
    import json

    baseline = json.loads((BENCH_DIR / "sim_throughput_baseline.json").read_text())
    assert baseline["calibration_score"] > 0
    assert "matmul16-sharded" in baseline["workloads"]
    for row in baseline["workloads"].values():
        assert row["events_per_sec"] > 0


# ----------------------------------------------------------------------
# Tier-2 throughput floor (opt-in)
# ----------------------------------------------------------------------
tier2 = pytest.mark.skipif(
    os.environ.get("REPRO_PERF_TESTS") != "1",
    reason="tier-2 perf floor; set REPRO_PERF_TESTS=1 (CI perf-smoke runs it)",
)


@tier2
def test_events_per_sec_stays_above_calibrated_floor():
    """The pure backend must sustain a conservative events/sec floor.

    The floor is expressed relative to the machine's calibration score,
    so a slow runner scales the bar down instead of flaking.  The
    constant is ~4x below the rate measured at commit time — it catches
    an accidental return to per-event Python frames or tuple-boxed
    heaps, not scheduling noise.
    """
    bench = _bench_module()
    from repro.apps.matmul import MatmulApp
    from repro.runtime.runtime import OmpSsRuntime
    from repro.sim.topology import minotauro_node

    calib = bench.calibration_score()

    def run():
        app = MatmulApp(n_tiles=5, tile_size=64, variant="hyb")
        machine = minotauro_node(4, 2, noise_cv=0.02, seed=3)
        app.register_cost_models(machine)
        rt = OmpSsRuntime(machine, "versioning")
        with rt:
            app.master(rt)
        return rt.engine.events_processed

    best = float("inf")
    events = 0
    for _ in range(3):
        t0 = time.process_time()
        events = run()
        best = min(best, time.process_time() - t0)
    rate = events / best
    # commit-time measurement: rate/calib ~= 2.3e-3 on the dev box;
    # floor set ~4x lower
    floor = 5.5e-4 * calib
    assert rate > floor, (
        f"events/sec collapsed: {rate:,.0f} < floor {floor:,.0f} "
        f"(calibration {calib:,.0f})"
    )
