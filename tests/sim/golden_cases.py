"""Case matrix + digest helpers for the golden-trace equivalence suite.

The golden suite pins the *observable outcome* of a fixed matrix of
simulated runs — app × scheduler × machine × seed, with and without
fault plans — as SHA-256 digests of the serialized :class:`RunResult`
and :class:`Trace`.  The committed fixture file was generated from the
pre-optimization tree, so the suite simultaneously proves

* the flattened hot path (batched event core, interned regions) did not
  change a single trace byte versus the seed behavior, and
* the pure and compiled event-core backends are byte-equivalent.

Regenerate fixtures (only after an *intentional* semantic change) with::

    PYTHONPATH=src python -m pytest tests/sim/test_trace_golden.py --update-golden
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_traces.json"


@dataclass(frozen=True)
class GoldenCase:
    """One pinned run of the matrix."""

    id: str
    app: str                      # "matmul" | "cholesky" | "pbpi"
    app_args: Mapping[str, Any] = field(default_factory=dict)
    scheduler: str = "versioning"
    scheduler_options: Optional[Mapping[str, Any]] = None
    machine: str = "node"         # key into _machine()
    config: Optional[Mapping[str, Any]] = None
    faults: Optional[str] = None  # key into _fault_plan()
    speculate: bool = False


def _machine(name: str):
    from repro.sim.topology import cluster_machine, minotauro_node

    if name == "node":
        return minotauro_node(4, 2, noise_cv=0.02, seed=3)
    if name == "node-quiet":
        return minotauro_node(2, 1, noise_cv=0.0, seed=0)
    if name == "cluster4":
        return cluster_machine(
            4, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=7
        )
    raise ValueError(f"unknown golden machine {name!r}")


def _fault_plan(name: Optional[str]):
    if name is None:
        return None
    from repro.resilience.faults import (
        FaultPlan,
        HangRule,
        MessageFaultRule,
        NodeCrashRule,
        TaskFaultRule,
        WorkerFailure,
        WorkerSlowdown,
    )

    if name == "chaos":
        # transient faults + a permanent worker death + a straggler pair
        # (hang + slowdown) — exercises retry, quarantine bookkeeping and
        # speculative re-execution
        return FaultPlan(
            seed=7,
            task_faults=(TaskFaultRule(at_starts=(3, 9), probability=0.02),),
            worker_failures=(WorkerFailure("smp1", 0.02),),
            hangs=(HangRule(at_starts=(5,)),),
            slowdowns=(WorkerSlowdown("gpu1", 0.0005, 20.0),),
        )
    if name == "netloss":
        # lossy interconnect + a mid-run node crash: retransmission,
        # epoch fencing, evacuation and lineage recompute all fire
        return FaultPlan(
            seed=11,
            message_faults=(MessageFaultRule(drop=0.15, delay=0.05, delay_time=0.001),),
            node_crashes=(NodeCrashRule(node=2, at_time=0.05),),
        )
    raise ValueError(f"unknown golden fault plan {name!r}")


def _app(case: GoldenCase):
    from repro.apps.cholesky import CholeskyApp
    from repro.apps.matmul import MatmulApp
    from repro.apps.pbpi import PBPIApp

    cls = {"matmul": MatmulApp, "cholesky": CholeskyApp, "pbpi": PBPIApp}[case.app]
    return cls(**dict(case.app_args))


#: The pinned matrix.  Every case must complete in well under a second;
#: together they cover all canonical schedulers, single-node and sharded
#: cluster machines, throttled/no-overlap configs, fault plans and
#: speculative re-execution.
CASES: tuple[GoldenCase, ...] = (
    GoldenCase(
        id="matmul3-hyb-versioning-node",
        app="matmul",
        app_args={"n_tiles": 3, "tile_size": 64, "variant": "hyb"},
    ),
    GoldenCase(
        id="matmul3-hyb-versioning-node-chaos",
        app="matmul",
        app_args={"n_tiles": 3, "tile_size": 64, "variant": "hyb"},
        faults="chaos",
        speculate=True,
    ),
    GoldenCase(
        id="matmul3-hyb-versioning-noprefetch",
        app="matmul",
        app_args={"n_tiles": 3, "tile_size": 64, "variant": "hyb"},
        config={"overlap_transfers": False, "prefetch": False},
    ),
    GoldenCase(
        id="matmul3-hyb-versioning-throttled",
        app="matmul",
        app_args={"n_tiles": 3, "tile_size": 64, "variant": "hyb"},
        config={"max_in_flight_tasks": 6},
    ),
    GoldenCase(
        id="matmul4-hyb-cluster-affinity",
        app="matmul",
        app_args={"n_tiles": 4, "tile_size": 64, "variant": "hyb"},
        scheduler="cluster",
        scheduler_options={"partition": "affinity", "steal": True},
        machine="cluster4",
    ),
    GoldenCase(
        id="matmul4-hyb-cluster-block-netloss",
        app="matmul",
        app_args={"n_tiles": 4, "tile_size": 64, "variant": "hyb"},
        scheduler="cluster",
        scheduler_options={
            "partition": "block",
            "steal": True,
            "protocol": {"ack_timeout": 0.0005},
        },
        machine="cluster4",
        faults="netloss",
    ),
    GoldenCase(
        id="cholesky4-hyb-versioning-node",
        app="cholesky",
        app_args={"n_blocks": 4, "block_size": 64, "variant": "hyb"},
    ),
    GoldenCase(
        id="cholesky4-gpu-affinity-node",
        app="cholesky",
        app_args={"n_blocks": 4, "block_size": 64, "variant": "gpu"},
        scheduler="affinity",
    ),
    GoldenCase(
        id="pbpi-dep-node",
        app="pbpi",
        app_args={"generations": 3, "n_blocks": 4, "variant": "hyb"},
        scheduler="dep",
    ),
    GoldenCase(
        id="pbpi-bf-quiet",
        app="pbpi",
        app_args={"generations": 2, "n_blocks": 3, "variant": "smp"},
        scheduler="bf",
        machine="node-quiet",
    ),
    GoldenCase(
        id="matmul3-hyb-versioning-locality",
        app="matmul",
        app_args={"n_tiles": 3, "tile_size": 64, "variant": "hyb"},
        scheduler="versioning-locality",
    ),
)

CASES_BY_ID = {c.id: c for c in CASES}


def run_case(case: GoldenCase, *, wall_deadline: Optional[float] = None):
    """Execute one case; returns ``(RunResult, events_processed)``."""
    from repro.resilience.recovery import RecoveryPolicy
    from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig

    app = _app(case)
    machine = _machine(case.machine)
    app.register_cost_models(machine)
    config = RuntimeConfig(**dict(case.config)) if case.config else None
    recovery = RecoveryPolicy(speculate=True) if case.speculate else None
    rt = OmpSsRuntime(
        machine,
        case.scheduler,
        config=config,
        scheduler_options=case.scheduler_options,
        fault_plan=_fault_plan(case.faults),
        recovery=recovery,
    )
    if wall_deadline is not None:
        import time as _time

        rt.engine.wall_deadline = _time.perf_counter() + wall_deadline
    with rt:
        app.master(rt)
    return rt.result(), rt.engine.events_processed


def digest_result(result, events: int) -> dict:
    """The pinned observable outcome of one run."""
    result_payload = result.to_json().encode()
    trace_payload = result.trace.to_json().encode()
    return {
        "result_sha256": hashlib.sha256(result_payload).hexdigest(),
        "trace_sha256": hashlib.sha256(trace_payload).hexdigest(),
        "tasks_completed": result.tasks_completed,
        "trace_records": len(result.trace),
        "events_processed": events,
        "makespan_repr": repr(result.makespan),
    }


def compute_all(cases=CASES) -> dict:
    return {c.id: digest_result(*run_case(c)) for c in cases}


def load_fixture() -> dict:
    with open(FIXTURE_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def write_fixture(payload: dict) -> None:
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


if __name__ == "__main__":  # pragma: no cover - fixture generation
    write_fixture(compute_all())
    print(f"wrote {len(CASES)} golden digests to {FIXTURE_PATH}")
