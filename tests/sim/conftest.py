"""Fixtures for the simulator test suite: backend switching + goldens."""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/sim/fixtures/golden_traces.json from the "
        "pure backend instead of asserting against it (use only after "
        "an intentional semantic change)",
    )


@contextmanager
def use_backend(name: str):
    """Run with ``REPRO_SIM_BACKEND=name`` for engines built inside.

    The backend is resolved per-process and cached; this resets the
    cache on entry and exit so engines constructed outside the block
    keep following the environment default.
    """
    from repro.sim import backend

    prev = os.environ.get("REPRO_SIM_BACKEND")
    os.environ["REPRO_SIM_BACKEND"] = name
    backend._reset_for_tests()
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_SIM_BACKEND", None)
        else:
            os.environ["REPRO_SIM_BACKEND"] = prev
        backend._reset_for_tests()


def compiled_heap_classes():
    """(EventHeap, Event) from the compiled backend, or skip.

    Skips rather than fails when no C toolchain/headers exist so the
    tier-1 suite stays green on minimal machines; the dedicated CI job
    (compiled-backend) runs where a compiler is guaranteed.
    """
    from repro.sim.evcore_build import EvcoreBuildError, load_evcore

    try:
        mod = load_evcore()
    except EvcoreBuildError as exc:
        pytest.skip(f"compiled event core unavailable: {exc}")
    return mod.EventHeap, mod.Event
