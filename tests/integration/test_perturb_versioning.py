"""Perturbed cost models composed with the versioning scheduler.

The paper claims the versioning scheduler "never stops learning ... and
easily adapts to application's behaviour, even if it changes over the
whole execution" (§IV-B).  Here the GPU implementation is fast for its
first 80 executions and then abruptly slows down (thermal throttling, a
co-scheduled job): per-version counts must shift from the GPU version
early in the run to the SMP version late in the run.
"""

from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.sim.perfmodel import FixedCostModel
from repro.sim.perturb import PhaseShiftCostModel
from tests.conftest import make_machine, make_two_version_task, region

FAST_GPU = 0.001
SLOW_GPU = 0.040
SMP = 0.004
FLIP_AFTER = 80


def _run(n_tasks=200):
    m = make_machine(2, 1)
    registry = {}
    work, _ = make_two_version_task(registry)
    m.register_kernel_for_kind("smp", "work_smp", FixedCostModel(SMP))
    m.register_kernel_for_kind(
        "cuda",
        "work_gpu",
        PhaseShiftCostModel([
            (FixedCostModel(FAST_GPU), FLIP_AFTER),
            (FixedCostModel(SLOW_GPU), 0),
        ]),
    )
    # throttle the master so placement decisions spread over simulated
    # time instead of all happening at submission
    config = RuntimeConfig(max_in_flight_tasks=8)
    rt = OmpSsRuntime(m, "versioning", config=config)
    with rt:
        for i in range(n_tasks):
            work(region(("a", i)), region(("b", i)))
    return rt.result()


def _version_share(records, version_name):
    return sum(1 for r in records if r.label == version_name) / len(records)


class TestPhaseShiftAdaptation:
    def test_version_mix_follows_the_cost_flip(self):
        res = _run()
        assert res.tasks_completed == 200

        counts = res.version_counts["work_smp"]
        # both implementations execute a substantial share of the run
        assert counts.get("work_gpu", 0) >= 40
        assert counts.get("work_smp", 0) >= 40

        tasks = sorted((r for r in res.trace if r.category == "task"),
                       key=lambda r: (r.start, r.worker))
        early, late = tasks[:40], tasks[-40:]
        # while the GPU is fast it dominates; after the flip the
        # scheduler routes new work to the SMP version instead
        assert _version_share(early, "work_gpu") > 0.5
        assert _version_share(late, "work_smp") > 0.5

    def test_adaptation_is_deterministic(self):
        a = _run()
        b = _run()
        assert a.trace == b.trace
        assert a.version_counts == b.version_counts
