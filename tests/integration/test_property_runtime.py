"""Property-based integration tests: random programs on random machines.

Hypothesis generates random task programs (random dependence patterns
through a small region pool, random multi-version task sets) and random
machine shapes; every scheduler must execute them to a valid state:

* every submitted task completes exactly once,
* the finish order respects every dependence edge,
* no worker runs two tasks at once,
* the coherence directory's invariants hold at the end,
* the run is deterministic (same inputs -> identical trace).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.versioning import VersioningScheduler
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel
from repro.sim.topology import minotauro_node

MB = 1024**2

# one program step: (region ids it reads, region ids it writes)
step = st.tuples(
    st.sets(st.integers(0, 5), max_size=2),
    st.sets(st.integers(0, 5), min_size=1, max_size=2),
)
program = st.lists(step, min_size=1, max_size=25)
machine_shape = st.tuples(st.integers(1, 3), st.integers(0, 2))
scheduler_name = st.sampled_from(["bf", "dep", "affinity", "versioning",
                                  "versioning-locality"])


def build_and_run(prog, smp, gpus, sched_name, seed=0):
    machine = minotauro_node(smp, gpus, noise_cv=0.01, seed=seed)
    registry = {}

    @task(
        inputs=lambda reads, writes: list(reads),
        outputs=lambda reads, writes: [w for w in writes if w not in reads],
        inouts=lambda reads, writes: [w for w in writes if w in reads],
        device="smp",
        name="step_smp",
        registry=registry,
    )
    def step_task(reads, writes):
        pass

    machine.register_kernel_for_kind("smp", "step_smp", FixedCostModel(0.002))
    if gpus > 0:
        @task(
            inputs=lambda reads, writes: list(reads),
            outputs=lambda reads, writes: [w for w in writes if w not in reads],
            inouts=lambda reads, writes: [w for w in writes if w in reads],
            device="cuda",
            implements="step_smp",
            name="step_gpu",
            registry=registry,
        )
        def step_gpu(reads, writes):
            pass

        machine.register_kernel_for_kind("cuda", "step_gpu", FixedCostModel(0.0005))

    regions = {i: DataRegion(("r", i), MB) for i in range(6)}
    rt = OmpSsRuntime(machine, sched_name)
    with rt:
        for reads, writes in prog:
            read_regs = tuple(regions[i] for i in sorted(reads - writes))
            write_regs = tuple(regions[i] for i in sorted(writes))
            step_task(read_regs, write_regs)
    return rt


class TestRandomPrograms:
    @given(prog=program, shape=machine_shape, sched=scheduler_name)
    @settings(max_examples=60, deadline=None)
    def test_valid_execution(self, prog, shape, sched):
        smp, gpus = shape
        rt = build_and_run(prog, smp, gpus, sched)
        res = rt.result()
        assert res.tasks_completed == len(prog)
        rt.graph.verify_schedule(res.finish_order)
        res.trace.check_no_overlap("task")
        rt.directory.check_invariants()
        assert len(res.finish_order) == len(set(res.finish_order))

    @given(prog=program, shape=machine_shape)
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, prog, shape):
        smp, gpus = shape
        a = build_and_run(prog, smp, gpus, "versioning", seed=3).result()
        b = build_and_run(prog, smp, gpus, "versioning", seed=3).result()
        assert a.makespan == b.makespan
        assert a.trace == b.trace
        assert a.transfer_stats.as_dict() == b.transfer_stats.as_dict()

    @given(prog=program)
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounds(self, prog):
        """Makespan is at least the critical-path lower bound (tasks on
        one chain cannot overlap) and at most the fully-serial sum plus
        transfer/flush time."""
        rt = build_and_run(prog, 2, 0, "dep")
        res = rt.result()
        task_time = 0.002
        assert res.makespan >= task_time - 1e-12
        assert res.makespan <= len(prog) * task_time + 1.0

    @given(prog=program, shape=machine_shape)
    @settings(max_examples=25, deadline=None)
    def test_versioning_counts_consistent(self, prog, shape):
        smp, gpus = shape
        sched = VersioningScheduler()
        machine = minotauro_node(smp, gpus, noise_cv=0.01, seed=1)
        registry = {}

        @task(
            inouts=lambda writes: list(writes),
            device="smp",
            name="w_smp",
            registry=registry,
        )
        def w(writes):
            pass

        machine.register_kernel_for_kind("smp", "w_smp", FixedCostModel(0.001))
        regions = {i: DataRegion(("r", i), MB) for i in range(6)}
        rt = OmpSsRuntime(machine, sched)
        with rt:
            for reads, writes in prog:
                w(tuple(regions[i] for i in sorted(writes)))
        res = rt.result()
        total = sum(sum(v.values()) for v in res.version_counts.values())
        assert total == len(prog)
        assert sched.learning_dispatches + sched.reliable_dispatches == len(prog)
        assert sched.pool_size() == 0
