"""Smoke tests: every example script must run end to end.

Scales are shrunk through each script's CLI flags where available; the
scripts print to stdout, which we capture and sanity-check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

pytestmark = pytest.mark.integration


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "TaskVersionSet" in out
        assert "makespan" in out

    def test_matmul_hybrid(self, capsys):
        out = run_example("matmul_hybrid.py", ["--tiles", "6"], capsys)
        assert "Figure 6" in out and "Figure 8" in out

    def test_cholesky_bottleneck(self, capsys):
        out = run_example("cholesky_bottleneck.py", ["--blocks", "8"], capsys)
        assert "Figure 9" in out and "potrf" in out

    def test_pbpi_mcmc(self, capsys):
        out = run_example("pbpi_mcmc.py", ["--generations", "8"], capsys)
        assert "Figure 12" in out and "Figure 15" in out

    def test_adaptive_features(self, capsys):
        out = run_example("adaptive_features.py", [], capsys)
        assert "learning dispatches cold" in out
        assert "size groups under exact grouping" in out

    def test_custom_machine(self, capsys):
        out = run_example("custom_machine.py", [], capsys)
        assert "cpu-only" in out

    def test_cluster_scaling(self, capsys):
        out = run_example("cluster_scaling.py", [], capsys)
        assert "cluster[1x(4smp+2gpu)]" in out
        assert "cluster[4x(4smp+2gpu)]" in out

    def test_trace_analysis(self, capsys):
        out = run_example("trace_analysis.py", [], capsys)
        assert "overlap" in out
        assert "bottleneck worker" in out

    def test_runtime_adaptation(self, capsys):
        out = run_example("runtime_adaptation.py", [], capsys)
        assert "EWMA" in out

    def test_scheduler_comparison(self, capsys, monkeypatch):
        out = run_example("scheduler_comparison.py", [], capsys)
        assert "five scheduling policies" in out
        monkeypatch.setenv("REPRO_SCHEDULER", "bf")
        out = run_example("scheduler_comparison.py", ["--env"], capsys)
        assert "[bf" in out
