"""Cross-cutting integration tests: every scheduler x every app (small).

Each combination must produce a valid execution: all tasks complete,
dependences respected, no worker overlap, coherence invariants intact.
"""

import pytest

from repro.apps.matmul import MatmulApp
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import minotauro_node

from tests.conftest import SMALL_APP_TASKS, SMALL_APPS, run_app

# (app, variant, scheduler) combinations that are valid per the paper
COMBOS = [
    ("matmul", "gpu", "dep"),
    ("matmul", "gpu", "affinity"),
    ("matmul", "gpu", "versioning"),
    ("matmul", "hyb", "versioning"),
    ("matmul", "hyb", "versioning-locality"),
    ("cholesky", "smp", "dep"),
    ("cholesky", "gpu", "dep"),
    ("cholesky", "gpu", "affinity"),
    ("cholesky", "hyb", "versioning"),
    ("cholesky", "hyb", "versioning-locality"),
    ("pbpi", "smp", "dep"),
    ("pbpi", "smp", "affinity"),
    ("pbpi", "gpu", "dep"),
    ("pbpi", "hyb", "versioning"),
    ("pbpi", "hyb", "versioning-locality"),
]


@pytest.mark.parametrize("app_name,variant,sched", COMBOS)
def test_valid_execution(app_name, variant, sched):
    app = SMALL_APPS[app_name](variant)
    machine = minotauro_node(2, 2, noise_cv=0.02, seed=7)
    res = run_app(app, machine, sched)

    assert res.tasks_completed == SMALL_APP_TASKS[app_name]
    res.graph.verify_schedule(res.finish_order)
    res.trace.check_no_overlap("task")
    assert res.makespan > 0
    # every executed version belongs to its task's definition
    for task_name, versions in res.version_counts.items():
        names = set()
        for defn_versions in versions:
            names.add(defn_versions)
        assert names  # non-empty


@pytest.mark.parametrize("sched", ["dep", "affinity", "versioning"])
def test_transfer_accounting_is_consistent(sched):
    """Bytes recorded in the trace equal the counters."""
    app = MatmulApp(n_tiles=3, variant="gpu")
    machine = minotauro_node(1, 2, noise_cv=0.0, seed=1)
    app.register_cost_models(machine)
    rt = OmpSsRuntime(machine, sched)
    with rt:
        app.master(rt)
    res = rt.result()
    traced = sum(r.meta[0] for r in res.trace.by_category("transfer"))
    assert traced == res.transfer_stats.total_bytes


def test_versioning_and_locality_both_valid_but_may_differ():
    def run(sched):
        app = MatmulApp(n_tiles=4, variant="hyb")
        machine = minotauro_node(2, 2, noise_cv=0.0, seed=3)
        app.register_cost_models(machine)
        rt = OmpSsRuntime(machine, sched)
        with rt:
            app.master(rt)
        return rt.result()

    a = run("versioning")
    b = run("versioning-locality")
    assert a.tasks_completed == b.tasks_completed == 64
