"""Edge cases across modules that the focused suites do not cover."""

import pytest

from repro.runtime.runtime import OmpSsRuntime
from repro.sim.engine import SimEngine
from repro.sim.topology import cluster_machine, minotauro_node

from tests.conftest import MB, make_machine, make_two_version_task, region, run_tasks


class TestEngineEdges:
    def test_event_scheduled_at_now_from_callback_runs_same_step(self):
        eng = SimEngine()
        order = []
        eng.schedule(1.0, lambda: (order.append("a"),
                                   eng.schedule(1.0, lambda: order.append("b"))))
        eng.run()
        assert order == ["a", "b"]
        assert eng.now == 1.0

    def test_cancel_after_fire_is_harmless(self):
        eng = SimEngine()
        ev = eng.schedule(1.0, lambda: None)
        eng.run()
        ev.cancel()  # no error
        assert eng.events_processed == 1

    def test_run_until_exact_event_time_includes_event(self):
        eng = SimEngine()
        fired = []
        eng.schedule(2.0, lambda: fired.append(True))
        eng.run(until=2.0)
        assert fired == [True]


class TestDirectoryEdges:
    def test_choose_source_deterministic_among_peers(self):
        from repro.memory.directory import Directory
        from repro.runtime.dataregion import DataRegion

        d = Directory()
        r = DataRegion("x", 10)
        d.note_write(r, "gpu1")
        d.mark_valid(r, "gpu0")
        # host invalid; min() of {gpu0, gpu1}
        assert d.choose_source(r, "gpu2") == "gpu0"


class TestEmptyAndTrivialRuns:
    def test_empty_run_has_zero_makespan(self):
        m = make_machine(1, 0)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            pass
        res = rt.result()
        assert res.makespan == 0.0
        assert res.tasks_completed == 0
        assert res.gflops(1e9) == 0.0

    def test_taskwait_with_nothing_pending_is_noop(self):
        m = make_machine(1, 0)
        rt = OmpSsRuntime(m, "dep")
        with rt:
            rt.taskwait()
            rt.taskwait()
        assert rt.result().makespan == 0.0

    def test_single_worker_machine(self):
        m = make_machine(1, 0)
        work, reg = make_two_version_task()
        reg(m)
        res = run_tasks(m, "versioning",
                        [(work, region(("x", i)), region(("y", i)))
                         for i in range(5)])
        assert res.tasks_completed == 5


class TestClusterEdges:
    def test_cluster_with_no_gpus(self):
        m = cluster_machine(2, 3, 0, noise_cv=0.0)
        assert len(m.devices_of_kind("cuda")) == 0
        assert m.spaces() == ["host", "node1"]
        work, reg = make_two_version_task()
        reg(m)
        res = run_tasks(m, "versioning",
                        [(work, region(("x", i), MB), region(("y", i), MB))
                         for i in range(8)])
        assert res.tasks_completed == 8

    def test_remote_host_counts_as_device_in_tx(self):
        """A copy home->node1 is classified as Input Tx (the remote host
        is a 'device' from the home node's viewpoint)."""
        m = cluster_machine(2, 1, 0, noise_cv=0.0)
        from repro.runtime.directives import task
        from repro.sim.perfmodel import FixedCostModel

        reg = {}

        @task(inputs=["x"], outputs=["y"], device="smp", name="w", registry=reg)
        def w(x, y):
            pass

        m.register_kernel_for_kind("smp", "w", FixedCostModel(0.001))
        rt = OmpSsRuntime(m, "bf")
        x = region("x", 4 * MB)
        with rt:
            # bf spreads across both nodes' workers; the remote one pulls x
            w(x, region("y0", MB))
            w(x, region("y1", MB))
        tx = rt.result().transfer_stats
        assert tx.input_tx == 4 * MB  # one pull to node1


class TestWorkerEdges:
    def test_priority_enqueue_on_queue_with_only_running_task(self):
        from repro.runtime.worker import Worker
        from repro.sim.devices import SMPDevice
        from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
        from repro.sim.devices import DeviceKind

        d = TaskDefinition("t")
        d.add_version(TaskVersion("v", "t", (DeviceKind.SMP,), "v", is_main=True))
        w = Worker(SMPDevice("smp0"))
        w.current = TaskInstance(d, [])
        hi = TaskInstance(d, [], priority=5)
        w.enqueue(hi)  # empty queue: plain append, no crash
        assert w.peek() is hi


class TestProfileEdges:
    def test_assigned_floor_at_zero(self):
        from repro.core.profile import VersionProfile

        p = VersionProfile("v")
        p.record(0.1)  # record without prior assignment
        assert p.assigned == 0

    def test_render_shows_dash_for_unrun_version(self):
        from repro.core.profile import VersionProfileTable

        t = VersionProfileTable()
        t.group("task", 100).profile("never")
        assert "<never, -, 0>" in t.render()
