"""Shape assertions from the paper's evaluation, at reduced scale.

These tests pin the *qualitative* claims of §V (who wins, what grows,
which version dominates) so regressions in the scheduler or the machine
calibration are caught.  Scales are reduced relative to the benches but
keep the paper's structure.
"""

import pytest

from repro.analysis import experiments
from repro.apps.matmul import MatmulApp
from repro.sim.topology import minotauro_node

pytestmark = pytest.mark.integration


# ----------------------------------------------------------------------
# Matmul (Figures 6-8)
# ----------------------------------------------------------------------
class TestMatmulShapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return experiments.fig6_matmul_performance(
            smp_counts=(1, 8), gpu_counts=(1, 2), n_tiles=8
        )

    def test_mm_gpu_scales_linearly_with_gpus(self, fig6):
        """'the application shows the lineal scalability when using one
        or two GPUs'"""
        one = next(r for r in fig6 if r["gpus"] == 1 and r["smp"] == 1)
        two = next(r for r in fig6 if r["gpus"] == 2 and r["smp"] == 1)
        assert two["mm-gpu-dep"] / one["mm-gpu-dep"] == pytest.approx(2.0, rel=0.1)

    def test_mm_gpu_flat_in_smp_threads(self, fig6):
        """'There is no difference between using one, two, four or eight
        SMP threads' for mm-gpu."""
        rows = [r for r in fig6 if r["gpus"] == 1]
        vals = [r["mm-gpu-aff"] for r in rows]
        assert max(vals) / min(vals) < 1.02

    def test_dep_and_aff_equivalent_on_mm_gpu(self, fig6):
        """'no difference between using the affinity scheduler or the
        dependency-aware scheduler' for mm-gpu."""
        for r in fig6:
            assert r["mm-gpu-aff"] == pytest.approx(r["mm-gpu-dep"], rel=0.05)

    def test_hybrid_gains_with_more_smp_workers(self, fig6):
        """'the more SMP worker threads collaborate ... the more benefit
        versioning scheduler takes'"""
        rows = [r for r in fig6 if r["gpus"] == 2]
        few = next(r for r in rows if r["smp"] == 1)["mm-hyb-ver"]
        many = next(r for r in rows if r["smp"] == 8)["mm-hyb-ver"]
        assert many > few

    def test_hybrid_beats_gpu_only_at_many_threads(self, fig6):
        row = next(r for r in fig6 if r["gpus"] == 2 and r["smp"] == 8)
        assert row["mm-hyb-ver"] > row["mm-gpu-dep"]

    def test_fig7_hybrid_transfers_exceed_gpu_only(self):
        rows = experiments.fig7_matmul_transfers(
            smp_counts=(8,), gpu_counts=(2,), n_tiles=8
        )
        hv = next(r for r in rows if r["config"] == "HV")
        gd = next(r for r in rows if r["config"] == "GD")
        assert hv["total"] > gd["total"]
        assert hv["device_tx"] > 0  # 'also transferring data between GPU devices'

    def test_fig7_only_hybrid_produces_device_tx(self):
        """'The versioning scheduler is also transferring data between
        GPU devices due to a lack of data locality' — the GPU-only runs
        under dep/affinity keep chains local and never need peer copies.

        (The paper's further claim that HV traffic grows with the SMP
        worker count reproduces only weakly here — see EXPERIMENTS.md.)"""
        rows = experiments.fig7_matmul_transfers(
            smp_counts=(8,), gpu_counts=(2,), n_tiles=8
        )
        hv = next(r for r in rows if r["config"] == "HV")
        ga = next(r for r in rows if r["config"] == "GA")
        gd = next(r for r in rows if r["config"] == "GD")
        assert hv["device_tx"] > 0
        assert ga["device_tx"] == 0.0
        assert gd["device_tx"] == 0.0

    def test_fig8_cublas_dominates_cuda_learning_only(self):
        rows = experiments.fig8_matmul_task_stats(
            smp_counts=(8,), gpu_counts=(2,), n_tiles=8
        )
        r = rows[0]
        assert r["CUBLAS"] > 80.0
        assert 0.0 < r["CUDA"] < 5.0  # 'only a few times at the beginning'
        assert r["SMP"] > 0.0

    def test_fig8_smp_share_grows_with_workers(self):
        rows = experiments.fig8_matmul_task_stats(
            smp_counts=(1, 8), gpu_counts=(2,), n_tiles=8
        )
        assert rows[1]["SMP"] > rows[0]["SMP"]

    def test_fig8_smp_share_larger_with_one_gpu(self):
        """'they do more work when there is only one GPU'"""
        rows = experiments.fig8_matmul_task_stats(
            smp_counts=(8,), gpu_counts=(1, 2), n_tiles=8
        )
        one_gpu = next(r for r in rows if r["gpus"] == 1)
        two_gpu = next(r for r in rows if r["gpus"] == 2)
        assert one_gpu["SMP"] > two_gpu["SMP"]


# ----------------------------------------------------------------------
# Cholesky (Figures 9-11)
# ----------------------------------------------------------------------
class TestCholeskyShapes:
    @pytest.fixture(scope="class")
    def fig9(self):
        return experiments.fig9_cholesky_performance(
            smp_counts=(2, 8), gpu_counts=(2,), n_blocks=16
        )

    def test_potrf_smp_is_slowest(self, fig9):
        """'the potrf-smp is the version that gets less performance in
        all cases'"""
        for r in fig9:
            assert r["potrf-smp-dep"] < r["potrf-gpu-aff"]
            assert r["potrf-smp-dep"] < r["potrf-gpu-dep"]
            assert r["potrf-smp-dep"] < r["potrf-hyb-ver"]

    def test_hybrid_close_to_gpu_only(self, fig9):
        """Learning costs keep potrf-hyb-ver at or below potrf-gpu at the
        paper's 16-block scale (small task count, §V-B2), but within a
        modest factor."""
        for r in fig9:
            assert r["potrf-hyb-ver"] > 0.6 * r["potrf-gpu-dep"]

    def test_learning_penalty_shrinks_with_scale(self):
        """More potrf instances amortise the λ learning runs (§IV-B:
        'applications with 50-100 or more task instances have low
        learning costs')."""
        small = experiments.fig9_cholesky_performance(
            smp_counts=(2,), gpu_counts=(2,), n_blocks=8
        )[0]
        large = experiments.fig9_cholesky_performance(
            smp_counts=(2,), gpu_counts=(2,), n_blocks=20
        )[0]
        rel_small = small["potrf-hyb-ver"] / small["potrf-gpu-dep"]
        rel_large = large["potrf-hyb-ver"] / large["potrf-gpu-dep"]
        assert rel_large > rel_small

    def test_fig11_gpu_takes_almost_all_potrf(self):
        """'the scheduler decides to assign all the work to the GPUs
        because they become the earliest executors' (beyond λ learning
        runs)."""
        rows = experiments.fig11_cholesky_task_stats(
            smp_counts=(4,), gpu_counts=(2,), n_blocks=10
        )
        r = rows[0]
        assert r["GPU"] > r["SMP"]
        assert r["GPU"] >= 60.0

    def test_fig10_smp_variant_moves_diagonal_blocks(self):
        rows = experiments.fig10_cholesky_transfers(
            smp_counts=(2,), gpu_counts=(2,), n_blocks=8
        )
        smp = next(r for r in rows if r["config"] == "SMP-dep")
        gpu = next(r for r in rows if r["config"] == "GPU-dep")
        # running potrf on the host forces the diagonal blocks back and
        # forth: more data into the devices, more traffic overall
        assert smp["input_tx"] > gpu["input_tx"]
        assert smp["total"] > gpu["total"]


# ----------------------------------------------------------------------
# PBPI (Figures 12-15)
# ----------------------------------------------------------------------
class TestPBPIShapes:
    @pytest.fixture(scope="class")
    def fig12(self):
        return experiments.fig12_pbpi_time(
            smp_counts=(8, 12), gpu_counts=(2,), generations=12
        )

    def test_pbpi_smp_faster_than_gpu(self, fig12):
        """'pbpi-smp versions run faster than the pbpi-gpu versions'"""
        for r in fig12:
            assert r["pbpi-smp"] < r["pbpi-gpu"]

    def test_hybrid_fastest(self, fig12):
        """'the versioning scheduler is able to find the appropriate
        balance ... and decrease the execution time'"""
        for r in fig12:
            assert r["pbpi-hyb"] < r["pbpi-smp"]
            assert r["pbpi-hyb"] < r["pbpi-gpu"]

    def test_fig13_hybrid_transfers_nonzero_but_below_gpu(self):
        rows = experiments.fig13_pbpi_transfers(
            smp_counts=(8,), gpu_counts=(2,), generations=12
        )
        smp = next(r for r in rows if r["config"] == "SMP-dep")
        gpu = next(r for r in rows if r["config"] == "GPU-dep")
        hyb = next(r for r in rows if r["config"] == "HYB-ver")
        assert smp["total"] == 0.0
        assert hyb["total"] > smp["total"]
        assert hyb["total"] <= gpu["total"] * 1.2

    def test_fig14_loop1_mostly_gpu(self):
        rows = experiments.fig14_pbpi_loop1_stats(
            smp_counts=(8,), gpu_counts=(2,), generations=12
        )
        assert rows[0]["GPU"] > 80.0

    def test_fig15_loop2_shared(self):
        """'the execution of tasks of the second loop is shared between
        GPU and SMP'"""
        rows = experiments.fig15_pbpi_loop2_stats(
            smp_counts=(8,), gpu_counts=(2,), generations=12
        )
        assert rows[0]["GPU"] > 10.0
        assert rows[0]["SMP"] > 10.0


# ----------------------------------------------------------------------
# Calibration sanity (§V-B1 peak-performance remarks)
# ----------------------------------------------------------------------
class TestCalibration:
    def test_gpu_fraction_of_node_peak(self):
        """'one GPU represents around 45% of the peak' and 'one SMP core
        represents less than 1%': check the cost-model ratios."""
        from repro.sim.topology import (
            GPU_CUBLAS_DGEMM_GFLOPS,
            SMP_DGEMM_GFLOPS,
        )

        node_peak = 2 * GPU_CUBLAS_DGEMM_GFLOPS + 12 * SMP_DGEMM_GFLOPS
        assert GPU_CUBLAS_DGEMM_GFLOPS / node_peak == pytest.approx(0.45, abs=0.05)
        assert SMP_DGEMM_GFLOPS / node_peak < 0.01
