"""End-to-end service semantics: caching, concurrency, admission control."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.sanitizer.invariants import validate_run
from repro.service.client import AsyncServiceClient, HarnessClient
from repro.service.loadgen import run_loadgen, spec_pool
from repro.service.server import SchedulerService, ServiceConfig, ServiceHarness
from repro.service.spec import SubmissionSpec

SPEC = {
    "app": "matmul",
    "app_args": {"n_tiles": 2, "variant": "hyb"},
    "machine_args": {"n_smp": 2, "n_gpus": 1},
    "seed": 11,
}


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness(ServiceConfig(workers=2), tcp=True) as h:
        yield h


def test_second_submission_served_from_cache_byte_identical(harness):
    client = HarnessClient(harness, tenant="cache-test")
    spec = dict(SPEC, seed=21)
    first = client.submit(spec)
    second = client.submit(spec)
    assert not first.cached
    assert second.cached
    assert json.dumps(first.result_payload, sort_keys=True) == json.dumps(
        second.result_payload, sort_keys=True
    )
    # and through the deserializer: the replayed trace is the original
    assert second.result().trace.to_json() == first.result().trace.to_json()


def test_no_cache_forces_a_fresh_run(harness):
    client = HarnessClient(harness, tenant="nocache-test")
    spec = dict(SPEC, seed=22)
    assert not client.submit(spec).cached
    assert client.submit(spec).cached
    assert not client.submit(spec, no_cache=True).cached


def test_config_changes_miss_the_cache(harness):
    """Submissions differing only in runtime config are different
    experiments — an overlap on/off ablation must not collide into one
    cache entry."""
    client = HarnessClient(harness, tenant="config-test")
    base = dict(SPEC, seed=60)
    ablated = dict(base, config={"overlap_transfers": False, "prefetch": False})
    assert not client.submit(base).cached
    assert not client.submit(ablated).cached  # not served the base run
    assert client.submit(ablated).cached      # but cached under its own key
    assert client.submit(base).cached         # and the base entry survives


def test_cached_results_validate_cleanly(harness):
    client = HarnessClient(harness, tenant="validate-test")
    spec = dict(SPEC, seed=23)
    client.submit(spec)
    restored = client.submit(spec).result()
    assert restored.tasks_completed == 8
    assert validate_run(restored) == []


def test_bad_spec_is_a_typed_error(harness):
    from repro.service.client import ServiceError

    client = HarnessClient(harness, tenant="bad-spec")
    with pytest.raises(ServiceError) as exc:
        client.submit({"app": "no-such-app"})
    assert exc.value.code == "bad-spec"


def test_unknown_op_is_bad_request(harness):
    response = harness.request({"op": "self-destruct"})
    assert response["ok"] is False
    assert response["error"]["code"] == "bad-request"


def test_stats_shape(harness):
    client = HarnessClient(harness, tenant="stats-test")
    client.submit(dict(SPEC, seed=24))
    stats = client.stats()
    assert stats["jobs_completed"] >= 1
    assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
    assert "scheduler_pool" in stats and "sessions" in stats


def test_session_stats_track_completed_and_failed(harness):
    from repro.service.client import ServiceError

    client = HarnessClient(harness, tenant="session-stats")
    client.submit(dict(SPEC, seed=61))
    with pytest.raises(ServiceError):
        client.submit(
            dict(SPEC, seed=62, app_args={"n_tiles": 2, "variant": "hyb", "bogus": 1})
        )
    stats = client.stats()["sessions"]["session-stats"]
    assert stats["submitted"] >= 2
    assert stats["completed"] >= 1
    assert stats["failed"] >= 1


def test_tcp_session_released_on_disconnect(harness):
    """A connection-scoped tenant (conn-N) must leave self.sessions when
    its connection closes — a long-running server must not accumulate
    one dead session per connection ever made."""
    assert harness.address is not None
    host, port = harness.address

    async def scenario():
        async with AsyncServiceClient(host, port) as client:
            outcome = await client.submit(dict(SPEC, seed=63))
            tenant = outcome.raw["tenant"]
            assert tenant.startswith("conn-")
            # while connected (and having submitted), the session exists
            assert tenant in (await client.request({"op": "stats"}))["stats"]["sessions"]
            return tenant

    tenant = asyncio.run(scenario())
    # the handler's finally block runs on the service loop shortly after
    # the client-side close returns; poll with a deadline
    deadline = time.perf_counter() + 10
    while time.perf_counter() < deadline:
        if tenant not in harness.request({"op": "stats"})["stats"]["sessions"]:
            break
        time.sleep(0.05)
    else:
        pytest.fail(f"session {tenant!r} not released after disconnect")


def test_oversized_request_line_handled_cleanly(harness):
    """A line beyond the stream limit (readline raises ValueError) must
    not crash the handler: the connection drops — with a typed error if
    the response can still be delivered — and the server keeps serving."""
    from repro.service.server import MAX_LINE

    assert harness.address is not None
    host, port = harness.address

    async def scenario():
        reader, writer = await asyncio.open_connection(host, port)
        line = b""
        try:
            writer.write(b"x" * (MAX_LINE + 64) + b"\n")
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
            except (ConnectionResetError, asyncio.IncompleteReadError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if line:  # the error response outran the close
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-request"
        # the server survived: a fresh connection still answers
        async with AsyncServiceClient(host, port) as client:
            assert (await client.request({"op": "ping"}))["ok"]

    asyncio.run(scenario())


def test_shared_scheduler_pool_reuses_instances(harness):
    client = HarnessClient(harness, tenant="pool-test")
    # distinct graphs, same (scheduler, machine) -> one pooled scheduler
    client.submit(dict(SPEC, seed=25, app_args={"n_tiles": 2, "variant": "hyb"}))
    before = client.stats()["scheduler_pool"]["reuses"]
    client.submit(dict(SPEC, seed=25, app_args={"n_tiles": 3, "variant": "hyb"}))
    assert client.stats()["scheduler_pool"]["reuses"] == before + 1


def test_concurrent_clients_all_complete_clean(harness):
    """N concurrent TCP clients, distinct specs: every submission comes
    back ok and every deserialized RunResult passes the sanitizer."""
    assert harness.address is not None
    host, port = harness.address
    n_clients = 6

    async def one(cid: int):
        spec = SubmissionSpec.from_dict(
            {
                "app": "cholesky",
                "app_args": {"n_blocks": 3, "variant": "hyb"},
                "machine_args": {"n_smp": 2, "n_gpus": 1},
                "seed": 100 + cid,
            }
        )
        async with AsyncServiceClient(host, port) as client:
            return await client.submit(spec, rid=f"cc-{cid}")

    async def scenario():
        return await asyncio.gather(*(one(c) for c in range(n_clients)))

    outcomes = asyncio.run(scenario())
    assert len(outcomes) == n_clients
    for outcome in outcomes:
        result = outcome.result()
        assert result.tasks_completed > 0
        assert validate_run(result) == []


def test_loadgen_reports_cache_hits(harness):
    assert harness.address is not None
    host, port = harness.address
    report = asyncio.run(
        run_loadgen(
            host,
            port,
            n_clients=4,
            requests_per_client=4,
            duplicate_fraction=0.6,
            seed=3,
            pool=spec_pool(seed=3),
        )
    )
    assert report.completed == report.requests == 16
    assert report.errors == 0
    assert report.cached > 0
    assert report.hit_rate > 0.0


def test_admission_overflow_rejects_not_hangs():
    """One tenant floods a tiny service: overflow submissions fail with
    the typed admission error, within a bounded wall-clock."""

    async def scenario():
        service = SchedulerService(
            ServiceConfig(workers=1, max_pending=2, admission="reject")
        )
        await service.start()
        try:
            requests = [
                service.handle_request(
                    {"op": "submit", "id": f"flood-{i}", "spec": dict(SPEC, seed=30)},
                    tenant="flood",
                )
                for i in range(8)
            ]
            return await asyncio.wait_for(asyncio.gather(*requests), timeout=60)
        finally:
            await service.stop()

    responses = asyncio.run(scenario())
    rejected = [r for r in responses if not r["ok"]]
    completed = [r for r in responses if r["ok"]]
    assert completed, "some submissions must get through"
    assert rejected, "overflow must produce rejections"
    for r in rejected:
        assert r["error"]["code"] == "admission-rejected"
        assert "flood" in r["error"]["message"]


def test_admission_wait_policy_backpressures_instead():
    async def scenario():
        service = SchedulerService(
            ServiceConfig(workers=1, max_pending=2, admission="wait")
        )
        await service.start()
        try:
            requests = [
                service.handle_request(
                    {"op": "submit", "spec": dict(SPEC, seed=31 + i)}, tenant="patient"
                )
                for i in range(6)
            ]
            return await asyncio.wait_for(asyncio.gather(*requests), timeout=120)
        finally:
            await service.stop()

    responses = asyncio.run(scenario())
    assert all(r["ok"] for r in responses)


def test_machine_invalidation_drops_entries(harness):
    client = HarnessClient(harness, tenant="invalidate-test")
    outcome = client.submit(dict(SPEC, seed=40))
    response = harness.request(
        {"op": "invalidate-machine", "machine_fp": outcome.machine_fp}
    )
    assert response["ok"] and response["invalidated"] >= 1
    assert not client.submit(dict(SPEC, seed=40)).cached  # cold again


def test_cache_persists_across_service_instances(tmp_path):
    path = str(tmp_path / "service-cache.json")
    spec = dict(SPEC, seed=50)
    with ServiceHarness(ServiceConfig(workers=1, cache_path=path)) as h:
        assert not HarnessClient(h).submit(spec).cached
    with ServiceHarness(ServiceConfig(workers=1, cache_path=path)) as h:
        assert HarnessClient(h).submit(spec).cached
