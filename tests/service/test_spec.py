"""SubmissionSpec validation and server-side builders."""

from __future__ import annotations

import pytest

from repro.service.spec import SpecError, SubmissionSpec


def spec_dict(**over):
    base = {"app": "matmul", "app_args": {"n_tiles": 2, "variant": "hyb"}}
    base.update(over)
    return base


def test_round_trip():
    spec = SubmissionSpec.from_dict(spec_dict(seed=7))
    assert SubmissionSpec.from_dict(spec.to_dict()) == spec


def test_unknown_app_rejected():
    with pytest.raises(SpecError, match="unknown app"):
        SubmissionSpec.from_dict(spec_dict(app="fft"))


def test_unknown_machine_rejected():
    with pytest.raises(SpecError, match="unknown machine"):
        SubmissionSpec.from_dict(spec_dict(machine="bluegene"))


def test_unknown_field_rejected():
    with pytest.raises(SpecError, match="unknown spec field"):
        SubmissionSpec.from_dict(spec_dict(priority=3))


def test_missing_app_rejected():
    with pytest.raises(SpecError, match="missing the 'app'"):
        SubmissionSpec.from_dict({"seed": 1})


def test_machine_seed_must_be_top_level():
    with pytest.raises(SpecError, match="must not carry 'seed'"):
        SubmissionSpec.from_dict(spec_dict(machine_args={"n_smp": 2, "seed": 3}))


def test_real_apps_not_serviceable():
    with pytest.raises(SpecError, match="real-arithmetic"):
        SubmissionSpec.from_dict(
            spec_dict(app_args={"n_tiles": 2, "variant": "hyb", "real": True})
        )


def test_unknown_config_field_rejected():
    with pytest.raises(SpecError, match="unknown config field"):
        SubmissionSpec.from_dict(spec_dict(config={"turbo": True}))


def test_build_app_and_machine():
    spec = SubmissionSpec.from_dict(
        spec_dict(machine_args={"n_smp": 2, "n_gpus": 1}, seed=5)
    )
    app = spec.build_app()
    assert app.name == "matmul" and app.n_tiles == 2
    machine = spec.build_machine()
    assert len(machine.devices_of_kind("smp")) == 2
    assert len(machine.devices_of_kind("cuda")) == 1
    assert machine.provenance is not None and machine.provenance["seed"] == 5


def test_bad_app_args_raise_spec_error():
    spec = SubmissionSpec.from_dict(spec_dict(app_args={"n_tiles": -1}))
    with pytest.raises(SpecError, match="bad app_args"):
        spec.build_app()


def test_scheduler_key_covers_options_and_sharing():
    a = SubmissionSpec.from_dict(spec_dict())
    b = SubmissionSpec.from_dict(spec_dict(share_scheduler=False))
    c = SubmissionSpec.from_dict(spec_dict(scheduler_options={"window": 4}))
    keys = {a.scheduler_key(), b.scheduler_key(), c.scheduler_key()}
    assert len(keys) == 3


def test_config_key_is_canonical():
    # None and {} both build a default RuntimeConfig — same experiment,
    # same key; any real override gets its own key
    none_cfg = SubmissionSpec.from_dict(spec_dict())
    empty_cfg = SubmissionSpec.from_dict(spec_dict(config={}))
    ablated = SubmissionSpec.from_dict(spec_dict(config={"prefetch": False}))
    assert none_cfg.config_key() == empty_cfg.config_key() == "{}"
    assert ablated.config_key() != none_cfg.config_key()


def test_build_config():
    spec = SubmissionSpec.from_dict(spec_dict(config={"prefetch": False}))
    config = spec.build_config()
    assert config is not None and config.prefetch is False
    assert SubmissionSpec.from_dict(spec_dict()).build_config() is None
