"""Protocol fuzzing: garbage on the wire must never wound the service.

Every frame a client can send — malformed JSON, non-object JSON,
binary noise, oversized lines, half-written frames followed by an
abrupt disconnect — must produce a typed error response or a clean
connection close, never an unhandled exception in the server's event
loop (``ServiceHarness.loop_errors`` stays empty).
"""

from __future__ import annotations

import json
import random
import socket
import struct

import pytest

from repro.service.server import MAX_LINE, ServiceConfig, ServiceHarness


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness(ServiceConfig(workers=1), tcp=True) as h:
        yield h


def connect(harness, timeout: float = 30.0) -> socket.socket:
    assert harness.address is not None
    sock = socket.create_connection(harness.address, timeout=timeout)
    return sock


def roundtrip(sock: socket.socket, frame: bytes) -> dict:
    sock.sendall(frame)
    reply = b""
    while not reply.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed before replying")
        reply += chunk
    return json.loads(reply)


def garbage_frame(rng: random.Random) -> bytes:
    """A non-empty, newline-terminated frame that is not valid JSON."""
    kind = rng.randrange(4)
    if kind == 0:  # random printable noise
        body = bytes(rng.randrange(33, 127) for _ in range(rng.randrange(1, 80)))
    elif kind == 1:  # binary noise (newlines stripped to keep framing)
        body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 80)))
        body = body.replace(b"\n", b"?").replace(b"\r", b"?")
    elif kind == 2:  # truncated JSON
        full = json.dumps({"op": "ping", "junk": "x" * rng.randrange(1, 40)}).encode()
        body = full[: rng.randrange(1, len(full) - 1)]
    else:  # mismatched brackets
        body = b'{"op": "ping", "spec": [}'
    if not body.strip() or _is_json(body):
        body = b"!" + body  # never whitespace-only, never accidentally valid
    return body + b"\n"


def _is_json(body: bytes) -> bool:
    try:
        json.loads(body)
        return True
    except (json.JSONDecodeError, UnicodeDecodeError):
        return False


def test_garbage_frames_get_typed_errors_and_connection_survives(harness):
    rng = random.Random(1234)
    with connect(harness) as sock:
        for _ in range(50):
            reply = roundtrip(sock, garbage_frame(rng))
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad-request"
        # the connection is still perfectly usable
        reply = roundtrip(sock, b'{"op": "ping"}\n')
        assert reply["ok"] is True
    assert harness.loop_errors == []


def test_valid_json_that_is_not_an_object_is_bad_request(harness):
    with connect(harness) as sock:
        for frame in (b"[1, 2, 3]\n", b"42\n", b'"submit"\n', b"null\n", b"true\n"):
            reply = roundtrip(sock, frame)
            assert reply["ok"] is False, frame
            assert reply["error"]["code"] == "bad-request"
    assert harness.loop_errors == []


def test_unknown_op_and_malformed_submit_are_typed(harness):
    with connect(harness) as sock:
        reply = roundtrip(sock, b'{"op": "explode"}\n')
        assert reply["error"]["code"] == "bad-request"
        reply = roundtrip(sock, b'{"op": "submit", "spec": {"app": "no-such-app"}}\n')
        assert reply["error"]["code"] == "bad-spec"
        reply = roundtrip(sock, b'{"op": "invalidate-machine"}\n')
        assert reply["error"]["code"] == "bad-request"
    assert harness.loop_errors == []


def test_oversized_line_is_rejected_then_closed(harness):
    with connect(harness) as sock:
        frame = b"a" * (MAX_LINE + 1024) + b"\n"
        reply = roundtrip(sock, frame)
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-request"
        assert "exceeds" in reply["error"]["message"]
        # the stream cannot be resynchronized mid-line: server hangs up
        sock.settimeout(10)
        assert sock.recv(1) == b""
    assert harness.loop_errors == []


def test_abrupt_disconnects_leave_no_loop_errors(harness):
    # half a frame, then a clean close
    with connect(harness) as sock:
        sock.sendall(b'{"op": "pi')
    # half a frame, then a hard RST
    sock = connect(harness)
    sock.sendall(b'{"op": "ping"')
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
    sock.close()
    # the listener shrugged both off and still answers
    with connect(harness) as probe:
        assert roundtrip(probe, b'{"op": "ping"}\n')["ok"] is True
    assert harness.loop_errors == []


def test_mixed_fuzz_soak_across_connections(harness):
    rng = random.Random(99)
    for _ in range(8):
        with connect(harness) as sock:
            for _ in range(rng.randrange(1, 6)):
                if rng.random() < 0.3:
                    reply = roundtrip(sock, b'{"op": "ping"}\n')
                    assert reply["ok"] is True
                else:
                    reply = roundtrip(sock, garbage_frame(rng))
                    assert reply["ok"] is False
                    assert "code" in reply["error"]
    with connect(harness) as probe:
        assert roundtrip(probe, b'{"op": "stats"}\n')["ok"] is True
    assert harness.loop_errors == []
