"""ResultCache behaviour: keys, LRU, invalidation, persistence."""

from __future__ import annotations

import json

import pytest

from repro.service.cache import CACHE_SCHEMA, CacheKey, ResultCache


def key(n: int = 0, *, mfp: str = "fp:machine", seed: int = 0) -> CacheKey:
    return CacheKey(f"gfp:{n:016x}", mfp, '{"scheduler":"versioning"}', seed)


def test_lookup_miss_then_hit():
    cache = ResultCache()
    assert cache.lookup(key()) is None
    cache.insert(key(), {"makespan": 1.0})
    assert cache.lookup(key()) == {"makespan": 1.0}
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_seed_is_part_of_the_key():
    # machine fingerprints deliberately exclude the RNG seed, so the
    # cache key must carry it explicitly
    cache = ResultCache()
    cache.insert(key(seed=1), {"seed": 1})
    assert cache.lookup(key(seed=2)) is None
    assert cache.lookup(key(seed=1)) == {"seed": 1}


def test_lru_eviction():
    cache = ResultCache(max_entries=2)
    cache.insert(key(1), {"n": 1})
    cache.insert(key(2), {"n": 2})
    assert cache.lookup(key(1)) == {"n": 1}  # touch 1: 2 becomes LRU
    cache.insert(key(3), {"n": 3})
    assert cache.lookup(key(2)) is None
    assert cache.lookup(key(1)) == {"n": 1}
    assert cache.stats.evictions == 1


def test_invalidate_machine():
    cache = ResultCache()
    cache.insert(key(1, mfp="fp:aaaa"), {"n": 1})
    cache.insert(key(2, mfp="fp:aaaa"), {"n": 2})
    cache.insert(key(3, mfp="fp:bbbb"), {"n": 3})
    assert cache.invalidate_machine("fp:aaaa") == 2
    assert len(cache) == 1
    assert cache.lookup(key(3, mfp="fp:bbbb")) == {"n": 3}
    assert cache.stats.invalidated == 2


def test_persistence_round_trip(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.insert(key(1), {"n": 1})
    cache.insert(key(2, seed=9), {"n": 2})
    cache.save()

    reloaded = ResultCache(path)
    assert len(reloaded) == 2
    assert reloaded.lookup(key(1)) == {"n": 1}
    assert reloaded.lookup(key(2, seed=9)) == {"n": 2}


def test_corrupt_cache_file_starts_cold(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json")
    cache = ResultCache(path)
    assert len(cache) == 0
    path.write_text(json.dumps({"schema": "something/else", "entries": {}}))
    assert len(ResultCache(path)) == 0


def test_persisted_payload_is_versioned(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.insert(key(), {"n": 1})
    cache.save()
    assert json.loads(path.read_text())["schema"] == CACHE_SCHEMA


def test_bad_max_entries_rejected():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)


def test_key_encode_decode():
    k = key(7, seed=3)
    assert CacheKey.decode(k.encode()) == k
    k2 = CacheKey("g", "m", "s", 1, '{"prefetch":false}')
    assert CacheKey.decode(k2.encode()) == k2


def test_config_is_part_of_the_key():
    # runtime config changes simulation results, so two submissions
    # differing only in config must occupy distinct entries
    cache = ResultCache()
    plain = CacheKey("g", "m", "s", 0, "{}")
    ablated = CacheKey("g", "m", "s", 0, '{"overlap_transfers":false}')
    cache.insert(plain, {"overlap": True})
    assert cache.lookup(ablated) is None
    assert cache.lookup(plain) == {"overlap": True}


# ----------------------------------------------------------------------
# Crash safety: the append-only journal between snapshots
# ----------------------------------------------------------------------
def test_journal_recovers_inserts_never_snapshotted(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.insert(key(1), {"n": 1})
    cache.insert(key(2), {"n": 2})
    cache.close()  # the process dies here: save() was never called
    assert not path.exists()
    assert (tmp_path / "cache.json.journal").exists()

    reloaded = ResultCache(path)
    assert len(reloaded) == 2
    assert reloaded.stats.journal_replayed == 2
    assert reloaded.lookup(key(1)) == {"n": 1}
    assert reloaded.lookup(key(2)) == {"n": 2}


def test_journal_replays_on_top_of_snapshot(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.insert(key(1), {"n": 1})
    cache.save()
    cache.insert(key(2), {"n": 2})  # journaled only
    cache.close()

    reloaded = ResultCache(path)
    assert len(reloaded) == 2
    assert reloaded.stats.journal_replayed == 1


def test_truncated_journal_tail_keeps_complete_entries(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.insert(key(1), {"n": 1})
    cache.insert(key(2), {"n": 2})
    cache.close()
    journal = tmp_path / "cache.json.journal"
    # the server died mid-append: chop the last line in half
    text = journal.read_text()
    journal.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])

    reloaded = ResultCache(path)
    assert reloaded.stats.journal_replayed == 1
    assert reloaded.lookup(key(1)) == {"n": 1}
    assert reloaded.lookup(key(2)) is None  # the mid-write entry is gone


def test_alien_schema_journal_is_quarantined(tmp_path):
    path = tmp_path / "cache.json"
    journal = tmp_path / "cache.json.journal"
    journal.write_text(json.dumps({"schema": "something/else"}) + "\n")
    cache = ResultCache(path)
    assert len(cache) == 0
    assert (tmp_path / "cache.json.journal.corrupt").exists()


def test_corrupt_snapshot_is_quarantined_not_deleted(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json")
    cache = ResultCache(path)
    assert len(cache) == 0
    quarantined = tmp_path / "cache.json.corrupt"
    assert quarantined.exists()
    assert quarantined.read_text() == "{not json"  # evidence preserved
    assert not path.exists()


def test_save_folds_journal_into_snapshot(tmp_path):
    path = tmp_path / "cache.json"
    journal = tmp_path / "cache.json.journal"
    cache = ResultCache(path)
    cache.insert(key(1), {"n": 1})
    assert journal.exists()
    assert cache.stats.journal_appends == 1
    cache.save()
    assert path.exists()
    assert not journal.exists()  # redundant once snapshotted


def test_journal_can_be_disabled(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path, journal=False)
    cache.insert(key(1), {"n": 1})
    assert not (tmp_path / "cache.json.journal").exists()
    assert cache.stats.journal_appends == 0


def test_persist_fault_degrades_without_raising(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path, persist_fault=lambda kind: True)
    cache.insert(key(1), {"n": 1})  # journal append fails silently
    assert cache.save() is None  # snapshot fails too
    assert cache.stats.persist_errors == 2
    assert cache.lookup(key(1)) == {"n": 1}  # memory is untouched
    assert not path.exists()
    assert not (tmp_path / "cache.json.journal").exists()


def test_persist_fault_recovers_when_faults_stop(tmp_path):
    path = tmp_path / "cache.json"
    faulty = {"on": True}
    cache = ResultCache(path, persist_fault=lambda kind: faulty["on"])
    cache.insert(key(1), {"n": 1})  # lost to the injected fault
    faulty["on"] = False
    cache.insert(key(2), {"n": 2})  # journaled fine
    cache.close()

    reloaded = ResultCache(path)
    assert reloaded.stats.journal_replayed == 1
    assert reloaded.lookup(key(2)) == {"n": 2}
