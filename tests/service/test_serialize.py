"""RunResult / Trace JSON round-trips (the service's wire format)."""

from __future__ import annotations

import json

import pytest

from repro.apps.matmul import MatmulApp
from repro.runtime.runtime import RunResult
from repro.runtime.serialize import (
    RUN_RESULT_SCHEMA,
    TRACE_SCHEMA,
    SchemaError,
    run_result_from_dict,
    run_result_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.sanitizer.invariants import validate_run
from repro.sim.trace import Trace
from tests.conftest import make_machine, run_app


@pytest.fixture(scope="module")
def result():
    app = MatmulApp(n_tiles=3, variant="hyb")
    return run_app(app, make_machine(2, 1, noise=0.02, seed=7), "versioning")


def test_trace_round_trip(result):
    restored = Trace.from_json(result.trace.to_json())
    assert restored == result.trace


def test_trace_json_is_stable_text(result):
    # same trace, same bytes: the cache's byte-identity guarantee
    assert result.trace.to_json() == result.trace.to_json()


def test_run_result_round_trip(result):
    payload = run_result_to_dict(result)
    json.dumps(payload)  # wire-safe
    restored = run_result_from_dict(payload)
    assert isinstance(restored, RunResult)
    assert restored == result  # live fields are excluded from equality
    assert restored.trace == result.trace
    assert restored.makespan == result.makespan
    assert restored.version_counts == result.version_counts
    assert restored.finish_order == result.finish_order
    assert restored.transfer_stats.input_tx == result.transfer_stats.input_tx


def test_round_trip_survives_a_second_pass(result):
    once = run_result_to_dict(result)
    twice = run_result_to_dict(run_result_from_dict(once))
    assert json.dumps(once, sort_keys=True) == json.dumps(twice, sort_keys=True)


def test_deserialized_result_still_validates(result):
    restored = run_result_from_dict(run_result_to_dict(result))
    assert restored.graph is None  # live fields do not travel
    assert validate_run(restored) == []


def test_schema_tags_present(result):
    assert run_result_to_dict(result)["schema"] == RUN_RESULT_SCHEMA
    assert trace_to_dict(result.trace)["schema"] == TRACE_SCHEMA


@pytest.mark.parametrize("mangle", ["missing", "wrong", "future"])
def test_unknown_schema_rejected(result, mangle):
    payload = run_result_to_dict(result)
    if mangle == "missing":
        del payload["schema"]
    elif mangle == "wrong":
        payload["schema"] = "repro.trace/1"
    else:
        payload["schema"] = "repro.run-result/999"
    with pytest.raises(SchemaError):
        run_result_from_dict(payload)


def test_unknown_trace_schema_rejected(result):
    payload = trace_to_dict(result.trace)
    payload["schema"] = "repro.trace/999"
    with pytest.raises(SchemaError):
        trace_from_dict(payload)


def test_trace_meta_survives(result):
    # version-selection metadata drives figure 8-style breakdowns; the
    # wire format must not flatten it
    has_meta = [r for r in result.trace if r.meta]
    assert has_meta, "expected some records with metadata"
    restored = Trace.from_json(result.trace.to_json())
    restored_meta = [r for r in restored if r.meta]
    assert [r.meta for r in restored_meta] == [r.meta for r in has_meta]
