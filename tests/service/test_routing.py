"""Service-routed Application.run must be indistinguishable from batch."""

from __future__ import annotations

import pytest

from repro.apps.cholesky import CholeskyApp
from repro.apps.matmul import MatmulApp
from repro.service.client import HarnessClient
from repro.service.routing import active_router, route_via_service
from repro.service.server import ServiceConfig, ServiceHarness
from repro.sim.topology import minotauro_node


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness(ServiceConfig(workers=2)) as h:
        yield h


@pytest.mark.parametrize(
    ("make_app", "scheduler"),
    [
        (lambda: MatmulApp(n_tiles=3, variant="hyb"), "versioning"),
        (lambda: CholeskyApp(n_blocks=3, variant="hyb"), "versioning"),
        (lambda: MatmulApp(n_tiles=3, variant="gpu"), "affinity"),
    ],
)
def test_batch_and_service_traces_identical(harness, make_app, scheduler):
    """Same (graph, machine, scheduler, seed): the routed path must
    reproduce the batch path byte for byte."""
    batch = make_app().run(minotauro_node(2, 1, noise_cv=0.02, seed=9), scheduler)

    client = HarnessClient(harness, tenant="equality")
    with route_via_service(client) as router:
        routed = make_app().run(minotauro_node(2, 1, noise_cv=0.02, seed=9), scheduler)
    assert router.routed == 1 and router.fallbacks == 0

    assert routed.run.trace.to_json() == batch.run.trace.to_json()
    assert routed.makespan == batch.makespan
    assert routed.gflops == batch.gflops
    assert routed.run.version_counts == batch.run.version_counts
    # task uids are run-local, so even raw finish_order ids must agree
    assert routed.run.finish_order == batch.run.finish_order


def test_router_clears_after_context(harness):
    client = HarnessClient(harness)
    assert active_router() is None
    with route_via_service(client):
        assert active_router() is not None
    assert active_router() is None


def test_unroutable_runs_fall_back_locally(harness):
    client = HarnessClient(harness, tenant="fallback")
    machine = minotauro_node(2, 1, noise_cv=0.02, seed=9)
    machine.provenance = None  # as if hand-built outside the factories
    with route_via_service(client) as router:
        res = MatmulApp(n_tiles=2, variant="hyb").run(machine, "versioning")
    assert router.routed == 0 and router.fallbacks == 1
    assert res.run.tasks_completed == 8


def test_fault_plans_never_route(harness):
    from repro.resilience import FaultPlan

    client = HarnessClient(harness, tenant="faulty")
    with route_via_service(client) as router:
        MatmulApp(n_tiles=2, variant="hyb").run(
            minotauro_node(2, 1, noise_cv=0.02, seed=9),
            "versioning",
            fault_plan=FaultPlan(),
        )
    assert router.routed == 0 and router.fallbacks == 1


class _FailingClient:
    """Client stub whose submit always raises a scripted ServiceError."""

    def __init__(self, code: str) -> None:
        from repro.service.client import ServiceError

        self._exc = ServiceError(code, f"scripted {code}")

    def submit(self, spec, *, tenant=None):
        raise self._exc


def test_connection_failures_fall_back_to_local_run():
    # a dead service must degrade an experiment to batch mode, not kill it
    with route_via_service(_FailingClient("connection-refused")) as router:
        res = MatmulApp(n_tiles=2, variant="hyb").run(
            minotauro_node(2, 1, noise_cv=0.02, seed=9), "versioning"
        )
    assert res.run.tasks_completed == 8
    assert router.routed == 0
    assert router.fallbacks == 1
    assert router.connection_fallbacks == 1


def test_submission_errors_are_not_swallowed_by_fallback():
    # bad-spec means the submission itself is wrong; rerunning locally
    # would silently paper over a real bug, so the error must surface
    from repro.service.client import ServiceError

    with route_via_service(_FailingClient("bad-spec")):
        with pytest.raises(ServiceError) as err:
            MatmulApp(n_tiles=2, variant="hyb").run(
                minotauro_node(2, 1, noise_cv=0.02, seed=9), "versioning"
            )
    assert err.value.code == "bad-spec"


def test_routed_repeat_hits_cache(harness):
    client = HarnessClient(harness, tenant="repeat")
    machine_args = dict(noise_cv=0.02, seed=13)
    with route_via_service(client) as router:
        MatmulApp(n_tiles=2, variant="gpu").run(
            minotauro_node(2, 1, **machine_args), "versioning"
        )
        MatmulApp(n_tiles=2, variant="gpu").run(
            minotauro_node(2, 1, **machine_args), "versioning"
        )
    assert router.routed == 2
    assert router.cache_hits >= 1
