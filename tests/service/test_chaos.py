"""Service hardening under seeded fault injection.

The robustness claims of :mod:`repro.service` — supervised workers,
deadlines, the poisoned-submission breaker, graceful drain, journal
recovery, and retrying clients — each reproduced deterministically
under a :class:`ServiceFaultPlan`.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.service.chaos import (
    CachePersistRule,
    ConnectionFaultRule,
    FrameFaultRule,
    ServiceFaultPlan,
    WorkerCrashRule,
    WorkerStallRule,
)
from repro.service.client import (
    HarnessClient,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.loadgen import run_loadgen_sync, spec_pool
from repro.service.server import SchedulerService, ServiceConfig, ServiceHarness

SPEC = {
    "app": "matmul",
    "app_args": {"n_tiles": 2, "variant": "hyb"},
    "machine_args": {"n_smp": 2, "n_gpus": 1},
    "seed": 11,
}

#: A spec that deterministically fails at run time (not at spec
#: validation): GPU-only tasks on a machine with no GPUs cannot be
#: placed, so every run raises — exactly what the breaker quarantines.
POISON = {
    "app": "matmul",
    "app_args": {"n_tiles": 2, "variant": "gpu"},
    "machine_args": {"n_smp": 2, "n_gpus": 0},
    "seed": 11,
}


# ----------------------------------------------------------------------
# Plan and injector semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rules_that_can_never_fire_are_rejected(self):
        with pytest.raises(ValueError, match="never fire"):
            WorkerCrashRule()
        with pytest.raises(ValueError, match="never fire"):
            ConnectionFaultRule()
        with pytest.raises(ValueError, match="never fire"):
            FrameFaultRule()
        with pytest.raises(ValueError, match="never fire"):
            CachePersistRule()

    def test_probabilities_validated_eagerly(self):
        with pytest.raises(ValueError, match="probability"):
            WorkerCrashRule(probability=1.5)
        with pytest.raises(ValueError, match="exceed"):
            ConnectionFaultRule(drop=0.7, reset=0.7)
        with pytest.raises(ValueError, match="stall_s"):
            WorkerStallRule(stall_s=0.0, probability=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            WorkerCrashRule(at_jobs=(-1,))
        with pytest.raises(ValueError, match="when"):
            ConnectionFaultRule(drop=0.5, when="sometimes")

    def test_plan_rejects_wrong_rule_kinds(self):
        with pytest.raises(ValueError, match="WorkerCrashRule"):
            ServiceFaultPlan(worker_crashes=(FrameFaultRule(corrupt=0.5),))

    def test_empty_plan_is_empty(self):
        assert ServiceFaultPlan().empty
        assert not ServiceFaultPlan(
            worker_crashes=(WorkerCrashRule(at_jobs=(0,)),)
        ).empty

    def test_injector_streams_are_deterministic(self):
        plan = ServiceFaultPlan(
            seed=42,
            worker_crashes=(WorkerCrashRule(probability=0.3),),
            frame_faults=(FrameFaultRule(corrupt=0.2, truncate=0.2),),
        )
        a, b = plan.injector(), plan.injector()
        seq_a = [a.worker_fault() for _ in range(50)] + [a.frame_fault() for _ in range(50)]
        seq_b = [b.worker_fault() for _ in range(50)] + [b.frame_fault() for _ in range(50)]
        assert seq_a == seq_b
        assert any(f is not None for f in seq_a)  # the seed actually fires

    def test_exact_ordinals_fire_exactly(self):
        plan = ServiceFaultPlan(
            worker_crashes=(WorkerCrashRule(at_jobs=(2,)),),
            connection_faults=(ConnectionFaultRule(at_requests=(1,), when="response"),),
        )
        inj = plan.injector()
        assert [inj.worker_fault() for _ in range(4)] == [
            None, None, ("crash", 0.0), None
        ]
        ordinals = [inj.request_ordinal() for _ in range(3)]
        assert ordinals == [0, 1, 2]
        assert inj.connection_fault("response", 0) is None
        assert inj.connection_fault("response", 1) == "drop"
        assert inj.connection_fault("request", 1) is None  # wrong point
        assert inj.counters()["fired"]["worker-crash"] == 1
        assert inj.counters()["fired"]["connection-drop"] == 1


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
def test_crashed_worker_fails_job_typed_and_is_replaced():
    plan = ServiceFaultPlan(worker_crashes=(WorkerCrashRule(at_jobs=(0,)),))
    with ServiceHarness(ServiceConfig(workers=2, fault_plan=plan)) as h:
        client = HarnessClient(h, tenant="crash")
        with pytest.raises(ServiceError) as err:
            client.submit(SPEC)
        assert err.value.code == "internal-error"
        # the pool healed: the next submission runs on a replacement
        assert client.submit(SPEC).result().tasks_completed == 8
        health = client.health()
        assert health["workers"]["replaced"] >= 1
        assert health["workers"]["live"] == health["workers"]["configured"] == 2


def test_worker_stall_fault_delays_but_completes():
    plan = ServiceFaultPlan(worker_stalls=(WorkerStallRule(stall_s=0.2, at_jobs=(0,)),))
    with ServiceHarness(ServiceConfig(workers=1, fault_plan=plan)) as h:
        client = HarnessClient(h, tenant="stall")
        t0 = time.perf_counter()
        outcome = client.submit(SPEC)
        assert time.perf_counter() - t0 >= 0.2
        assert outcome.result().tasks_completed == 8


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_deadline_exceeded_while_queued_is_typed():
    # a stalled worker holds the only slot past the job's budget
    plan = ServiceFaultPlan(worker_stalls=(WorkerStallRule(stall_s=0.3, at_jobs=(0,)),))
    with ServiceHarness(ServiceConfig(workers=1, fault_plan=plan)) as h:
        client = HarnessClient(h, tenant="deadline")
        with pytest.raises(ServiceError) as err:
            client.submit(dict(SPEC, deadline_s=0.05))
        assert err.value.code == "deadline-exceeded"
        stats = client.stats()
        assert stats["sessions"]["deadline"]["deadline_exceeded"] == 1


def test_deadline_is_not_part_of_the_cache_key():
    with ServiceHarness(ServiceConfig(workers=1)) as h:
        client = HarnessClient(h, tenant="deadline-key")
        first = client.submit(dict(SPEC, seed=77))
        second = client.submit(dict(SPEC, seed=77, deadline_s=60.0))
        assert not first.cached and second.cached


def test_deadline_must_be_positive():
    with ServiceHarness(ServiceConfig(workers=1)) as h:
        client = HarnessClient(h, tenant="deadline-bad")
        with pytest.raises(ServiceError) as err:
            client.submit(dict(SPEC, deadline_s=-1.0))
        assert err.value.code == "bad-spec"


# ----------------------------------------------------------------------
# Poisoned-submission breaker
# ----------------------------------------------------------------------
def test_breaker_quarantines_after_consecutive_failures():
    config = ServiceConfig(workers=1, breaker_threshold=2, breaker_cooldown_s=60.0)
    with ServiceHarness(config) as h:
        client = HarnessClient(h, tenant="poison")
        for _ in range(2):
            with pytest.raises(ServiceError) as err:
                client.submit(POISON)
            assert err.value.code == "run-failed"
        # the circuit is open: identical submissions fast-fail typed
        with pytest.raises(ServiceError) as err:
            client.submit(POISON)
        assert err.value.code == "quarantined"
        assert err.value.response.get("retry_after", 0) > 0
        # a different submission is unaffected
        assert client.submit(SPEC).result().tasks_completed == 8
        assert client.health()["breaker"]["active"] == 1
        assert client.health()["breaker"]["tripped"] == 1


def test_breaker_readmits_on_probation_after_cooldown():
    config = ServiceConfig(workers=1, breaker_threshold=2, breaker_cooldown_s=0.05)
    with ServiceHarness(config) as h:
        client = HarnessClient(h, tenant="probation")
        for _ in range(2):
            with pytest.raises(ServiceError):
                client.submit(POISON)
        time.sleep(0.1)
        # cooldown over: one probationary attempt actually runs...
        with pytest.raises(ServiceError) as err:
            client.submit(POISON)
        assert err.value.code == "run-failed"
        # ...and its failure re-trips immediately
        with pytest.raises(ServiceError) as err:
            client.submit(POISON)
        assert err.value.code == "quarantined"


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_and_rejects_new():
    async def scenario():
        service = SchedulerService(ServiceConfig(workers=2))
        await service.start()
        inflight = [
            asyncio.create_task(
                service.handle_request(
                    {"op": "submit", "id": f"j{i}", "spec": dict(SPEC, seed=30 + i)},
                    "drain",
                )
            )
            for i in range(3)
        ]
        await asyncio.sleep(0.05)  # let them enter the pipeline
        drain = asyncio.create_task(service.shutdown(drain=True, timeout=30))
        await asyncio.sleep(0)  # shutdown() closes admission synchronously
        late = await service.handle_request(
            {"op": "submit", "id": "late", "spec": SPEC}, "drain"
        )
        assert late["ok"] is False
        assert late["error"]["code"] == "shutting-down"
        results = await asyncio.gather(*inflight)
        assert all(r["ok"] for r in results), [r.get("error") for r in results]
        await drain
        assert service.health()["status"] == "draining"

    asyncio.run(scenario())


def test_harness_drain_flushes_cache(tmp_path):
    path = tmp_path / "cache.json"
    h = ServiceHarness(ServiceConfig(workers=1, cache_path=str(path))).start()
    HarnessClient(h).submit(SPEC)
    h.drain(timeout=30)
    assert path.exists()  # drain ends in a snapshot
    assert not (tmp_path / "cache.json.journal").exists()  # folded in
    reloaded = ServiceHarness(ServiceConfig(workers=1, cache_path=str(path))).start()
    try:
        assert HarnessClient(reloaded).submit(SPEC).cached
    finally:
        reloaded.stop()


def test_sigterm_drains_a_foreground_server():
    import os
    import signal
    import subprocess
    import sys

    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline()
        assert "listening on" in banner
        host, port = banner.rsplit(" ", 1)[-1].strip().rsplit(":", 1)
        client = ServiceClient(host, int(port), timeout=60)
        assert client.submit(SPEC).result().tasks_completed == 8
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert "draining" in out and "stopped" in out
        assert proc.returncode == 0
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


# ----------------------------------------------------------------------
# Health
# ----------------------------------------------------------------------
def test_health_op_shape():
    with ServiceHarness(ServiceConfig(workers=2)) as h:
        client = HarnessClient(h, tenant="health")
        client.submit(SPEC)
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == {"configured": 2, "live": 2, "replaced": 0}
        assert health["queues"]["health"] == 0
        assert health["inflight"] == 0
        assert health["cache"]["insertions"] == 1
        assert health["breaker"] == {"active": 0, "tripped": 0}
        assert health["chaos"] is None  # no fault plan armed


# ----------------------------------------------------------------------
# Crash-safe cache: kill, restart, recover from the journal
# ----------------------------------------------------------------------
def test_kill_and_restart_recovers_results_from_journal(tmp_path):
    path = tmp_path / "cache.json"
    pool = spec_pool(seed=5, share_scheduler=False)[:3]
    h = ServiceHarness(ServiceConfig(workers=2, cache_path=str(path))).start()
    try:
        client = HarnessClient(h, tenant="crashy")
        payloads = {i: client.submit(s).result_payload for i, s in enumerate(pool)}
    finally:
        h.kill()  # abrupt: no drain, no snapshot
    assert not path.exists()  # never snapshotted...
    assert (tmp_path / "cache.json.journal").exists()  # ...only journaled

    restarted = ServiceHarness(ServiceConfig(workers=2, cache_path=str(path))).start()
    try:
        assert restarted.service.cache.stats.journal_replayed == len(pool)
        client = HarnessClient(restarted, tenant="reborn")
        for i, spec in enumerate(pool):
            outcome = client.submit(spec)
            assert outcome.cached  # recovered, not re-simulated
            assert outcome.result_payload == payloads[i]
    finally:
        restarted.stop()


def test_persist_faults_degrade_without_losing_submissions(tmp_path):
    plan = ServiceFaultPlan(
        cache_persist_faults=(CachePersistRule(probability=1.0),)
    )
    path = tmp_path / "cache.json"
    with ServiceHarness(ServiceConfig(workers=1, cache_path=str(path), fault_plan=plan)) as h:
        client = HarnessClient(h, tenant="nostorage")
        first = client.submit(SPEC)
        second = client.submit(SPEC)
        assert not first.cached and second.cached  # memory still serves
        assert h.service.cache.stats.persist_errors > 0
    assert not path.exists()  # every write failed, nothing persisted


# ----------------------------------------------------------------------
# The acceptance soak: seeded chaos + retrying clients
# ----------------------------------------------------------------------
SOAK_PLAN = ServiceFaultPlan(
    seed=3,
    worker_crashes=(WorkerCrashRule(probability=0.2),),
    connection_faults=(
        ConnectionFaultRule(drop=0.1, when="response"),
        ConnectionFaultRule(drop=0.1, when="request"),
    ),
    frame_faults=(FrameFaultRule(corrupt=0.1),),
)


def _soak_load(pool):
    return dict(
        n_clients=4,
        requests_per_client=3,
        duplicate_fraction=0.5,
        seed=3,
        pool=pool,
    )


def test_chaos_soak_with_retries_completes_byte_identical():
    # pooled schedulers are history-dependent; byte-identical comparison
    # across servers needs fresh-scheduler runs
    pool = spec_pool(seed=3, share_scheduler=False)
    with ServiceHarness(ServiceConfig(workers=2), tcp=True) as h:
        assert h.address is not None
        baseline = run_loadgen_sync(*h.address, **_soak_load(pool))
    assert baseline.completed == baseline.requests

    with ServiceHarness(ServiceConfig(workers=2, fault_plan=SOAK_PLAN), tcp=True) as h:
        assert h.address is not None
        soak = run_loadgen_sync(
            *h.address,
            retry=RetryPolicy(max_attempts=8, base_s=0.01, cap_s=0.2, seed=3),
            **_soak_load(pool),
        )
        fired = h.service.chaos.counters()["fired"]
    assert sum(fired.values()) > 0, "the fault plan fired nothing; soak proved nothing"
    assert soak.retries > 0, "no retries under faults; soak proved nothing"
    assert soak.completed == soak.requests
    assert soak.result_digests == baseline.result_digests


def test_chaos_soak_without_retries_observably_fails():
    pool = spec_pool(seed=3, share_scheduler=False)
    with ServiceHarness(ServiceConfig(workers=2, fault_plan=SOAK_PLAN), tcp=True) as h:
        assert h.address is not None
        bare = run_loadgen_sync(*h.address, **_soak_load(pool))
    assert bare.errors > 0  # the same faults, no retry: submissions are lost
