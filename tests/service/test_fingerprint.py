"""Canonical graph fingerprints: stable in-process and across processes."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.apps.cholesky import CholeskyApp
from repro.apps.matmul import MatmulApp
from repro.apps.pbpi import PBPIApp
from repro.runtime.fingerprint import GraphCapture, app_graph_fingerprint


def test_identical_apps_identical_fingerprint():
    a = app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb"))
    b = app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb"))
    assert a == b
    assert a.startswith("gfp:")


def test_fingerprint_ignores_uid_counter():
    # burn task uids between the two captures: the run-global counter
    # must not leak into the hash
    first = app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb"))
    app_graph_fingerprint(CholeskyApp(n_blocks=4, variant="gpu"))
    second = app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb"))
    assert first == second


def test_distinct_graphs_distinct_fingerprints():
    fps = {
        app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb")),
        app_graph_fingerprint(MatmulApp(n_tiles=4, variant="hyb")),
        app_graph_fingerprint(MatmulApp(n_tiles=3, variant="gpu")),
        app_graph_fingerprint(MatmulApp(n_tiles=3, tile_size=512, variant="hyb")),
        app_graph_fingerprint(CholeskyApp(n_blocks=3, variant="hyb")),
        app_graph_fingerprint(PBPIApp(generations=2, n_blocks=3, variant="hyb")),
    }
    assert len(fps) == 6


def test_capture_does_not_simulate():
    cap = GraphCapture()
    with cap:
        MatmulApp(n_tiles=2, variant="hyb").master(cap)  # type: ignore[arg-type]
    assert len(cap.tasks) == 2 * 2 * 2
    assert len(cap.graph._tasks) == len(cap.tasks)


def test_priority_clause_enters_fingerprint():
    base = app_graph_fingerprint(CholeskyApp(n_blocks=3, variant="hyb"))
    prio = app_graph_fingerprint(CholeskyApp(n_blocks=3, variant="hyb", potrf_priority=5))
    assert base != prio


_SUBPROCESS_SNIPPET = """
import json
from repro.apps.cholesky import CholeskyApp
from repro.apps.matmul import MatmulApp
from repro.runtime.fingerprint import app_graph_fingerprint
print(json.dumps({
    "matmul": app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb")),
    "cholesky": app_graph_fingerprint(CholeskyApp(n_blocks=4, variant="hyb")),
}))
"""


def _fingerprints_under(hashseed: str) -> dict:
    src = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        env={"PYTHONPATH": src, "PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
        check=True,
    )
    return json.loads(proc.stdout)


def test_fingerprint_is_process_stable():
    """Regression: the hash must not depend on PYTHONHASHSEED or any
    other per-process state (dict order, uid counters, object ids)."""
    runs = [_fingerprints_under(seed) for seed in ("1", "42", "random")]
    assert runs[0] == runs[1] == runs[2]
    # and the parent process (whatever its hash seed) agrees
    assert runs[0]["matmul"] == app_graph_fingerprint(MatmulApp(n_tiles=3, variant="hyb"))
    assert runs[0]["cholesky"] == app_graph_fingerprint(
        CholeskyApp(n_blocks=4, variant="hyb")
    )
