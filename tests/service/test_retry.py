"""Retrying clients: typed transport errors, backoff, idempotent resubmission."""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.service.chaos import FrameFaultRule, ServiceFaultPlan, WorkerCrashRule
from repro.service.client import (
    RETRYABLE_CODES,
    AsyncServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from repro.service.server import ServiceConfig, ServiceHarness

SPEC = {
    "app": "matmul",
    "app_args": {"n_tiles": 2, "variant": "hyb"},
    "machine_args": {"n_smp": 2, "n_gpus": 1},
    "seed": 11,
}


# ----------------------------------------------------------------------
# Policy and backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_s"):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ValueError, match="base_s"):
            RetryPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ValueError, match="deadline_s"):
            RetryPolicy(deadline_s=0.0)

    def test_seeded_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_s=0.05, cap_s=2.0, seed=7)
        a = [policy.backoff().next() for _ in range(1)]  # fresh stream each
        seq1 = [s for b in [policy.backoff()] for s in (b.next(), b.next(), b.next())]
        seq2 = [s for b in [policy.backoff()] for s in (b.next(), b.next(), b.next())]
        assert seq1 == seq2
        assert all(policy.base_s <= s <= policy.cap_s for s in seq1 + a)

    def test_unseeded_backoffs_differ(self):
        policy = RetryPolicy(base_s=0.05, cap_s=2.0)
        seqs = {tuple(b.next() for _ in range(4)) for b in [policy.backoff() for _ in range(3)]}
        assert len(seqs) == 3  # astronomically unlikely to collide

    def test_retryable_codes(self):
        policy = RetryPolicy()
        for code in RETRYABLE_CODES:
            assert policy.retryable_code(code)
        for code in ("quarantined", "bad-spec", "deadline-exceeded", "run-failed", None):
            assert not policy.retryable_code(code)


# ----------------------------------------------------------------------
# Typed transport errors (satellite: no raw socket exceptions escape)
# ----------------------------------------------------------------------
def _fake_server(behaviour, *, max_conns: int = 8) -> tuple[str, int, threading.Thread]:
    """A TCP stub; ``behaviour(conn)`` scripts the server side per connection.

    Accepts up to ``max_conns`` connections (a retrying client reconnects
    after transport failures) and runs each through ``behaviour``.
    """
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(max_conns)
    listener.settimeout(30)
    addr = listener.getsockname()

    def run() -> None:
        try:
            for _ in range(max_conns):
                try:
                    conn, _ = listener.accept()
                except (OSError, socket.timeout):
                    return
                try:
                    behaviour(conn)
                finally:
                    conn.close()
        finally:
            listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return addr[0], addr[1], thread


def test_connection_refused_is_typed():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    free_port = probe.getsockname()[1]
    probe.close()
    with pytest.raises(ServiceError) as err:
        ServiceClient("127.0.0.1", free_port)
    assert err.value.code == "connection-refused"


def test_server_never_replying_is_typed_timeout():
    def mute(conn: socket.socket) -> None:
        conn.recv(65536)  # read the request, say nothing
        threading.Event().wait(1.0)

    host, port, thread = _fake_server(mute)
    client = ServiceClient(host, port, timeout=0.2)
    with pytest.raises(ServiceError) as err:
        client.ping()
    assert err.value.code == "timeout"
    thread.join(timeout=5)


def test_non_json_reply_is_typed_bad_frame():
    def liar(conn: socket.socket) -> None:
        conn.recv(65536)
        conn.sendall(b"this is not json\n")

    host, port, thread = _fake_server(liar)
    client = ServiceClient(host, port, timeout=5)
    with pytest.raises(ServiceError) as err:
        client.ping()
    assert err.value.code == "bad-frame"
    thread.join(timeout=5)


def test_close_before_reply_is_typed_connection_closed():
    def hanger_upper(conn: socket.socket) -> None:
        conn.recv(65536)

    host, port, thread = _fake_server(hanger_upper)
    client = ServiceClient(host, port, timeout=5)
    with pytest.raises(ServiceError) as err:
        client.ping()
    assert err.value.code == "connection-closed"
    thread.join(timeout=5)


def test_async_client_unconnected_is_typed_not_connected():
    async def scenario():
        client = AsyncServiceClient("127.0.0.1", 1)
        with pytest.raises(ServiceError) as err:
            await client.request({"op": "ping"})
        return err.value.code

    assert asyncio.run(scenario()) == "not-connected"


# ----------------------------------------------------------------------
# End-to-end retries against a chaotic service
# ----------------------------------------------------------------------
def test_sync_client_retries_corrupt_frame_and_result_is_idempotent():
    # the very first response frame is corrupted on the wire; the client
    # sees bad-frame, reconnects, resubmits, and the cache answers
    plan = ServiceFaultPlan(frame_faults=(FrameFaultRule(at_frames=(0,)),))
    with ServiceHarness(ServiceConfig(workers=1, fault_plan=plan), tcp=True) as h:
        assert h.address is not None
        client = ServiceClient(
            *h.address, retry=RetryPolicy(max_attempts=4, base_s=0.01, cap_s=0.1, seed=0)
        )
        outcome = client.submit(SPEC)
        assert client.retries == 1
        assert outcome.cached  # first attempt ran and populated the cache
        assert outcome.result().tasks_completed == 8
        client.close()
    assert h.loop_errors == []


def test_sync_client_retries_crashed_worker():
    # internal-error is a response-typed retryable failure: no reconnect
    # needed, the second attempt lands on the replacement worker
    plan = ServiceFaultPlan(worker_crashes=(WorkerCrashRule(at_jobs=(0,)),))
    with ServiceHarness(ServiceConfig(workers=1, fault_plan=plan), tcp=True) as h:
        assert h.address is not None
        client = ServiceClient(
            *h.address, retry=RetryPolicy(max_attempts=4, base_s=0.01, cap_s=0.1, seed=0)
        )
        outcome = client.submit(SPEC)
        assert client.retries == 1
        assert outcome.result().tasks_completed == 8
        client.close()


def test_retry_budget_exhausts_and_last_error_surfaces():
    def always_lies(conn: socket.socket) -> None:
        for _ in range(10):
            if not conn.recv(65536):
                return
            try:
                conn.sendall(b"garbage\n")
            except OSError:
                return

    host, port, thread = _fake_server(always_lies)
    client = ServiceClient(
        host, port, timeout=5,
        retry=RetryPolicy(max_attempts=3, base_s=0.01, cap_s=0.02, seed=1),
    )
    with pytest.raises(ServiceError) as err:
        client.ping()
    assert err.value.code == "bad-frame"
    assert client.retries == 2  # 3 attempts = 2 retries
    thread.join(timeout=5)


def test_non_retryable_code_is_not_retried():
    with ServiceHarness(ServiceConfig(workers=1), tcp=True) as h:
        assert h.address is not None
        client = ServiceClient(
            *h.address, retry=RetryPolicy(max_attempts=5, base_s=0.01, cap_s=0.1, seed=2)
        )
        with pytest.raises(ServiceError) as err:
            client.submit({"app": "no-such-app"})
        assert err.value.code == "bad-spec"
        assert client.retries == 0
        client.close()


def test_async_client_retries_and_reconnects():
    plan = ServiceFaultPlan(frame_faults=(FrameFaultRule(at_frames=(0,)),))

    async def scenario():
        with ServiceHarness(ServiceConfig(workers=1, fault_plan=plan), tcp=True) as h:
            assert h.address is not None
            async with AsyncServiceClient(
                *h.address,
                retry=RetryPolicy(max_attempts=4, base_s=0.01, cap_s=0.1, seed=0),
            ) as client:
                outcome = await client.submit(SPEC)
                return client.retries, outcome.cached

    retries, cached = asyncio.run(scenario())
    assert retries == 1
    assert cached


def test_overall_deadline_stops_retrying_early():
    def mute_forever(conn: socket.socket) -> None:
        while conn.recv(65536):
            pass

    host, port, thread = _fake_server(mute_forever)
    client = ServiceClient(
        host, port, timeout=0.1,
        retry=RetryPolicy(max_attempts=50, base_s=0.2, cap_s=0.3, deadline_s=0.25, seed=3),
    )
    with pytest.raises(ServiceError) as err:
        client.ping()
    assert err.value.code == "timeout"
    assert client.retries < 5  # the deadline cut the 50-attempt budget short
    client.close()
    thread.join(timeout=5)
