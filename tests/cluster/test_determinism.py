"""Seeded-determinism regression for sharded cluster runs.

Two identical cluster runs — same seed, same partition, stealing on —
must produce byte-identical traces.  The block partition on a 6x6 tiled
matmul over 4 nodes is chosen because it actually steals (the block
layout front-loads early nodes, so late nodes start empty); the test
asserts that, so a scheduler change that silently stops stealing fails
here instead of quietly weakening the regression.
"""

from __future__ import annotations

from repro.apps.matmul import MatmulApp
from repro.sim.topology import cluster_machine

from tests.conftest import run_app


def _once():
    machine = cluster_machine(
        4, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=7
    )
    return run_app(
        MatmulApp(n_tiles=6, variant="hyb"),
        machine,
        "cluster",
        scheduler_options={"partition": "block", "steal": True},
    )


def test_cluster_run_with_steals_is_byte_identical():
    a = _once()
    b = _once()
    stats = a.scheduler_state.stats
    assert stats.steals > 0, "fixture must exercise work stealing"
    assert a.trace.by_category("steal"), "steals must be traced"
    assert b.makespan == a.makespan
    assert b.trace == a.trace
    # byte-identical, not merely record-equal: reprs match too
    assert repr(b.trace.sorted()) == repr(a.trace.sorted())
    assert a.validate() == []


def test_notify_records_carry_run_local_ids():
    """Notification trace records must not leak process-global uids.

    Labels and meta use run-local ids, so a second run in the same
    process (different global uid range) reproduces the trace exactly.
    """
    res = _once()
    n_tasks = res.tasks_completed
    for rec in res.trace.by_category("notify"):
        assert rec.meta, "notify records carry the successor seq"
        assert 1 <= rec.meta[0] <= n_tasks
        assert "#" not in rec.label
    for rec in res.trace.by_category("steal"):
        assert 1 <= rec.meta[0] <= n_tasks
        assert "#" not in rec.label
