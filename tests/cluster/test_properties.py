"""Property-based tests for the sharded cluster scheduler.

Hypothesis generates random task DAGs (each task reads one region and
writes another, so RAW / WAR / WAW edges arise naturally) and we check
the partitioning and notification invariants the protocol promises:

* the shards are a partition of the task set — disjoint by
  construction, complete over every submitted task, and every shard id
  is a real node;
* with stealing off, every cross-shard dependence edge produces exactly
  one notification message, every message is delivered, and local
  edges produce none;
* a sharded run completes exactly the task set a single-node run
  completes (same run-local ids, same count), and both validate clean.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import FaultPlan, MessageFaultRule
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import cluster_machine, minotauro_node

from tests.conftest import MB, make_two_version_task, region

MAX_EXAMPLES = 20


@st.composite
def dags(draw):
    """A random DAG as (n_regions, [(read_idx, write_idx), ...])."""
    n_regions = draw(st.integers(min_value=2, max_value=6))
    pair = st.tuples(
        st.integers(0, n_regions - 1), st.integers(0, n_regions - 1)
    ).filter(lambda p: p[0] != p[1])
    pairs = draw(st.lists(pair, min_size=1, max_size=16))
    return n_regions, pairs


def _run(machine, scheduler, n_regions, pairs, fault_plan=None,
         **scheduler_options):
    work, register = make_two_version_task(name="prop")
    register(machine)
    regions = [region(("prop", i), MB // 4) for i in range(n_regions)]
    rt = OmpSsRuntime(
        machine, scheduler, scheduler_options=scheduler_options or None,
        fault_plan=fault_plan,
    )
    with rt:
        for r, w in pairs:
            work(regions[r], regions[w])
    return rt.result()


def _cluster(n_nodes):
    return cluster_machine(
        n_nodes, smp_per_node=1, gpus_per_node=1, noise_cv=0.0, seed=5
    )


def _local_finish_ids(res):
    local = res.scheduler_state.rt._local_ids
    return sorted(local.get(uid, uid) for uid in res.finish_order)


@settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=True)
@given(dag=dags(), n_nodes=st.sampled_from([2, 3]),
       partition=st.sampled_from(["hash", "block", "affinity"]))
def test_shards_partition_the_task_set(dag, n_nodes, partition):
    n_regions, pairs = dag
    res = _run(_cluster(n_nodes), "cluster", n_regions, pairs,
               partition=partition)
    sched = res.scheduler_state
    shard_map = sched.shard_map()
    # complete: every submitted task has exactly one shard (a dict is
    # disjoint by construction), and every shard id is a real node
    assert sorted(shard_map) == sorted(res.finish_order)
    assert all(0 <= node < n_nodes for node in shard_map.values())
    # the per-node counters sum back to the task set
    assert sum(sched.stats.tasks_per_node.values()) == len(pairs)


@settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=True)
@given(dag=dags(), n_nodes=st.sampled_from([2, 3]),
       partition=st.sampled_from(["hash", "block", "affinity"]))
def test_every_cross_edge_sends_exactly_one_notification(dag, n_nodes, partition):
    n_regions, pairs = dag
    res = _run(_cluster(n_nodes), "cluster", n_regions, pairs,
               partition=partition, steal=False)
    stats = res.scheduler_state.stats
    n_edges = sum(len(res.graph.in_edges(t.uid)) for t in res.graph.tasks())
    assert stats.cross_edges + stats.local_edges == n_edges
    assert stats.notifications_sent == stats.cross_edges
    assert stats.notifications_delivered == stats.notifications_sent
    assert len(res.trace.by_category("notify")) == stats.notifications_sent
    assert res.validate() == []


@settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=True)
@given(dag=dags(), partition=st.sampled_from(["hash", "block", "affinity"]))
def test_sharded_run_completes_the_single_node_task_set(dag, partition):
    n_regions, pairs = dag
    sharded = _run(_cluster(2), "cluster", n_regions, pairs,
                   partition=partition)
    single = _run(minotauro_node(2, 1, noise_cv=0.0, seed=5), "versioning",
                  n_regions, pairs)
    assert sharded.tasks_completed == single.tasks_completed == len(pairs)
    assert _local_finish_ids(sharded) == _local_finish_ids(single)
    sharded.graph.verify_schedule(sharded.finish_order)
    single.graph.verify_schedule(single.finish_order)
    assert sharded.validate() == []
    assert single.validate() == []


#: retransmit fast (task costs are milliseconds) and with headroom: at
#: 30% loss on notifications *and* acks a round fails with p ~ 0.51,
#: so a budget of 20 makes a blown budget a ~1e-6 event per edge
_CHAOS_PROTOCOL = {"ack_timeout": 0.002, "max_retransmits": 20}


@settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=True)
@given(dag=dags(), n_nodes=st.sampled_from([2, 3]),
       loss=st.sampled_from([0.1, 0.3]),
       fault_seed=st.integers(0, 5))
def test_lossy_network_completes_the_fault_free_task_set(
    dag, n_nodes, loss, fault_seed
):
    """Reliable delivery makes chaos invisible to the dependence layer.

    For any seeded plan of dropped / duplicated / delayed notifications,
    the sharded run with retransmission enabled releases and finishes
    exactly the task set of the fault-free run, and its trace passes the
    sanitizer (SAN-T009 logical delivery, SAN-T010 release fencing).
    """
    n_regions, pairs = dag
    plan = FaultPlan(seed=fault_seed, message_faults=[
        MessageFaultRule(drop=loss, duplicate=0.2, delay=0.2,
                         delay_time=0.001),
    ])
    clean = _run(_cluster(n_nodes), "cluster", n_regions, pairs,
                 partition="hash", protocol=_CHAOS_PROTOCOL)
    faulted = _run(_cluster(n_nodes), "cluster", n_regions, pairs,
                   fault_plan=plan, partition="hash",
                   protocol=_CHAOS_PROTOCOL)
    assert faulted.tasks_completed == clean.tasks_completed == len(pairs)
    assert _local_finish_ids(faulted) == _local_finish_ids(clean)
    faulted.graph.verify_schedule(faulted.finish_order)
    assert faulted.validate() == []
