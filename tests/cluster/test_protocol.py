"""Unit tests for the reliable cross-shard notification protocol.

The router is exercised standalone against a real simulated cluster
(engine + transfer engine + fault injector), without a scheduler: each
test sends notifications by hand, drains the event queue and checks the
protocol's promises — exactly-once ``on_clear``, retransmission of
dropped messages and dropped acks, duplicate suppression, epoch fencing
of crashed senders, crash recovery from the replicated graph, and the
stray-delivery guard that keeps the pending count non-negative.
"""

from __future__ import annotations

import pytest

from repro.cluster.protocol import (
    ClusterStats,
    NotificationRetryExceededError,
    NotificationRouter,
    ProtocolConfig,
    _Message,
)
from repro.resilience import FaultPlan, MessageFaultRule
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import cluster_machine

#: tight timeout so retransmissions happen in microseconds of sim time
CFG = ProtocolConfig(ack_timeout=0.001)

SUCC = 42


def make_router(plan=None, config=CFG, n_nodes=2, succ_node=1):
    machine = cluster_machine(
        n_nodes, smp_per_node=1, gpus_per_node=1, noise_cv=0.0, seed=0
    )
    rt = OmpSsRuntime(machine, "versioning", fault_plan=plan)
    stats = ClusterStats(n_nodes=n_nodes)
    router = NotificationRouter(rt, stats, config=config)
    router.host_of_node = dict(machine.cluster_layout().host_of_node)
    router.resolve_node = lambda uid: succ_node
    cleared: list[int] = []
    router.on_clear = cleared.append
    return rt, router, stats, cleared


class TestCleanDelivery:
    def test_on_clear_fires_once_after_all_notifications_land(self):
        rt, router, stats, cleared = make_router()
        router.send(0, 1, SUCC, "edge")
        router.send(0, 1, SUCC, "edge")
        assert router.pending(SUCC) == 2
        rt.engine.run()
        assert cleared == [SUCC]
        assert router.pending(SUCC) == 0
        assert stats.notifications_delivered == 2
        assert stats.acks_sent == 2
        assert stats.retransmits == 0
        assert not router._inflight

    def test_successor_reopens_on_a_fresh_notification(self):
        # the count legitimately reaches zero between two sends (first
        # predecessor's message lands before the second finishes): the
        # second send re-opens the successor and on_clear fires again
        rt, router, stats, cleared = make_router()
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        assert cleared == [SUCC, SUCC]
        assert stats.stray_deliveries == 0

    def test_local_resolution_delivers_without_wire_traffic(self):
        rt, router, stats, cleared = make_router(succ_node=0)
        router.send(0, 1, SUCC, "edge")
        assert cleared == [SUCC]  # synchronous: no wire round-trip
        assert stats.local_deliveries == 1
        assert rt.transfer_engine.messages_sent == 0
        assert len(rt.trace.by_category("notify-local")) == 1


class TestRetransmission:
    def test_dropped_notification_is_retransmitted(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="edge", at_messages=(1,)),
        ])
        rt, router, stats, cleared = make_router(plan)
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        assert cleared == [SUCC]
        assert stats.retransmits == 1
        assert stats.notifications_delivered == 1
        assert stats.dup_suppressed == 0
        assert rt.transfer_engine.messages_dropped == 1

    def test_dropped_ack_retransmits_and_suppresses_the_duplicate(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="ack:", at_messages=(1,)),
        ])
        rt, router, stats, cleared = make_router(plan)
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        assert cleared == [SUCC]           # exactly once despite the re-send
        assert stats.retransmits == 1
        assert stats.dup_suppressed == 1   # the re-received notification
        assert stats.notifications_delivered == 1
        assert stats.acks_sent == 2        # duplicates are re-acked

    def test_duplicated_wire_message_is_suppressed(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="edge", duplicate=1.0),
        ])
        rt, router, stats, cleared = make_router(plan)
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        assert cleared == [SUCC]
        assert stats.dup_suppressed >= 1
        assert stats.notifications_delivered == 1

    def test_budget_exhaustion_raises(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="edge", drop=1.0),
        ])
        rt, router, _, cleared = make_router(
            plan, config=ProtocolConfig(ack_timeout=0.001, max_retransmits=2)
        )
        router.send(0, 1, SUCC, "edge")
        with pytest.raises(NotificationRetryExceededError, match="budget 2"):
            rt.engine.run()
        assert cleared == []

    def test_retransmit_rerotes_to_the_successors_new_home(self):
        # the successor is evacuated onto the sender's node between the
        # (dropped) original transmission and the retransmit
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="edge", at_messages=(1,)),
        ])
        rt, router, stats, cleared = make_router(plan)
        router.send(0, 1, SUCC, "edge")
        router.resolve_node = lambda uid: 0
        rt.engine.run()
        assert cleared == [SUCC]
        assert stats.local_deliveries == 1

    def test_unreliable_ablation_wedges_on_a_drop(self):
        plan = FaultPlan(message_faults=[
            MessageFaultRule(label="edge", at_messages=(1,)),
        ])
        rt, router, stats, cleared = make_router(
            plan, config=ProtocolConfig(reliable=False, ack_timeout=0.001)
        )
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        assert cleared == []               # fire-and-forget: wedged forever
        assert router.pending(SUCC) == 1
        assert stats.retransmits == 0
        assert stats.acks_sent == 0


class TestCrashFencing:
    def test_sender_crash_recovers_inflight_notifications(self):
        rt, router, stats, cleared = make_router()
        router.send(0, 1, SUCC, "edge")
        router.node_down(0)  # crash before the wire delivery lands
        rt.engine.run()
        assert cleared == [SUCC]           # self-cleared by the survivor
        assert stats.notifications_recovered == 1
        assert stats.stale_discarded >= 1  # the dead epoch's delivery
        assert len(rt.trace.by_category("notify-recover")) == 1

    def test_recovery_is_dedup_checked_against_landed_deliveries(self):
        rt, router, stats, cleared = make_router()
        router.send(0, 1, SUCC, "edge")
        rt.engine.run(until=rt.engine.now + 1.0)  # delivery + ack land
        assert cleared == [SUCC]
        router.node_down(0)                # ack raced the crash? no: acked
        rt.engine.run()
        assert cleared == [SUCC]           # nothing recovered twice
        assert stats.notifications_recovered == 0

    def test_epoch_bump_fences_stale_acks(self):
        rt, router, stats, _ = make_router()
        router.send(0, 1, SUCC, "edge")
        router.node_down(0)
        rt.engine.run()
        # neither the stale delivery nor its ack settled the message
        assert stats.stale_discarded >= 1
        assert router.epoch(0) == 1


class TestStrayDeliveryGuard:
    def _stray(self, seq=77):
        return _Message(succ_uid=99, succ_seq=99, src_node=0, dst_node=1,
                        seq=seq, epoch=0, label="ghost")

    def test_stray_delivery_never_goes_negative_or_fires_on_clear(self):
        rt, router, stats, cleared = make_router()
        router._deliver_logical(self._stray())
        router._deliver_logical(self._stray(seq=78))
        assert cleared == []
        assert router.pending(99) == 0     # guarded: not -2
        assert stats.stray_deliveries == 2
        assert stats.notifications_delivered == 0
        assert len(router.diagnostics) == 2
        assert "stray notification" in router.diagnostics[0]

    def test_late_duplicate_after_clear_is_counted_not_reapplied(self):
        rt, router, stats, cleared = make_router()
        router.send(0, 1, SUCC, "edge")
        rt.engine.run()
        assert cleared == [SUCC]
        late = _Message(succ_uid=SUCC, succ_seq=1, src_node=0, dst_node=1,
                        seq=999, epoch=0, label="edge")
        router._deliver_logical(late)
        assert cleared == [SUCC]           # on_clear did not fire again
        assert stats.late_duplicates == 1
        assert stats.stray_deliveries == 0
