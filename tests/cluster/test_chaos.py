"""Cluster fault-tolerance acceptance tests.

A real-arithmetic tiled hybrid matmul over 4 nodes is the fixture
throughout: numerics are asserted against the numpy reference, so a
lost notification or a botched evacuation shows up as a wrong product,
not just a funny counter.

Covers the PR's acceptance criteria at tier-1-friendly scale:

* dead-node evacuation (workers die, whole node crashes, node rejoins)
  completes every task exactly once with a clean sanitizer report;
* 5% notification loss plus a mid-run node crash finishes with correct
  numerics within 1.5x the fault-free makespan, while the same plan
  with retransmissions disabled stalls;
* the same seed and fault plan reproduce byte-identical traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.matmul import MatmulApp
from repro.resilience import (
    FaultPlan,
    MessageFaultRule,
    NodeCrashRule,
    WorkerFailure,
)
from repro.sim.topology import cluster_machine

N_TILES = 5
TILE = 64
#: proportionate to the fixture's sub-millisecond makespans (the
#: default 50 ms ack timeout suits second-scale production runs)
PROTOCOL = {"ack_timeout": 0.0005, "detection_delay": 0.0005}


def run(plan=None, *, reliable=True, partition="block", real=True):
    machine = cluster_machine(
        4, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=7
    )
    app = MatmulApp(n_tiles=N_TILES, tile_size=TILE, variant="hyb", real=real)
    res = app.run(
        machine,
        "cluster",
        scheduler_options={
            "partition": partition,
            "steal": True,
            "protocol": dict(PROTOCOL, reliable=reliable),
        },
        fault_plan=plan,
    )
    return app, res


def assert_correct(app, res):
    assert res.run.tasks_completed == N_TILES**3
    np.testing.assert_allclose(app.assembled_C(), app.reference_result())
    assert res.run.validate() == []


@pytest.fixture(scope="module")
def baseline():
    app, res = run()
    assert_correct(app, res)
    return res


def crash_plan(baseline, *, loss=0.0, rejoin=False):
    return FaultPlan(
        seed=11,
        message_faults=(
            (MessageFaultRule(drop=loss),) if loss > 0 else ()
        ),
        node_crashes=(
            NodeCrashRule(
                node=3,
                at_time=0.4 * baseline.makespan,
                rejoin_after=0.2 * baseline.makespan if rejoin else None,
            ),
        ),
    )


class TestDeadNodeEvacuation:
    """Satellite: the pre-existing worker-death evacuation, pinned down."""

    WF_PLAN = FaultPlan(worker_failures=tuple(
        WorkerFailure(w, 0.0002 + i * 1e-6)
        for i, w in enumerate(("n2smp0", "n2smp1", "n2gpu0"))
    ))

    def test_losing_every_worker_of_a_node_evacuates_its_shard(self):
        app, res = run(self.WF_PLAN)
        assert_correct(app, res)
        stats = res.run.scheduler_state.stats
        assert stats.evacuations >= 1
        assert stats.evacuated_tasks > 0
        # exactly once: completion counts tasks, not re-executions
        assert len(res.run.finish_order) == N_TILES**3
        assert len(set(res.run.finish_order)) == N_TILES**3

    def test_evacuated_rerun_is_byte_identical(self):
        # real=False: real arrays label regions by object address, which
        # legitimately differs between runs; the simulated app's labels
        # are deterministic, which is what the trace contract covers
        _, a = run(self.WF_PLAN, real=False)
        _, b = run(self.WF_PLAN, real=False)
        assert a.makespan == b.makespan
        assert repr(a.run.trace.sorted()) == repr(b.run.trace.sorted())

    def test_whole_node_crash_completes_and_validates(self, baseline):
        app, res = run(crash_plan(baseline))
        assert_correct(app, res)
        r = res.run.resilience
        assert r.node_crashes == 1
        assert res.run.scheduler_state.stats.evacuated_tasks > 0
        assert r.recompute_tasks > 0  # lost regions rebuilt from lineage

    def test_crashed_node_rejoins_with_a_fenced_epoch(self, baseline):
        app, res = run(crash_plan(baseline, rejoin=True))
        assert_correct(app, res)
        r = res.run.resilience
        assert r.node_crashes == 1 and r.node_rejoins == 1
        assert res.run.trace.by_category("node-up")
        assert res.run.scheduler_state.router.epoch(3) == 1


class TestChaosAcceptance:
    def test_loss_plus_crash_completes_within_bounded_slowdown(self, baseline):
        app, res = run(crash_plan(baseline, loss=0.05))
        assert_correct(app, res)
        assert res.makespan <= 1.5 * baseline.makespan, (
            res.makespan / baseline.makespan
        )
        assert res.run.resilience.messages_dropped > 0

    def test_chaos_run_is_byte_identical(self, baseline):
        plan = crash_plan(baseline, loss=0.05)
        _, a = run(plan, real=False)
        _, b = run(plan, real=False)
        assert a.makespan == b.makespan
        assert repr(a.run.trace.sorted()) == repr(b.run.trace.sorted())

    def test_retransmits_disabled_stalls_under_loss(self):
        # fire-and-forget ablation: the first dropped notification
        # wedges its successor and the run deadlocks instead of
        # silently computing garbage
        plan = FaultPlan(message_faults=(MessageFaultRule(at_messages=(1,)),))
        with pytest.raises(RuntimeError, match="deadlock"):
            run(plan, reliable=False)
