"""Unit tests for the graph-partitioning policies."""

import pytest

from repro.cluster.partition import (
    PARTITION_POLICIES,
    AffinityPartition,
    BlockPartition,
    HashPartition,
    make_partitioner,
)


class _Region:
    def __init__(self, key, nbytes):
        self.key = key
        self.nbytes = nbytes


class _Access:
    def __init__(self, key, nbytes, *, writes=False, reads=True):
        self.region = _Region(key, nbytes)
        self.writes = writes
        self.reads = reads


class _Task:
    """Just enough of a TaskInstance for the partitioners."""

    def __init__(self, *accesses):
        self.accesses = list(accesses)


def test_registry_names_round_trip():
    for name in PARTITION_POLICIES:
        p = make_partitioner(name, 4)
        assert p.name == name
        assert p.n_nodes == 4


def test_unknown_policy_raises():
    with pytest.raises(ValueError, match="unknown partition policy"):
        make_partitioner("zigzag", 2)


def test_zero_nodes_raises():
    with pytest.raises(ValueError):
        HashPartition(0)


def test_block_size_must_be_positive():
    with pytest.raises(ValueError):
        BlockPartition(2, block_size=0)


class TestHashPartition:
    def test_stays_within_allowed(self):
        p = HashPartition(4)
        allowed = [1, 3]
        for seq in range(1, 200):
            assert p.assign(_Task(), seq, allowed, [0, 0, 0, 0]) in allowed

    def test_deterministic(self):
        a = HashPartition(4)
        b = HashPartition(4)
        allowed = [0, 1, 2, 3]
        picks_a = [a.assign(_Task(), s, allowed, [0] * 4) for s in range(1, 100)]
        picks_b = [b.assign(_Task(), s, allowed, [0] * 4) for s in range(1, 100)]
        assert picks_a == picks_b

    def test_roughly_balanced(self):
        p = HashPartition(4)
        allowed = [0, 1, 2, 3]
        counts = {n: 0 for n in allowed}
        for seq in range(1, 401):
            counts[p.assign(_Task(), seq, allowed, [0] * 4)] += 1
        # multiplicative hashing over 400 seqs: no node starves or hogs
        assert min(counts.values()) > 50
        assert max(counts.values()) < 150


class TestBlockPartition:
    def test_contiguous_blocks_round_robin(self):
        p = BlockPartition(3, block_size=4)
        allowed = [0, 1, 2]
        picks = [p.assign(_Task(), s, allowed, [0] * 3) for s in range(1, 25)]
        # seq is 1-based: four per node, wrapping around the allowed list
        assert picks == [0] * 4 + [1] * 4 + [2] * 4 + [0] * 4 + [1] * 4 + [2] * 4

    def test_respects_allowed_subset(self):
        p = BlockPartition(4, block_size=2)
        allowed = [1, 3]
        picks = [p.assign(_Task(), s, allowed, [0] * 4) for s in range(1, 9)]
        assert picks == [1, 1, 3, 3, 1, 1, 3, 3]


class TestAffinityPartition:
    def test_write_claims_ownership_and_attracts_readers(self):
        p = AffinityPartition(2)
        producer = _Task(_Access("x", 100, writes=True))
        node = p.assign(producer, 1, [0, 1], [0, 0])
        p.note_assigned(producer, node)
        consumer = _Task(_Access("x", 100))
        assert p.assign(consumer, 2, [0, 1], [1, 0]) == node

    def test_largest_owned_bytes_wins(self):
        p = AffinityPartition(2)
        p.note_assigned(_Task(_Access("big", 1000, writes=True)), 1)
        p.note_assigned(_Task(_Access("small", 10, writes=True)), 0)
        t = _Task(_Access("big", 1000), _Access("small", 10))
        assert p.assign(t, 3, [0, 1], [0, 0]) == 1

    def test_ownerless_task_goes_to_least_loaded(self):
        p = AffinityPartition(3)
        t = _Task(_Access("fresh", 64))
        assert p.assign(t, 1, [0, 1, 2], [5, 2, 9]) == 1

    def test_load_tie_breaks_to_lower_node(self):
        p = AffinityPartition(3)
        assert p.assign(_Task(), 1, [0, 1, 2], [3, 3, 3]) == 0

    def test_owner_outside_allowed_is_ignored(self):
        p = AffinityPartition(3)
        p.note_assigned(_Task(_Access("x", 100, writes=True)), 2)
        # node 2 owns "x" but cannot run this task: fall back to load
        assert p.assign(_Task(_Access("x", 100)), 2, [0, 1], [4, 1]) == 1
