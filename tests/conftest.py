"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.sim.perfmodel import AffineBytesCostModel, FixedCostModel
from repro.sim.topology import minotauro_node

MB = 1024**2


def make_machine(n_smp=2, n_gpus=1, noise=0.0, seed=0):
    """A small deterministic MinoTauro-like node."""
    return minotauro_node(n_smp, n_gpus, noise_cv=noise, seed=seed)


def make_two_version_task(
    registry=None,
    *,
    name="work",
    smp_cost=0.010,
    gpu_cost=0.001,
    machine=None,
):
    """A task with an SMP main version and a CUDA alternative.

    Returns ``(task_function, register)`` where ``register(machine)``
    installs the fixed cost models.
    """
    registry = {} if registry is None else registry

    @task(inputs=["x"], outputs=["y"], device="smp", name=f"{name}_smp",
          registry=registry)
    def work(x, y):
        pass

    @task(inputs=["x"], outputs=["y"], device="cuda", implements=f"{name}_smp",
          name=f"{name}_gpu", registry=registry)
    def work_gpu(x, y):
        pass

    def register(machine):
        if machine.devices_of_kind("smp"):
            machine.register_kernel_for_kind("smp", f"{name}_smp",
                                             FixedCostModel(smp_cost))
        if machine.devices_of_kind("cuda"):
            machine.register_kernel_for_kind("cuda", f"{name}_gpu",
                                             FixedCostModel(gpu_cost))

    if machine is not None:
        register(machine)
    return work, register


def region(key, nbytes=MB, label=""):
    return DataRegion(key, nbytes, label=label or str(key))


def run_tasks(machine, scheduler, calls, config=None):
    """Run a list of ``(task_fn, *args)`` calls and return the RunResult."""
    rt = OmpSsRuntime(machine, scheduler, config=config)
    with rt:
        for fn, *args in calls:
            fn(*args)
    return rt.result()


@pytest.fixture
def small_machine():
    return make_machine(2, 1)


@pytest.fixture
def registry():
    return {}
