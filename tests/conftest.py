"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.apps.cholesky import CholeskyApp
from repro.apps.matmul import MatmulApp
from repro.apps.pbpi import PBPIApp
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.sim.perfmodel import AffineBytesCostModel, FixedCostModel
from repro.sim.topology import minotauro_node

MB = 1024**2

#: Small app instances shared by the scheduler-compare and conformance
#: suites; each factory takes the variant ("smp" / "gpu" / "hyb").
SMALL_APPS = {
    "matmul": lambda variant: MatmulApp(n_tiles=3, variant=variant),
    "cholesky": lambda variant: CholeskyApp(n_blocks=4, variant=variant),
    "pbpi": lambda variant: PBPIApp(generations=3, n_blocks=4, variant=variant),
}

#: Expected completed-task count of each SMALL_APPS instance.
SMALL_APP_TASKS = {
    "matmul": 27,
    "cholesky": CholeskyApp(n_blocks=4, variant="gpu").task_count(),
    "pbpi": 3 * (2 * 4 + 1),
}


def run_app(app, machine, scheduler, *, scheduler_options=None, config=None):
    """Register cost models, run ``app`` on ``machine``, return RunResult."""
    app.register_cost_models(machine)
    rt = OmpSsRuntime(
        machine, scheduler, config=config, scheduler_options=scheduler_options
    )
    with rt:
        app.master(rt)
    rt.directory.check_invariants()
    return rt.result()


def chain_calls(work, n=8, nbytes=MB, tag="chain"):
    """``n`` tasks in a straight RAW chain: t_i reads r_i, writes r_{i+1}."""
    regions = [region((tag, i), nbytes) for i in range(n + 1)]
    return [(work, regions[i], regions[i + 1]) for i in range(n)]


def fork_join_calls(work, width=4, nbytes=MB, tag="fj"):
    """Fork-join over a 2-parameter task: ``width`` parallel branches
    read the source, then a WAW-serialised join drains every branch
    into the sink region (2*width tasks total)."""
    src = region((tag, "src"), nbytes)
    mids = [region((tag, i), nbytes) for i in range(width)]
    sink = region((tag, "sink"), nbytes)
    calls = [(work, src, m) for m in mids]
    calls += [(work, m, sink) for m in mids]
    return calls


def make_machine(n_smp=2, n_gpus=1, noise=0.0, seed=0):
    """A small deterministic MinoTauro-like node."""
    return minotauro_node(n_smp, n_gpus, noise_cv=noise, seed=seed)


def make_two_version_task(
    registry=None,
    *,
    name="work",
    smp_cost=0.010,
    gpu_cost=0.001,
    machine=None,
):
    """A task with an SMP main version and a CUDA alternative.

    Returns ``(task_function, register)`` where ``register(machine)``
    installs the fixed cost models.
    """
    registry = {} if registry is None else registry

    @task(inputs=["x"], outputs=["y"], device="smp", name=f"{name}_smp",
          registry=registry)
    def work(x, y):
        pass

    @task(inputs=["x"], outputs=["y"], device="cuda", implements=f"{name}_smp",
          name=f"{name}_gpu", registry=registry)
    def work_gpu(x, y):
        pass

    def register(machine):
        if machine.devices_of_kind("smp"):
            machine.register_kernel_for_kind("smp", f"{name}_smp",
                                             FixedCostModel(smp_cost))
        if machine.devices_of_kind("cuda"):
            machine.register_kernel_for_kind("cuda", f"{name}_gpu",
                                             FixedCostModel(gpu_cost))

    if machine is not None:
        register(machine)
    return work, register


def region(key, nbytes=MB, label=""):
    return DataRegion(key, nbytes, label=label or str(key))


def run_tasks(machine, scheduler, calls, config=None, scheduler_options=None):
    """Run a list of ``(task_fn, *args)`` calls and return the RunResult."""
    rt = OmpSsRuntime(
        machine, scheduler, config=config, scheduler_options=scheduler_options
    )
    with rt:
        for fn, *args in calls:
            fn(*args)
    return rt.result()


@pytest.fixture
def small_machine():
    return make_machine(2, 1)


@pytest.fixture
def registry():
    return {}
