"""Figure 9 — Cholesky factorization performance.

potrf-smp (CPU-only potrf), potrf-gpu under affinity and dependency-
aware, and potrf-hyb under versioning, at the paper's scale (16x16 grid
of 2048^2 single-precision blocks, 816 tasks).  Shape: potrf-smp is the
slowest in all cases; potrf-hyb-ver pays a visible learning cost (few
potrf instances) but stays within a modest factor of potrf-gpu.
"""

from repro.analysis.experiments import fig9_cholesky_performance
from repro.analysis.report import format_table

from figutils import emit, run_once


def test_fig9_cholesky_performance(benchmark):
    rows = run_once(
        benchmark, fig9_cholesky_performance, (2, 4, 8, 12), (2,), n_blocks=16
    )
    table = format_table(
        ["smp", "gpus", "potrf-smp-dep", "potrf-gpu-aff", "potrf-gpu-dep",
         "potrf-hyb-ver"],
        [[r["smp"], r["gpus"], r["potrf-smp-dep"], r["potrf-gpu-aff"],
          r["potrf-gpu-dep"], r["potrf-hyb-ver"]] for r in rows],
        title="Figure 9 — Cholesky performance (GFLOP/s, higher is better)",
    )
    emit("fig9_cholesky_perf", table)

    for r in rows:
        assert r["potrf-smp-dep"] < r["potrf-gpu-aff"]
        assert r["potrf-smp-dep"] < r["potrf-gpu-dep"]
        assert r["potrf-smp-dep"] < r["potrf-hyb-ver"]
        assert r["potrf-hyb-ver"] > 0.6 * r["potrf-gpu-dep"]
