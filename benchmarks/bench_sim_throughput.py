"""Simulator throughput benchmark + CI perf-smoke gate.

Measures simulated **events/sec** and **tasks/sec** for a fixed matrix
of app × machine × scheduler workloads plus a synthetic event-core
microbenchmark, and writes the numbers as JSON to
``benchmarks/results/sim_throughput.json``.

The committed baseline (``benchmarks/sim_throughput_baseline.json``)
makes throughput a CI-gated quantity: ``--check`` re-measures and fails
when any workload's events/sec drops more than ``--tolerance`` (default
30%) below baseline.  Because CI runners and dev boxes differ in raw
speed, both the baseline and every check run record a *calibration
score* — a fixed pure-Python loop timed on the same interpreter — and
the regression ratio compares calibrated rates::

    ratio = (events_per_sec / calib) / (baseline_events_per_sec / baseline_calib)

Usage::

    python benchmarks/bench_sim_throughput.py                   # measure + JSON
    python benchmarks/bench_sim_throughput.py --check           # CI perf smoke
    python benchmarks/bench_sim_throughput.py --update-baseline # re-pin baseline
    REPRO_SIM_BACKEND=compiled python benchmarks/bench_sim_throughput.py

The baseline is per-backend: a check run only gates workloads whose
baseline entry was recorded under the same ``REPRO_SIM_BACKEND``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

HERE = Path(__file__).parent
BASELINE_PATH = HERE / "sim_throughput_baseline.json"
RESULTS_PATH = HERE / "results" / "sim_throughput.json"

REPEATS = 3  # best-of; simulations are deterministic, timing is not


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _run_matmul16():
    """The acceptance workload: 16-node sharded matmul (affinity+steal)."""
    from repro.apps.matmul import MatmulApp
    from repro.runtime.runtime import OmpSsRuntime
    from repro.sim.topology import cluster_machine

    app = MatmulApp(n_tiles=10, tile_size=32, variant="hyb")
    machine = cluster_machine(16, smp_per_node=2, gpus_per_node=1,
                              noise_cv=0.02, seed=7)
    app.register_cost_models(machine)
    rt = OmpSsRuntime(machine, "cluster",
                      scheduler_options={"partition": "affinity", "steal": True})
    with rt:
        app.master(rt)
    return rt.engine.events_processed, rt.result().tasks_completed


def _run_matmul_node():
    """Single-node versioning matmul (the paper's bread-and-butter run)."""
    from repro.apps.matmul import MatmulApp
    from repro.runtime.runtime import OmpSsRuntime
    from repro.sim.topology import minotauro_node

    app = MatmulApp(n_tiles=8, tile_size=64, variant="hyb")
    machine = minotauro_node(4, 2, noise_cv=0.02, seed=3)
    app.register_cost_models(machine)
    rt = OmpSsRuntime(machine, "versioning")
    with rt:
        app.master(rt)
    return rt.engine.events_processed, rt.result().tasks_completed


def _run_cholesky_node():
    from repro.apps.cholesky import CholeskyApp
    from repro.runtime.runtime import OmpSsRuntime
    from repro.sim.topology import minotauro_node

    app = CholeskyApp(n_blocks=8, block_size=64, variant="hyb")
    machine = minotauro_node(4, 2, noise_cv=0.02, seed=3)
    app.register_cost_models(machine)
    rt = OmpSsRuntime(machine, "versioning")
    with rt:
        app.master(rt)
    return rt.engine.events_processed, rt.result().tasks_completed


def _run_evcore_synthetic():
    """Raw event-store push+pop with a ~64-event resident window.

    This is the microbenchmark the compiled backend accelerates most —
    it isolates the event core from scheduler callback cost.
    """
    from repro.sim.backend import event_factory, heap_factory
    from repro.sim.engine import EventKind

    heap_cls, event_cls = heap_factory(), event_factory()
    n = 100_000
    h = heap_cls()
    kind = EventKind.GENERIC
    for i in range(n):
        h.push(event_cls((i % 97) * 0.5 + i * 1e-9, i, kind, None))
        if i >= 64:
            h.pop()
    while h.pop() is not None:
        pass
    return n, 0


WORKLOADS = {
    "matmul16-sharded": _run_matmul16,
    "matmul8-node-versioning": _run_matmul_node,
    "cholesky8-node-versioning": _run_cholesky_node,
    "evcore-synthetic": _run_evcore_synthetic,
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def calibration_score() -> float:
    """Interpreter-speed score (iterations/sec of a fixed pure loop).

    Used to normalize baselines recorded on a different machine; the
    loop mixes dict, float and attribute work roughly like the
    simulator's hot path.
    """

    class Box:
        __slots__ = ("v",)

        def __init__(self, v):
            self.v = v

    def spin(n: int) -> float:
        d: dict[int, float] = {}
        b = Box(0.0)
        acc = 0.0
        for i in range(n):
            d[i & 1023] = acc
            acc = acc + (i % 7) * 0.5
            b.v = acc
            acc = acc if acc < 1e9 else d.get(i & 1023, 0.0)
        return acc

    n = 200_000
    best = float("inf")
    for _ in range(3):
        t0 = time.process_time()
        spin(n)
        best = min(best, time.process_time() - t0)
    return n / best


def measure(workloads=None, repeats: int = REPEATS) -> dict:
    from repro.sim.backend import resolve

    backend = resolve()
    rows = {}
    for name, fn in WORKLOADS.items():
        if workloads and name not in workloads:
            continue
        best = None
        events = tasks = 0
        for _ in range(repeats):
            t0 = time.process_time()
            events, tasks = fn()
            dt = time.process_time() - t0
            if best is None or dt < best:
                best = dt
        assert best is not None and best > 0
        rows[name] = {
            "backend": backend,
            "events": events,
            "tasks": tasks,
            "best_cpu_s": round(best, 6),
            "events_per_sec": round(events / best, 1),
            "tasks_per_sec": round(tasks / best, 1) if tasks else 0.0,
        }
    return rows


def payload(rows: dict) -> dict:
    from repro.sim.backend import resolve

    return {
        "backend": resolve(),
        "python": ".".join(map(str, sys.version_info[:3])),
        "calibration_score": round(calibration_score(), 1),
        "workloads": rows,
    }


# ----------------------------------------------------------------------
# Baseline gate
# ----------------------------------------------------------------------
def check(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of failure strings (empty = pass)."""
    failures = []
    cur_calib = current["calibration_score"]
    base_calib = baseline["calibration_score"]
    backend = current["backend"]
    if baseline.get("backend", "pure") != backend:
        return [
            f"baseline was recorded for backend {baseline.get('backend')!r}; "
            f"current backend is {backend!r} (record one with --update-baseline)"
        ]
    for name, base_row in baseline["workloads"].items():
        cur_row = current["workloads"].get(name)
        if cur_row is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        ratio = (cur_row["events_per_sec"] / cur_calib) / (
            base_row["events_per_sec"] / base_calib
        )
        verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(
            f"  {name:28s} {cur_row['events_per_sec']:>12,.0f} ev/s"
            f"  calibrated x{ratio:.2f} vs baseline  [{verdict}]"
        )
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{name}: calibrated events/sec fell to {ratio:.2f}x of "
                f"baseline (tolerance {1.0 - tolerance:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="fail if events/sec regressed vs the committed baseline")
    ap.add_argument("--update-baseline", action="store_true",
                    help="re-measure and overwrite the committed baseline")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop vs baseline (default 0.30)")
    ap.add_argument("--workload", action="append", default=None,
                    help="restrict to the named workload(s)")
    args = ap.parse_args(argv)

    rows = measure(args.workload)
    out = payload(rows)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"[{out['backend']} backend, calibration {out['calibration_score']:,.0f}]")
    for name, row in rows.items():
        line = f"  {name:28s} {row['events_per_sec']:>12,.0f} ev/s"
        if row["tasks_per_sec"]:
            line += f"  {row['tasks_per_sec']:>10,.0f} tasks/s"
        print(line)
    print(f"[written to {RESULTS_PATH.relative_to(HERE.parent)}]")

    if args.update_baseline:
        BASELINE_PATH.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
        print(f"[baseline updated: {BASELINE_PATH.relative_to(HERE.parent)}]")
        return 0

    if args.check:
        if not BASELINE_PATH.exists():
            print("no committed baseline; run with --update-baseline first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        print("perf smoke vs committed baseline:")
        failures = check(out, baseline, args.tolerance)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print("perf smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
