"""Table I — the TaskVersionSet data structure.

Runs a hybrid matmul with two different tile sizes under the versioning
scheduler and renders the scheduler's live profile table in the layout
of the paper's Table I: one TaskVersionSet, two DataSetSize groups, a
<VersionId, ExecTime, #Exec> row per implementation.
"""

from repro.analysis.experiments import table1_taskversionset

from figutils import emit, run_once


def test_table1_taskversionset(benchmark):
    table, rendered = run_once(benchmark, table1_taskversionset)
    emit("table1_taskversionset", "Table I — TaskVersionSet structure\n" + rendered)

    vset = table.version_set("matmul_tile_cublas")
    assert len(vset) == 2  # two data-set-size groups, like task1 in Table I
    for grp in vset.groups():
        executed = [p for p in grp.versions() if p.executions > 0]
        assert len(executed) == 3  # three implementations profiled per group
        assert all(p.mean_time is not None for p in executed)
