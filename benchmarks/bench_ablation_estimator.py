"""Ablation — arithmetic mean vs weighted mean (EWMA), §IV-B footnote 3.

"Optionally, we could try computing a weighted mean to give more weight
to recent execution information and less weight to past information, but
we have not tried this option yet."  We try it: a workload whose GPU
version *degrades* mid-run (modelled via a size-keyed table: late tasks
use a second data-set size whose GPU cost is high).  To expose the
difference within one size group we instead inject a phase change
through noise-free table models keyed by the same size but varying in
time via a stateful cost model.
"""

from repro.analysis.report import format_table
from repro.core.versioning import VersioningScheduler
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perturb import PhaseShiftCostModel
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

MB = 1024**2
N_TASKS = 300


def run_with(estimator, options=None):
    registry = {}

    @task(inputs=["x"], inouts=["acc"], device="smp", name="w_smp",
          registry=registry)
    def w(x, acc):
        pass

    @task(inputs=["x"], inouts=["acc"], device="cuda", implements="w_smp",
          name="w_gpu", registry=registry)
    def w_gpu(x, acc):
        pass

    machine = minotauro_node(2, 1, noise_cv=0.0, seed=0)
    # SMP steady at 4 ms; GPU starts at 1 ms, degrades to 20 ms mid-run
    from repro.sim.perfmodel import FixedCostModel

    machine.register_kernel_for_kind("smp", "w_smp", FixedCostModel(0.004))
    machine.register_kernel_for_kind(
        "cuda",
        "w_gpu",
        PhaseShiftCostModel([(FixedCostModel(0.001), 80), (FixedCostModel(0.020), 0)]),
    )
    sched = VersioningScheduler(estimator=estimator, estimator_options=options)
    rt = OmpSsRuntime(machine, sched)
    # dependence chains (inout on per-chain accumulators) make tasks
    # become ready over time, so dispatch decisions keep happening after
    # the degradation is observable — an all-ready burst would be fully
    # dispatched before any feedback arrives
    n_chains = 4
    accs = [DataRegion(("acc", c), MB) for c in range(n_chains)]
    with rt:
        for i in range(N_TASKS):
            w(DataRegion(("x", i), MB), accs[i % n_chains])
    res = rt.result()
    counts = res.version_counts["w_smp"]
    return {
        "makespan": res.makespan,
        "gpu_runs": counts.get("w_gpu", 0),
        "smp_runs": counts.get("w_smp", 0),
    }


def sweep():
    return {
        "mean": run_with("mean"),
        "ewma(0.3)": run_with("ewma", {"alpha": 0.3}),
    }


def test_ablation_estimator(benchmark):
    out = run_once(benchmark, sweep)
    table = format_table(
        ["estimator", "makespan (s)", "gpu runs", "smp runs"],
        [[k, v["makespan"], v["gpu_runs"], v["smp_runs"]] for k, v in out.items()],
        title="Ablation — estimator under mid-run GPU degradation",
        floatfmt="{:.4f}",
    )
    emit("ablation_estimator", table)

    # the weighted mean reacts to the degradation and shifts more work to
    # the (now faster) SMP version, finishing sooner
    assert out["ewma(0.3)"]["smp_runs"] > out["mean"]["smp_runs"]
    assert out["ewma(0.3)"]["makespan"] < out["mean"]["makespan"]
