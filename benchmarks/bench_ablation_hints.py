"""Ablation — external hints warm-start (§VII).

"The scheduler should also offer the possibility to receive external
hints for tasks versions: for example, read an XML file ... written by
OmpSs runtime from a previous application's execution."  We measure the
cold run, snapshot its profile table to XML, and rerun warm: the warm
run skips the learning phase entirely and never executes the slow
hand-coded CUDA or SMP versions beyond what the earliest-executor rule
chooses on merit.
"""

from pathlib import Path

from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.core.hints import load_hints, save_hints
from repro.core.versioning import VersioningScheduler
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import minotauro_node

from figutils import RESULTS_DIR, emit, run_once


def run_matmul(sched):
    app = MatmulApp(n_tiles=12, variant="hyb")
    machine = minotauro_node(8, 2, noise_cv=0.02, seed=4)
    app.register_cost_models(machine)
    rt = OmpSsRuntime(machine, sched)
    with rt:
        app.master(rt)
    res = rt.result()
    return res.gflops(app.total_flops()), res


def sweep():
    cold_sched = VersioningScheduler()
    cold_gflops, cold_res = run_matmul(cold_sched)

    RESULTS_DIR.mkdir(exist_ok=True)
    hints_path = RESULTS_DIR / "matmul_profile_hints.xml"
    save_hints(cold_sched.table, hints_path)

    warm_sched = VersioningScheduler(hints=load_hints(hints_path))
    warm_gflops, warm_res = run_matmul(warm_sched)

    return {
        "cold": {
            "gflops": cold_gflops,
            "learning": cold_sched.learning_dispatches,
            "cuda_runs": cold_res.version_counts["matmul_tile_cublas"].get(
                "matmul_tile_cuda", 0
            ),
        },
        "warm": {
            "gflops": warm_gflops,
            "learning": warm_sched.learning_dispatches,
            "cuda_runs": warm_res.version_counts["matmul_tile_cublas"].get(
                "matmul_tile_cuda", 0
            ),
        },
    }


def test_ablation_hints(benchmark):
    out = run_once(benchmark, sweep)
    table = format_table(
        ["run", "GFLOP/s", "learning dispatches", "hand-CUDA runs"],
        [[k, v["gflops"], v["learning"], v["cuda_runs"]] for k, v in out.items()],
        title="Ablation — XML hints warm-start (matmul-hyb, 8 SMP + 2 GPU)",
    )
    emit("ablation_hints", table)

    assert out["warm"]["learning"] == 0
    assert out["cold"]["learning"] > 0
    # warm run never wastes a dispatch on the slower hand-coded kernel
    assert out["warm"]["cuda_runs"] == 0
    assert out["warm"]["gflops"] >= out["cold"]["gflops"] * 0.98
