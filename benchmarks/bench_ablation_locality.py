"""Ablation — locality-aware versioning (§VII).

"The amount of data transfers is not optimal because data locality is
not taken into account.  We are going to provide the versioning
scheduler with data locality information."  On a workload of tasks that
repeatedly re-read a few large inputs across two GPUs, the plain
scheduler balances on busy time alone and replicates every input on both
devices; the locality-aware variant keeps each input's consumers where
its copy lives.
"""

from repro.analysis.report import format_table
from repro.core.locality import LocalityVersioningScheduler
from repro.core.versioning import VersioningScheduler
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

MB = 1024**2
N_INPUTS = 4
N_TASKS = 160


def run_with(scheduler):
    registry = {}

    @task(inputs=["x"], outputs=["y"], device="cuda", name="consume",
          registry=registry)
    def consume(x, y):
        pass

    machine = minotauro_node(1, 2, noise_cv=0.0, seed=0)
    machine.register_kernel_for_kind("cuda", "consume", FixedCostModel(0.004))
    xs = [DataRegion(("x", i), 64 * MB) for i in range(N_INPUTS)]
    rt = OmpSsRuntime(machine, scheduler)
    with rt:
        for i in range(N_TASKS):
            consume(xs[i % N_INPUTS], DataRegion(("y", i), MB))
    res = rt.result()
    return {
        "input_tx_gb": res.transfer_stats.input_tx / 1024**3,
        "makespan": res.makespan,
    }


def sweep():
    return {
        "versioning": run_with(VersioningScheduler()),
        "versioning-locality": run_with(LocalityVersioningScheduler()),
    }


def test_ablation_locality(benchmark):
    out = run_once(benchmark, sweep)
    table = format_table(
        ["scheduler", "Input Tx (GB)", "makespan (s)"],
        [[k, v["input_tx_gb"], v["makespan"]] for k, v in out.items()],
        title="Ablation — locality-aware placement (4 inputs re-read on 2 GPUs)",
        floatfmt="{:.4f}",
    )
    emit("ablation_locality", table)

    assert (out["versioning-locality"]["input_tx_gb"]
            <= out["versioning"]["input_tx_gb"])
    # locality never costs more than a small slack in makespan
    assert (out["versioning-locality"]["makespan"]
            <= out["versioning"]["makespan"] * 1.10)
