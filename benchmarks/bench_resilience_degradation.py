"""Resilience — makespan degradation when a GPU dies mid-run.

The paper's versioning scheduler keeps one profile table per
(task, size) group and re-evaluates the earliest executor at every
dispatch (§IV-B).  That machinery doubles as a graceful-degradation
mechanism: when one of the two GPUs fails permanently mid-run, its
queued and in-flight tasks are re-dispatched and subsequent placement
decisions simply stop considering the dead worker.  This bench measures
the makespan degradation of the versioning scheduler against the naive
breadth-first policy for the same fault plan, and verifies that every
task still produces numerically correct results.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.resilience import FaultPlan, WorkerFailure
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FixedCostModel
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

N_TASKS = 240
N_ELEMS = 512
SMP_COST = 0.004
GPU_COST = 0.001
#: simulated time at which gpu1 fails — mid-run for both schedulers
DEATH_AT = 0.04


def build(registry):
    @task(inputs=["x"], outputs=["y"], device="smp", name="scale_smp",
          registry=registry)
    def scale(x, y):
        y[:] = 2.0 * x + 1.0

    @task(inputs=["x"], outputs=["y"], device="cuda", implements="scale_smp",
          name="scale_gpu", registry=registry)
    def scale_gpu(x, y):
        y[:] = 2.0 * x + 1.0

    return scale


def run(scheduler, plan=None):
    machine = minotauro_node(4, 2, noise_cv=0.0, seed=0)
    machine.register_kernel_for_kind("smp", "scale_smp", FixedCostModel(SMP_COST))
    machine.register_kernel_for_kind("cuda", "scale_gpu", FixedCostModel(GPU_COST))
    scale = build(registry := {})
    xs = [np.full(N_ELEMS, float(i)) for i in range(N_TASKS)]
    ys = [np.zeros(N_ELEMS) for _ in range(N_TASKS)]
    rt = OmpSsRuntime(machine, scheduler, fault_plan=plan)
    with rt:
        for x, y in zip(xs, ys):
            scale(x, y)
    res = rt.result()
    assert res.tasks_completed == N_TASKS
    for x, y in zip(xs, ys):
        np.testing.assert_allclose(y, 2.0 * x + 1.0)
    return res


def sweep():
    plan = FaultPlan(worker_failures=[WorkerFailure("gpu1", DEATH_AT)])
    out = {}
    for sched in ("versioning", "bf"):
        base = run(sched)
        faulted = run(sched, plan)
        assert faulted.resilience.worker_failures == 1
        out[sched] = {
            "baseline": base.makespan,
            "faulted": faulted.makespan,
            "degradation": faulted.makespan / base.makespan - 1.0,
            "redispatched": faulted.resilience.tasks_redispatched,
            "stats": faulted.resilience.as_dict(),
        }
    return out


def test_resilience_degradation(benchmark):
    out = run_once(benchmark, sweep)
    table = format_table(
        ["scheduler", "baseline (s)", "gpu1 dies (s)", "degradation %",
         "redispatched"],
        [
            [k, v["baseline"], v["faulted"], 100.0 * v["degradation"],
             v["redispatched"]]
            for k, v in out.items()
        ],
        title="Makespan degradation — one of two GPUs fails at "
              f"t={DEATH_AT:.3f}s",
        floatfmt="{:.4f}",
    )
    emit("resilience_degradation", table)

    for sched, v in out.items():
        # losing one of two GPUs must cost something, but the run
        # completes and the slowdown stays bounded
        assert v["faulted"] >= v["baseline"]
        assert v["faulted"] <= v["baseline"] * 3.0, (sched, v)
