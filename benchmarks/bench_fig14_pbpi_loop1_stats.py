"""Figure 14 — PBPI loop-1 task statistics (versioning scheduler).

Shape: "For the first loop, the versioning scheduler decides to send it
most of the times to the GPU" — the GPU version dominates, the SMP share
is the λ learning runs plus occasional load-spill.
"""

from repro.analysis.experiments import fig14_pbpi_loop1_stats
from repro.analysis.report import stacked_percentages

from figutils import emit, run_once


def test_fig14_pbpi_loop1_stats(benchmark):
    rows = run_once(
        benchmark, fig14_pbpi_loop1_stats, (2, 4, 8, 12), (2,), generations=40
    )
    series = {
        f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("GPU", "SMP")}
        for r in rows
    }
    chart = stacked_percentages(
        series,
        title="Figure 14 — PBPI loop-1 versions run (versioning scheduler)",
        order=("GPU", "SMP"),
    )
    emit("fig14_pbpi_loop1_stats", chart)

    for r in rows:
        assert r["GPU"] > 85.0
        assert r["SMP"] > 0.0  # learning runs are visible
