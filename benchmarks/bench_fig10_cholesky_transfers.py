"""Figure 10 — data transferred for Cholesky.

Shape: the SMP-potrf configuration moves the diagonal blocks back and
forth every iteration (more Input Tx and more total traffic than the
GPU-only runs); the dependency-aware GPU run pays peer-GPU traffic that
the affinity scheduler partly avoids.
"""

from repro.analysis.experiments import fig10_cholesky_transfers
from repro.analysis.report import format_table

from figutils import emit, run_once


def test_fig10_cholesky_transfers(benchmark):
    rows = run_once(
        benchmark, fig10_cholesky_transfers, (2, 8), (2,), n_blocks=16
    )
    table = format_table(
        ["smp", "gpus", "config", "Input Tx", "Output Tx", "Device Tx", "total"],
        [[r["smp"], r["gpus"], r["config"], r["input_tx"], r["output_tx"],
          r["device_tx"], r["total"]] for r in rows],
        title="Figure 10 — Cholesky data transferred (GB)",
        floatfmt="{:.2f}",
    )
    emit("fig10_cholesky_transfers", table)

    for smp in (2, 8):
        smp_row = next(r for r in rows if r["config"] == "SMP-dep" and r["smp"] == smp)
        gpu_row = next(r for r in rows if r["config"] == "GPU-dep" and r["smp"] == smp)
        aff_row = next(r for r in rows if r["config"] == "GPU-aff" and r["smp"] == smp)
        assert smp_row["input_tx"] > gpu_row["input_tx"]
        assert smp_row["total"] > gpu_row["total"]
        # affinity exploits locality at least as well as dependency-aware
        assert aff_row["device_tx"] <= gpu_row["device_tx"] * 1.05
