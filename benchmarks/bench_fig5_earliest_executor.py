"""Figure 5 — the earliest-executor decision.

The paper's Figure 5 shows a ready task assigned to an *idle SMP worker*
although a GPU is its fastest executor, because the GPU's queue makes the
SMP worker the earliest executor.  This bench reproduces the scenario:
a hybrid matmul on a machine whose single GPU is saturated; a non-zero
SMP share proves the earliest-executor rule preferred idle slow workers.
"""

from repro.analysis.experiments import fig5_earliest_executor_decision
from repro.analysis.report import format_table

from figutils import emit, run_once


def test_fig5_earliest_executor(benchmark):
    row = run_once(benchmark, fig5_earliest_executor_decision)
    text = format_table(
        ["smp task runs", "gpu task runs", "makespan (s)", "GFLOP/s"],
        [[row["smp_runs"], row["gpu_runs"], row["makespan"], row["gflops"]]],
        title="Figure 5 — earliest-executor decision (busy GPU, idle SMP workers)",
        floatfmt="{:.3f}",
    )
    emit("fig5_earliest_executor", text)

    assert row["smp_runs"] > 0, "idle SMP workers never chosen — Fig. 5 logic broken"
    assert row["gpu_runs"] > row["smp_runs"], "fastest executor should dominate"
