"""Robustness — sharded cluster scheduling over an unreliable interconnect.

The cluster extension's cross-shard notifications originally assumed a
perfect network: one lost message and the successor shard waits forever.
This bench exercises the reliable-delivery protocol (sequence numbers,
acks, retransmission with exponential backoff, duplicate suppression,
epoch fencing) plus crash recovery (shard evacuation, lineage-driven
region recompute) under a seeded chaos plan: a fraction of all control
messages dropped in flight, with and without a whole node dying mid-run.

Assertions (the PR's acceptance numbers), on the 16x16 tiled hybrid
matmul over 4 nodes: 5% notification loss costs at most 20% makespan;
layering a mid-run node crash on top still completes within 1.5x the
fault-free makespan; and a numerically real run under the same chaos
plan produces a bit-correct product with a clean sanitizer report.
"""

import numpy as np

from repro.analysis.experiments import cluster_chaos
from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.resilience import FaultPlan, MessageFaultRule, NodeCrashRule
from repro.sim.topology import cluster_machine

from figutils import emit, run_once

NODES = 4
N_TILES = 16
TILE_SIZE = 1024
LOSS_RATES = (0.02, 0.05)
#: tile size of the numerically-real chaos run (16^3 matmuls of 128^3
#: keep the numpy work in seconds while preserving the task structure)
REAL_TILE = 128


def sweep():
    return cluster_chaos(
        LOSS_RATES,
        nodes=NODES,
        n_tiles=N_TILES,
        tile_size=TILE_SIZE,
        partition="block",
        crash=True,
    )


def chaos_numerics():
    """Real-arithmetic chaos run: 5% loss + mid-run crash, bit-checked."""

    def _run(plan):
        machine = cluster_machine(
            NODES, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=1
        )
        app = MatmulApp(n_tiles=N_TILES, tile_size=REAL_TILE, variant="hyb",
                        real=True)
        res = app.run(machine, "cluster",
                      scheduler_options={"partition": "block", "steal": True},
                      fault_plan=plan)
        return app, res

    _, base = _run(None)
    plan = FaultPlan(
        seed=11,
        message_faults=(MessageFaultRule(drop=0.05),),
        node_crashes=(NodeCrashRule(node=NODES - 1,
                                    at_time=0.4 * base.makespan),),
    )
    app, res = _run(plan)
    assert res.run.tasks_completed == N_TILES ** 3
    np.testing.assert_allclose(app.assembled_C(), app.reference_result())
    res.run.validate()  # SAN-T009 logical delivery + SAN-T010 release fencing
    return {
        "baseline": base.makespan,
        "chaos": res.makespan,
        "dropped": res.run.resilience.messages_dropped,
        "evacuated": res.run.scheduler_state.stats.evacuated_tasks,
    }


def test_cluster_chaos(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["loss", "crash", "makespan (s)", "slowdown", "dropped", "retransmits",
         "dups", "recovered", "evacuated", "recomputed"],
        [[r["loss"], "yes" if r["crash"] else "no", r["makespan"],
          r["slowdown"], r["dropped"], r["retransmits"], r["dup_suppressed"],
          r["recovered"], r["evacuated"], r["recomputed"]] for r in rows],
        title=(
            f"Chaos — {N_TILES}x{N_TILES} tiled matmul (tile {TILE_SIZE}) on "
            f"{NODES} nodes, notification loss sweep +/- mid-run node crash"
        ),
        floatfmt="{:.3f}",
    )

    real = chaos_numerics()
    verdict = (
        f"real-arithmetic chaos run (tile {REAL_TILE}): bit-correct product, "
        f"clean sanitizer; {real['dropped']} messages dropped, "
        f"{real['evacuated']} tasks evacuated, makespan "
        f"{real['baseline']:.3f}s -> {real['chaos']:.3f}s"
    )
    emit("cluster_chaos", table + "\n\n" + verdict)

    by = {(r["loss"], r["crash"]): r for r in rows}
    # message loss alone is absorbed by retransmission: bounded overhead
    for loss in LOSS_RATES:
        r = by[(loss, False)]
        assert r["slowdown"] <= 1.2, (loss, r["slowdown"])
        assert r["dropped"] > 0 and r["retransmits"] >= r["dropped"]
    # a whole-node crash on top of 5% loss still finishes within 1.5x
    worst = by[(LOSS_RATES[-1], True)]
    assert worst["slowdown"] <= 1.5, worst["slowdown"]
    assert worst["evacuated"] > 0 and worst["recomputed"] > 0
