"""Figure 12 — PBPI execution time (lower is better).

pbpi-smp, pbpi-gpu and pbpi-hyb(-ver) on the 500 MB synthetic dataset.
Shape: "pbpi-smp versions run faster than the pbpi-gpu versions" (the
SMP-only loop 3 forces data back each generation), and the versioning
scheduler "is able to find the appropriate balance between SMP and GPU
execution" — pbpi-hyb is the fastest.
"""

from repro.analysis.experiments import fig12_pbpi_time
from repro.analysis.report import bar_chart, format_table

from figutils import emit, run_once

GENERATIONS = 40


def test_fig12_pbpi_time(benchmark):
    rows = run_once(
        benchmark, fig12_pbpi_time, (2, 4, 8, 12), (2,), generations=GENERATIONS
    )
    table = format_table(
        ["smp", "gpus", "pbpi-smp (s)", "pbpi-gpu (s)", "pbpi-hyb (s)"],
        [[r["smp"], r["gpus"], r["pbpi-smp"], r["pbpi-gpu"], r["pbpi-hyb"]]
         for r in rows],
        title="Figure 12 — PBPI execution time (s, lower is better)",
        floatfmt="{:.2f}",
    )
    chart = bar_chart(
        {f"{r['smp']}smp {k}": r[k] for r in rows
         for k in ("pbpi-smp", "pbpi-gpu", "pbpi-hyb")},
        unit="s",
    )
    emit("fig12_pbpi_time", table + "\n\n" + chart)

    for r in rows:
        if r["smp"] >= 8:
            assert r["pbpi-smp"] < r["pbpi-gpu"]
        assert r["pbpi-hyb"] < r["pbpi-gpu"]
        assert r["pbpi-hyb"] < r["pbpi-smp"]
    # pbpi-smp scales with SMP workers; pbpi-gpu does not
    smp_times = [r["pbpi-smp"] for r in rows]
    assert smp_times[0] > smp_times[-1]
    gpu_times = [r["pbpi-gpu"] for r in rows]
    assert max(gpu_times) / min(gpu_times) < 1.05
