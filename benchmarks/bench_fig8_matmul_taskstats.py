"""Figure 8 — matmul task statistics for the versioning scheduler.

Percentage of task executions per version (CUBLAS / hand-coded CUDA /
SMP-CBLAS) for mm-hyb-ver across worker configurations.  Shape: CUBLAS
dominates; the CUDA version runs only during learning ("its portion ...
is almost invisible"); the SMP share grows with worker count and is
larger with one GPU than with two.
"""

from repro.analysis.experiments import fig8_matmul_task_stats
from repro.analysis.report import stacked_percentages

from figutils import emit, run_once


def test_fig8_matmul_taskstats(benchmark):
    rows = run_once(
        benchmark, fig8_matmul_task_stats, (1, 2, 4, 8, 12), (1, 2), n_tiles=16
    )
    series = {
        f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("CUBLAS", "CUDA", "SMP")}
        for r in rows
    }
    chart = stacked_percentages(
        series,
        title="Figure 8 — matmul task versions run (versioning scheduler)",
        order=("CUBLAS", "CUDA", "SMP"),
    )
    emit("fig8_matmul_taskstats", chart)

    for r in rows:
        assert r["CUBLAS"] > 75.0
        assert r["CUDA"] < 5.0
    by = {(r["smp"], r["gpus"]): r for r in rows}
    assert by[(12, 2)]["SMP"] > by[(1, 2)]["SMP"]       # grows with workers
    assert by[(8, 1)]["SMP"] > by[(8, 2)]["SMP"]        # larger with one GPU
