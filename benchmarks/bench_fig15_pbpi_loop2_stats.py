"""Figure 15 — PBPI loop-2 task statistics (versioning scheduler).

Shape: "the execution of tasks of the second loop is shared between GPU
and SMP ... the SMP version is run many times and this helps balancing
the trade-off between sending data back and forth and running the tasks
on SMP workers" (the SMP version is 3-4x slower, but transfer pressure
makes host execution worthwhile).
"""

from repro.analysis.experiments import fig15_pbpi_loop2_stats
from repro.analysis.report import stacked_percentages

from figutils import emit, run_once


def test_fig15_pbpi_loop2_stats(benchmark):
    rows = run_once(
        benchmark, fig15_pbpi_loop2_stats, (2, 4, 8, 12), (2,), generations=40
    )
    series = {
        f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("GPU", "SMP")}
        for r in rows
    }
    chart = stacked_percentages(
        series,
        title="Figure 15 — PBPI loop-2 versions run (versioning scheduler)",
        order=("GPU", "SMP"),
    )
    emit("fig15_pbpi_loop2_stats", chart)

    for r in rows:
        assert r["GPU"] > 5.0
        assert r["SMP"] > 20.0  # the split the paper describes
