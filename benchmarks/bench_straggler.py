"""Straggler robustness — makespan under a hang plus a 20x slowdown.

A heterogeneous run is only as fast as its slowest critical task: one
worker silently degrading by 20x (thermal throttling, a contended PCIe
link) or one execution hanging outright can sink the whole makespan or
stall the run forever.  The versioning scheduler's per-(task, size)
profile tables already carry the signal needed to catch this — mean and
variance of every version's execution time — so the straggler watchdog
arms a ``mean + k*sigma`` deadline per running task and, on expiry,
speculatively re-executes the task on the best alternate
(version, worker) pair; first finisher wins, the loser is withdrawn.

This bench injects one hang and a permanent 20x slowdown of gpu1 into a
240-task run and compares:

* fault-free baseline (speculation armed but never firing),
* faults + speculation ON  — must recover to within 2x of fault-free,
* faults + speculation OFF — stalls on the hang (the progress watchdog
  aborts with a diagnostic) or blows past 10x.
"""

import numpy as np

from repro.analysis.metrics import straggler_summary
from repro.analysis.report import format_table
from repro.resilience import (
    FaultPlan,
    HangRule,
    ProgressStallError,
    RecoveryPolicy,
    WorkerSlowdown,
)
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig
from repro.sim.perfmodel import FixedCostModel
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

N_TASKS = 240
N_ELEMS = 512
SMP_COST = 0.004
GPU_COST = 0.001
#: simulated time from which gpu1 runs 20x slower
SLOWDOWN_AT = 0.02
SLOWDOWN_FACTOR = 20.0
#: the 5th execution started anywhere hangs forever
HANG_AT_START = 5


def build(registry):
    @task(inputs=["x"], outputs=["y"], device="smp", name="scale_smp",
          registry=registry)
    def scale(x, y):
        y[:] = 2.0 * x + 1.0

    @task(inputs=["x"], outputs=["y"], device="cuda", implements="scale_smp",
          name="scale_gpu", registry=registry)
    def scale_gpu(x, y):
        y[:] = 2.0 * x + 1.0

    return scale


def make_plan():
    return FaultPlan(
        seed=7,
        hangs=[HangRule(at_starts=(HANG_AT_START,))],
        slowdowns=[WorkerSlowdown("gpu1", SLOWDOWN_AT, SLOWDOWN_FACTOR)],
    )


def run(*, plan=None, speculate=True, progress_horizon=None):
    machine = minotauro_node(4, 2, noise_cv=0.0, seed=0)
    machine.register_kernel_for_kind("smp", "scale_smp", FixedCostModel(SMP_COST))
    machine.register_kernel_for_kind("cuda", "scale_gpu", FixedCostModel(GPU_COST))
    scale = build(registry := {})
    xs = [np.full(N_ELEMS, float(i)) for i in range(N_TASKS)]
    ys = [np.zeros(N_ELEMS) for _ in range(N_TASKS)]
    config = RuntimeConfig(progress_horizon=progress_horizon)
    rt = OmpSsRuntime(
        machine, "versioning", config=config, fault_plan=plan,
        recovery=RecoveryPolicy(speculate=speculate),
    )
    with rt:
        for x, y in zip(xs, ys):
            scale(x, y)
    res = rt.result()
    assert res.tasks_completed == N_TASKS
    for x, y in zip(xs, ys):
        np.testing.assert_allclose(y, 2.0 * x + 1.0)
    res.validate()
    return res


def sweep():
    base = run(plan=None, speculate=True)
    spec = run(plan=make_plan(), speculate=True)
    try:
        # the progress watchdog bounds the stall; without it the hung
        # task would deadlock taskwait() forever
        off = run(plan=make_plan(), speculate=False,
                  progress_horizon=base.makespan)
        off_outcome = f"{off.makespan / base.makespan:.1f}x slower"
        off_ok = off.makespan > 10.0 * base.makespan
    except ProgressStallError:
        off_outcome = "stalled (progress watchdog abort)"
        off_ok = True
    return {
        "baseline": base.makespan,
        "speculation": spec.makespan,
        "ratio": spec.makespan / base.makespan,
        "off_outcome": off_outcome,
        "off_ok": off_ok,
        "summary": straggler_summary(spec),
    }


def test_straggler_recovery(benchmark):
    out = run_once(benchmark, sweep)
    s = out["summary"]
    table = format_table(
        ["config", "makespan (s)", "vs fault-free"],
        [
            ["fault-free", out["baseline"], "1.00x"],
            ["hang + 20x slowdown, speculation ON", out["speculation"],
             f"{out['ratio']:.2f}x"],
            ["hang + 20x slowdown, speculation OFF", "-", out["off_outcome"]],
        ],
        title=f"Straggler recovery — {N_TASKS} tasks, gpu1 20x slower from "
              f"t={SLOWDOWN_AT:.3f}s, one execution hangs",
        floatfmt="{:.4f}",
    )
    emit(
        "straggler",
        table
        + "\n\nspeculation: "
        + ", ".join(f"{k}={v:g}" for k, v in s.items()),
    )

    # the acceptance criteria of the robustness work: speculation pulls
    # the faulted run back within 2x of fault-free, while the same plan
    # without speculation stalls or degrades past 10x
    assert s["detected"] >= 1 and s["launched"] >= 1
    assert out["ratio"] <= 2.0, out
    assert out["off_ok"], out["off_outcome"]
