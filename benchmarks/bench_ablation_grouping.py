"""Ablation — exact vs range-based data-set-size grouping (§VII).

"If the data needed by two calls to the same task varies from only 1
byte, the scheduler will consider that these calls belong to different
groups ... it would be better to define the data sizes of each group in
a reasonable range [so] the initial learning phase would take less
time."  A jittered workload (sizes differing by a few bytes) shows the
proposed fix working: far fewer size groups, far fewer learning
dispatches, better performance.
"""

from repro.core.versioning import VersioningScheduler
from repro.analysis.report import format_table
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import AffineBytesCostModel
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

MB = 1024**2
N_TASKS = 400


def run_with(grouping, options=None):
    registry = {}

    @task(inputs=["x"], outputs=["y"], device="smp", name="stencil_smp",
          registry=registry)
    def stencil(x, y):
        pass

    @task(inputs=["x"], outputs=["y"], device="cuda", implements="stencil_smp",
          name="stencil_gpu", registry=registry)
    def stencil_gpu(x, y):
        pass

    machine = minotauro_node(4, 2, noise_cv=0.02, seed=2)
    machine.register_kernel_for_kind("smp", "stencil_smp",
                                     AffineBytesCostModel(0.0, 1.5e9))
    machine.register_kernel_for_kind("cuda", "stencil_gpu",
                                     AffineBytesCostModel(5e-6, 12e9))
    sched = VersioningScheduler(grouping=grouping, grouping_options=options)
    rt = OmpSsRuntime(machine, sched)
    with rt:
        for i in range(N_TASKS):
            size = 8 * MB + (i * 37) % 101  # byte-level jitter
            stencil(DataRegion(("x", i), size), DataRegion(("y", i), size))
    res = rt.result()
    groups = len(sched.table.version_set("stencil_smp"))
    return {
        "groups": groups,
        "learning_dispatches": sched.learning_dispatches,
        "makespan": res.makespan,
    }


def sweep():
    return {
        "exact": run_with("exact"),
        "relative-10%": run_with("relative", {"tolerance": 0.10}),
        "fixed-1MB-bins": run_with("fixed-bin", {"bin_bytes": MB}),
    }


def test_ablation_grouping(benchmark):
    out = run_once(benchmark, sweep)
    table = format_table(
        ["grouping", "size groups", "learning dispatches", "makespan (s)"],
        [[k, v["groups"], v["learning_dispatches"], v["makespan"]]
         for k, v in out.items()],
        title="Ablation — data-set-size grouping on a byte-jittered workload",
        floatfmt="{:.4f}",
    )
    emit("ablation_grouping", table)

    assert out["exact"]["groups"] > 50           # one group per unique size
    assert out["relative-10%"]["groups"] == 1    # the §VII fix
    assert (out["relative-10%"]["learning_dispatches"]
            < out["exact"]["learning_dispatches"])
    assert out["relative-10%"]["makespan"] <= out["exact"]["makespan"] * 1.02
