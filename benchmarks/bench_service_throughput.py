"""Scheduler service — submission throughput, latency, cache effect.

Starts an in-process service (TCP transport included, so the wire
format is on the measured path), then:

1. drives it with the seeded load generator — 8 concurrent clients
   with a 50% duplicate fraction — reporting submissions/sec, p50/p99
   latency and cache hit rate;
2. measures the cold-vs-cached resubmission latency gap per scheduler:
   the same spec submitted cold (``no_cache``) and then replayed from
   the result cache, for both the versioning and affinity policies.

The figure of merit: a cached resubmission answers from memory — no
graph build, no simulation — so its p50 should sit well over an order
of magnitude below the cold p50.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.service.client import ServiceClient
from repro.service.loadgen import _percentile, run_loadgen_sync
from repro.service.server import ServiceConfig, ServiceHarness
from repro.service.spec import SubmissionSpec

from figutils import emit, run_once

REPLAYS = 12


def _latency_split(client: ServiceClient, spec, *, replays: int = REPLAYS):
    """Cold latencies (forced fresh runs) vs cached replays, seconds."""
    cold = []
    for _ in range(replays):
        cold.append(client.submit(spec, no_cache=True).latency)
    client.submit(spec)  # ensure the cache entry exists
    cached = []
    for _ in range(replays):
        outcome = client.submit(spec)
        assert outcome.cached, "replay must come from the cache"
        cached.append(outcome.latency)
    return cold, cached


def sweep():
    out: dict = {}
    with ServiceHarness(ServiceConfig(workers=4), tcp=True) as harness:
        assert harness.address is not None
        host, port = harness.address

        t0 = time.perf_counter()
        report = run_loadgen_sync(
            host,
            port,
            n_clients=8,
            requests_per_client=8,
            duplicate_fraction=0.5,
            seed=1,
        )
        out["loadgen"] = report.as_dict()
        out["loadgen"]["measured_wall"] = time.perf_counter() - t0

        out["schedulers"] = {}
        with ServiceClient(host, port) as client:
            for scheduler in ("versioning", "affinity"):
                # a paper-scale graph (512 tasks), so the cold side
                # reflects a real simulation rather than setup overhead
                spec = SubmissionSpec.from_dict(
                    {
                        "app": "matmul",
                        "app_args": {"n_tiles": 8, "variant": "hyb"},
                        "machine_args": {"n_smp": 4, "n_gpus": 2},
                        "scheduler": scheduler,
                        "seed": 5,
                    }
                )
                cold, cached = _latency_split(client, spec)
                out["schedulers"][scheduler] = {
                    "cold_p50": _percentile(cold, 0.5),
                    "cold_p99": _percentile(cold, 0.99),
                    "cached_p50": _percentile(cached, 0.5),
                    "cached_p99": _percentile(cached, 0.99),
                    "speedup_p50": _percentile(cold, 0.5)
                    / max(_percentile(cached, 0.5), 1e-9),
                }
            out["server_stats"] = client.stats()
    return out


def test_service_throughput(benchmark):
    out = run_once(benchmark, sweep)
    lg = out["loadgen"]
    ms = 1e3

    lines = [
        "Scheduler service — streaming submission throughput",
        "",
        f"load generator: {lg['n_clients']} concurrent clients, "
        f"{lg['requests']} submissions, duplicate fraction 0.5",
        f"  throughput : {lg['throughput']:8.1f} submissions/s",
        f"  latency    : p50 {lg['p50'] * ms:7.1f} ms   p99 {lg['p99'] * ms:7.1f} ms",
        f"  cache      : hit rate {lg['hit_rate']:.0%}  "
        f"(cold p50 {lg['cold_p50'] * ms:.1f} ms, cached p50 {lg['cached_p50'] * ms:.1f} ms)",
        f"  errors     : {lg['errors']}",
        "",
    ]
    rows = []
    for scheduler, r in out["schedulers"].items():
        rows.append(
            [
                scheduler,
                r["cold_p50"] * ms,
                r["cold_p99"] * ms,
                r["cached_p50"] * ms,
                r["cached_p99"] * ms,
                r["speedup_p50"],
            ]
        )
    lines.append(
        format_table(
            ["scheduler", "cold p50 (ms)", "cold p99 (ms)", "cached p50 (ms)",
             "cached p99 (ms)", "p50 speedup"],
            rows,
            title="Cold vs cached resubmission latency (sequential, per scheduler)",
            floatfmt="{:.2f}",
        )
    )
    stats = out["server_stats"]
    lines.append("")
    lines.append(
        f"server: {stats['jobs_completed']} jobs, {stats['cold_runs']} cold runs, "
        f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
        f"{stats['scheduler_pool']['reuses']} scheduler reuses"
    )
    emit("service_throughput", "\n".join(lines))

    assert lg["errors"] == 0
    assert lg["hit_rate"] > 0.0
    for scheduler, r in out["schedulers"].items():
        assert r["speedup_p50"] >= 10.0, (
            f"{scheduler}: cached p50 {r['cached_p50'] * ms:.2f}ms not >=10x "
            f"under cold p50 {r['cold_p50'] * ms:.2f}ms"
        )
