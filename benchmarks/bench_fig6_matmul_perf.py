"""Figure 6 — matrix multiplication performance.

Sweeps SMP worker counts and GPU counts at the paper's problem size
(16x16 grid of 1024^2 double tiles, 4096 gemm tasks) for:

* mm-gpu under the affinity scheduler (mm-gpu-aff),
* mm-gpu under the dependency-aware scheduler (mm-gpu-dep),
* mm-hyb under the versioning scheduler (mm-hyb-ver).

Shape targets (§V-B1): mm-gpu scales linearly 1->2 GPUs and is flat in
SMP threads; mm-hyb-ver gains with SMP workers and overtakes mm-gpu.
"""

from repro.analysis.experiments import fig6_matmul_performance
from repro.analysis.report import format_table

from figutils import emit, run_once

SMP_COUNTS = (1, 2, 4, 8, 12)
GPU_COUNTS = (1, 2)


def test_fig6_matmul_performance(benchmark):
    rows = run_once(
        benchmark, fig6_matmul_performance, SMP_COUNTS, GPU_COUNTS, n_tiles=16
    )
    table = format_table(
        ["smp", "gpus", "mm-gpu-aff", "mm-gpu-dep", "mm-hyb-ver"],
        [[r["smp"], r["gpus"], r["mm-gpu-aff"], r["mm-gpu-dep"], r["mm-hyb-ver"]]
         for r in rows],
        title="Figure 6 — matmul performance (GFLOP/s, higher is better)",
    )
    emit("fig6_matmul_perf", table)

    # --- shape checks -------------------------------------------------
    one_gpu = [r for r in rows if r["gpus"] == 1]
    two_gpu = [r for r in rows if r["gpus"] == 2]
    # linear GPU scaling of mm-gpu
    assert two_gpu[0]["mm-gpu-dep"] / one_gpu[0]["mm-gpu-dep"] > 1.8
    # mm-gpu flat in SMP threads
    vals = [r["mm-gpu-dep"] for r in one_gpu]
    assert max(vals) / min(vals) < 1.02
    # hybrid overtakes with many SMP workers
    many = next(r for r in two_gpu if r["smp"] == SMP_COUNTS[-1])
    assert many["mm-hyb-ver"] > many["mm-gpu-dep"]
    # hybrid improves monotonically-ish from 1 to 12 workers
    few = next(r for r in two_gpu if r["smp"] == 1)
    assert many["mm-hyb-ver"] > few["mm-hyb-ver"]
