"""Figure 11 — Cholesky task statistics for the versioning scheduler.

Percentage of potrf executions per version under potrf-hyb-ver.  Shape:
"the scheduler decides to assign all the work to the GPUs because they
become the earliest executors" — the SMP share is only the λ learning
runs (3 of 16 potrf instances ~ 19%).
"""

from repro.analysis.experiments import fig11_cholesky_task_stats
from repro.analysis.report import stacked_percentages

from figutils import emit, run_once


def test_fig11_cholesky_taskstats(benchmark):
    rows = run_once(
        benchmark, fig11_cholesky_task_stats, (2, 4, 8, 12), (2,), n_blocks=16
    )
    series = {
        f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("GPU", "SMP")}
        for r in rows
    }
    chart = stacked_percentages(
        series,
        title="Figure 11 — Cholesky potrf versions run (versioning scheduler)",
        order=("GPU", "SMP"),
    )
    emit("fig11_cholesky_taskstats", chart)

    for r in rows:
        assert r["GPU"] > r["SMP"]
        # SMP share = λ learning runs out of 16 potrf instances
        assert r["SMP"] <= 100.0 * 4 / 16
