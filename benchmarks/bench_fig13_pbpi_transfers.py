"""Figure 13 — data transferred for PBPI.

Shape: pbpi-smp transfers nothing ("data always stay in the host
memory"); pbpi-gpu pays the full likelihood traffic every generation;
pbpi-hyb transfers slightly less than pbpi-gpu overall but converts
serialised end-of-phase copies into overlapped mid-phase ones.
"""

from repro.analysis.experiments import fig13_pbpi_transfers
from repro.analysis.report import format_table

from figutils import emit, run_once


def test_fig13_pbpi_transfers(benchmark):
    rows = run_once(benchmark, fig13_pbpi_transfers, (4, 8), (2,), generations=40)
    table = format_table(
        ["smp", "gpus", "config", "Input Tx", "Output Tx", "Device Tx", "total"],
        [[r["smp"], r["gpus"], r["config"], r["input_tx"], r["output_tx"],
          r["device_tx"], r["total"]] for r in rows],
        title="Figure 13 — PBPI data transferred (GB)",
        floatfmt="{:.2f}",
    )
    emit("fig13_pbpi_transfers", table)

    for smp in (4, 8):
        s = next(r for r in rows if r["config"] == "SMP-dep" and r["smp"] == smp)
        g = next(r for r in rows if r["config"] == "GPU-dep" and r["smp"] == smp)
        h = next(r for r in rows if r["config"] == "HYB-ver" and r["smp"] == smp)
        assert s["total"] == 0.0
        assert g["output_tx"] > 0
        assert 0 < h["total"] <= g["total"] * 1.2
