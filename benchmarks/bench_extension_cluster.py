"""Extension — sharded cluster scheduling, strong scaling to 16 nodes.

The paper's introduction claims OmpSs runs applications on "clusters of
SMPs and/or GPUs transparently"; its evaluation stays on one node.  The
*global* versioning scheduler treats a cluster as a flat worker pool:
every cold tile is staged from node 0's host, so its NIC serialises the
traffic of all other nodes and throughput flatlines (and then decays)
past 4 nodes.  The sharded cluster scheduler partitions the dependence
graph across nodes, runs one versioning instance per node, bridges
cross-shard edges with simulated notifications + pushed region
transfers overlapped with scheduling, and steals between node pools —
so it keeps scaling where the global scheduler stops.

Assertions (the PR's acceptance numbers): sharded 8-node throughput is
at least 1.5x its 4-node throughput on the tiled hybrid matmul, while
global shows at most 1.1x; per-node utilisation and cross-shard message
counts are reported alongside.
"""

from repro.analysis.experiments import cluster_strong_scaling
from repro.analysis.metrics import cluster_summary
from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.sim.topology import cluster_machine

from figutils import emit, run_once

NODE_COUNTS = (1, 2, 4, 8, 16)
N_TILES = 16
TILE_SIZE = 1024


def sweep():
    return cluster_strong_scaling(
        node_counts=NODE_COUNTS, n_tiles=N_TILES, tile_size=TILE_SIZE
    )


def partitions_at_8():
    """One run per partition policy at 8 nodes (protocol counters)."""
    rows = []
    for partition in ("affinity", "block", "hash"):
        machine = cluster_machine(
            8, smp_per_node=2, gpus_per_node=1, noise_cv=0.02, seed=1
        )
        app = MatmulApp(n_tiles=N_TILES, tile_size=TILE_SIZE, variant="hyb")
        res = app.run(machine, "cluster", scheduler_options={"partition": partition})
        s = cluster_summary(res.run)
        util = s["node_utilisation"]
        rows.append([
            partition, res.gflops, s["cross_edges"], s["notifications_sent"],
            s["steals"], s["load_imbalance"], min(util.values()),
        ])
    return rows


def test_extension_cluster(benchmark):
    rows = run_once(benchmark, sweep)
    scaling = format_table(
        ["nodes", "scheduler", "GFLOP/s", "cross msgs", "steals",
         "mean node util", "min node util"],
        [[r["nodes"], r["scheduler"], r["gflops"], r["cross_msgs"], r["steals"],
          r["mean_node_util"], r["min_node_util"]] for r in rows],
        title=(
            f"Extension — strong scaling, {N_TILES}x{N_TILES} tiled matmul "
            f"(tile {TILE_SIZE}), sharded (affinity+steal) vs global versioning"
        ),
        floatfmt="{:.2f}",
    )
    policies = format_table(
        ["partition", "GFLOP/s", "cross edges", "notifications", "steals",
         "load imbalance", "min node util"],
        partitions_at_8(),
        title="Extension — partition policies at 8 nodes",
        floatfmt="{:.2f}",
    )
    emit("extension_cluster", scaling + "\n\n" + policies)

    g = {(r["nodes"], r["scheduler"]): r["gflops"] for r in rows}
    # the headline claim: sharding unlocks scaling the global scheduler
    # cannot reach (node 0's NIC serialises its cold fetches)
    assert g[(8, "sharded")] >= 1.5 * g[(4, "sharded")]
    assert g[(8, "global")] <= 1.1 * g[(4, "global")]
    # and the sweep keeps growing to 16 nodes for the sharded scheduler
    assert g[(16, "sharded")] > g[(8, "sharded")]
    assert g[(16, "sharded")] > 2.0 * g[(16, "global")]
    # per-node utilisation is meaningful (reported, non-degenerate)
    for r in rows:
        if r["scheduler"] == "sharded" and r["nodes"] >= 4:
            assert r["min_node_util"] > 0.3
