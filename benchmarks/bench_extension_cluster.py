"""Extension — OmpSs@cluster scaling.

The paper's introduction claims OmpSs runs applications on "clusters of
SMPs and/or GPUs transparently"; its evaluation stays on one node.  This
bench takes the hybrid matmul across 1/2/4 simulated nodes: aggregate
throughput must grow with nodes (the versioning scheduler discovers the
remote devices) while staying sub-linear (every off-node tile crosses
the interconnect, staged through both hosts — multi-hop transfers).
"""

from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.sim.topology import cluster_machine

from figutils import emit, run_once


def sweep():
    rows = []
    for nodes in (1, 2, 4):
        machine = cluster_machine(
            n_nodes=nodes, smp_per_node=4, gpus_per_node=2, noise_cv=0.02, seed=1
        )
        app = MatmulApp(n_tiles=12, variant="hyb")
        res = app.run(machine, "versioning")
        tx = res.run.transfer_stats
        rows.append([nodes, res.gflops, tx.total_bytes / 1024**3])
    return rows


def test_extension_cluster(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["nodes", "GFLOP/s", "data moved (GB)"],
        rows,
        title="Extension — hybrid matmul on 1/2/4 cluster nodes (versioning)",
    )
    emit("extension_cluster", table)

    by = {r[0]: r for r in rows}
    assert by[2][1] > by[1][1]            # more nodes -> more throughput
    assert by[4][1] > by[2][1]
    assert by[4][1] < 4 * by[1][1]        # ... but sub-linear (network)
    assert by[4][2] > by[1][2]            # and more data on the wire
