"""Figure 7 — data transferred for matrix multiplication.

GA = mm-gpu + affinity, GD = mm-gpu + dependency-aware, HV = mm-hyb +
versioning, classified into Input/Output/Device Tx.  Shape: HV moves
more data than GA/GD (SMP workers share partial results) and is the
only configuration with device-to-device traffic.
"""

from repro.analysis.experiments import fig7_matmul_transfers
from repro.analysis.report import format_table

from figutils import emit, run_once


def test_fig7_matmul_transfers(benchmark):
    rows = run_once(
        benchmark, fig7_matmul_transfers, (1, 4, 8, 12), (1, 2), n_tiles=16
    )
    table = format_table(
        ["smp", "gpus", "config", "Input Tx", "Output Tx", "Device Tx", "total"],
        [[r["smp"], r["gpus"], r["config"], r["input_tx"], r["output_tx"],
          r["device_tx"], r["total"]] for r in rows],
        title="Figure 7 — matmul data transferred (GB)",
        floatfmt="{:.2f}",
    )
    emit("fig7_matmul_transfers", table)

    for smp in (4, 8, 12):
        hv = next(r for r in rows if r["config"] == "HV" and r["smp"] == smp
                  and r["gpus"] == 2)
        gd = next(r for r in rows if r["config"] == "GD" and r["smp"] == smp
                  and r["gpus"] == 2)
        assert hv["total"] > gd["total"]
    two_gpu_hv = [r for r in rows if r["config"] == "HV" and r["gpus"] == 2]
    assert any(r["device_tx"] > 0 for r in two_gpu_hv)
    assert all(r["device_tx"] == 0 for r in rows if r["config"] in ("GA", "GD"))
