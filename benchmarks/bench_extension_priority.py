"""Extension — the OmpSs ``priority`` clause on the Cholesky bottleneck.

§V-B2: potrf "acts like a bottleneck and if it is not run as soon as its
data dependencies are satisfied, there is less parallelism to exploit".
OmpSs exposes a ``priority`` clause for exactly this; the paper does not
evaluate it, so this bench does: raising potrf's priority lets it jump
ahead of queued trailing updates on the GPUs.
"""

from repro.analysis.report import format_table
from repro.apps.cholesky import CholeskyApp
from repro.sim.topology import minotauro_node

from figutils import emit, run_once


def sweep():
    rows = []
    for variant, sched in (("gpu", "dep"), ("hyb", "versioning")):
        for prio in (0, 1):
            app = CholeskyApp(n_blocks=16, variant=variant, potrf_priority=prio)
            machine = minotauro_node(2, 2, noise_cv=0.02, seed=1)
            res = app.run(machine, sched)
            rows.append([f"{variant}-{sched}", prio, res.gflops])
    return rows


def test_extension_priority(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["configuration", "potrf priority", "GFLOP/s"],
        rows,
        title="Extension — priority clause on potrf (Cholesky, 2 GPUs)",
    )
    emit("extension_priority", table)

    by = {(r[0], r[1]): r[2] for r in rows}
    # priority never hurts, and helps the GPU-only run where potrf
    # otherwise queues behind trailing updates
    assert by[("gpu-dep", 1)] >= by[("gpu-dep", 0)] * 0.999
    assert by[("hyb-versioning", 1)] >= by[("hyb-versioning", 0)] * 0.999
