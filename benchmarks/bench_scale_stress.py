"""Scale stress — paper-sized task counts.

§V-B3: PBPI runs "hundreds of thousands of tasks ... for the second
loop".  This bench drives the runtime through ~100k tasks (3000 MCMC
generations over 16 blocks) under the versioning scheduler and checks
that the simulation sustains a healthy task throughput and that the
learned placement stays consistent with the small-scale runs (loop 1
GPU-dominant, loop 2 shared).
"""

from repro.analysis.metrics import version_percentages
from repro.analysis.report import format_table
from repro.apps.pbpi import PBPI_LOOP_LEGENDS, PBPIApp
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

GENERATIONS = 3000
BLOCKS = 16


def run():
    app = PBPIApp(generations=GENERATIONS, n_blocks=BLOCKS, variant="hyb")
    machine = minotauro_node(8, 2, noise_cv=0.02, seed=1)
    res = app.run(machine, "versioning")
    loop1 = version_percentages(res.run, "pbpi_loop1_gpu", PBPI_LOOP_LEGENDS["loop1"])
    loop2 = version_percentages(res.run, "pbpi_loop2_gpu", PBPI_LOOP_LEGENDS["loop2"])
    return {
        "tasks": res.run.tasks_completed,
        "simulated_s": res.makespan,
        "loop1_gpu_pct": loop1.get("GPU", 0.0),
        "loop2_gpu_pct": loop2.get("GPU", 0.0),
        "loop2_smp_pct": loop2.get("SMP", 0.0),
    }


def test_scale_stress(benchmark):
    out = run_once(benchmark, run)
    table = format_table(
        ["tasks", "simulated (s)", "loop1 GPU %", "loop2 GPU %", "loop2 SMP %"],
        [[out["tasks"], out["simulated_s"], out["loop1_gpu_pct"],
          out["loop2_gpu_pct"], out["loop2_smp_pct"]]],
        title=f"Scale stress — PBPI, {GENERATIONS} generations x {BLOCKS} blocks",
    )
    emit("scale_stress", table)

    assert out["tasks"] == GENERATIONS * (2 * BLOCKS + 1)
    # placement learned at scale matches the small-scale figures
    assert out["loop1_gpu_pct"] > 90.0
    assert out["loop2_smp_pct"] > 20.0
