"""Ablation — the learning threshold λ (§IV-B footnote 4).

"We force the scheduler to run each task version at least λ times ...
This threshold can be configured by the user."  Sweeps λ on the hybrid
matmul: a tiny λ risks unreliable means, a huge λ forces many slow-
version runs; the sweep shows the flat-then-degrading curve and that the
learning share of dispatches scales with λ.
"""

from repro.apps.matmul import MatmulApp
from repro.core.versioning import VersioningScheduler
from repro.analysis.report import format_table
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

LAMBDAS = (1, 3, 5, 10, 25)


def sweep():
    rows = []
    for lam in LAMBDAS:
        app = MatmulApp(n_tiles=12, variant="hyb")
        machine = minotauro_node(8, 2, noise_cv=0.02, seed=1)
        app.register_cost_models(machine)
        sched = VersioningScheduler(lam=lam)
        rt = OmpSsRuntime(machine, sched)
        with rt:
            app.master(rt)
        res = rt.result()
        rows.append(
            {
                "lambda": lam,
                "gflops": res.gflops(app.total_flops()),
                "learning_dispatches": sched.learning_dispatches,
            }
        )
    return rows


def test_ablation_lambda(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["lambda", "GFLOP/s", "learning dispatches"],
        [[r["lambda"], r["gflops"], r["learning_dispatches"]] for r in rows],
        title="Ablation — learning threshold λ (matmul-hyb, 8 SMP + 2 GPU)",
    )
    emit("ablation_lambda", table)

    by = {r["lambda"]: r for r in rows}
    assert by[25]["learning_dispatches"] > by[1]["learning_dispatches"]
    # a huge λ wastes work on the 60x-slower SMP version
    assert by[25]["gflops"] < by[3]["gflops"]
