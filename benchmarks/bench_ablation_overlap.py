"""Ablation — transfer/compute overlap and prefetching (§V-A2).

"We configured OmpSs to overlap data transfers with task execution.  We
also combined this feature with prefetching task data to achieve higher
performance."  The mm-gpu application is rerun with the feature pair
off / overlap-only / overlap+prefetch; the staircase shows each
mechanism's contribution.
"""

from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.runtime.runtime import RuntimeConfig
from repro.sim.topology import minotauro_node

from figutils import emit, run_once


def run_with(label, config):
    app = MatmulApp(n_tiles=12, variant="gpu")
    machine = minotauro_node(1, 2, noise_cv=0.0, seed=0)
    res = app.run(machine, "dep", config=config)
    return label, res.gflops, res.run.transfer_stats.total_bytes / 1024**3


def sweep():
    return [
        run_with("no overlap", RuntimeConfig(overlap_transfers=False, prefetch=False)),
        run_with("overlap only", RuntimeConfig(overlap_transfers=True, prefetch=False)),
        run_with("overlap + prefetch", RuntimeConfig(prefetch=True, prefetch_window=4)),
    ]


def test_ablation_overlap(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["configuration", "GFLOP/s", "data moved (GB)"],
        [list(r) for r in rows],
        title="Ablation — transfer overlap & prefetch (mm-gpu, 2 GPUs)",
    )
    emit("ablation_overlap", table)

    by = {r[0]: r[1] for r in rows}
    assert by["overlap only"] >= by["no overlap"]
    assert by["overlap + prefetch"] >= by["overlap only"]
    assert by["overlap + prefetch"] > by["no overlap"] * 1.05
