"""Shared helpers for the figure benchmarks.

Each bench regenerates one table/figure of the paper: it runs the
corresponding experiment driver under ``pytest-benchmark`` (one round —
these are full simulations, not microbenchmarks), renders the result in
the paper's layout, writes it to ``benchmarks/results/<name>.txt`` and
echoes it to stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Persist a rendered figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[written to benchmarks/results/{name}.txt]")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
