"""Ablation — the versioning dispatch queue depth (a design choice of
this reproduction).

The paper's runtime pushes ready tasks straight into unbounded worker
queues; our versioning scheduler adds a bounded dispatch window
(``queue_depth``) while version estimates are still unknown, to keep a
burst of ready tasks from flooding a slow worker before any feedback
exists (see DESIGN.md).  This bench sweeps the bound on the hybrid
matmul: performance must be flat across sensible depths — i.e. the knob
removes the pathology without introducing sensitivity of its own.
"""

from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.core.versioning import VersioningScheduler
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import minotauro_node

from figutils import emit, run_once

DEPTHS = (1, 2, 4, 8)


def sweep():
    rows = []
    for depth in DEPTHS:
        app = MatmulApp(n_tiles=12, variant="hyb")
        machine = minotauro_node(8, 2, noise_cv=0.02, seed=1)
        app.register_cost_models(machine)
        sched = VersioningScheduler(queue_depth=depth)
        rt = OmpSsRuntime(machine, sched)
        with rt:
            app.master(rt)
        res = rt.result()
        rows.append([depth, res.gflops(app.total_flops())])
    return rows


def test_ablation_queue_depth(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["queue depth", "GFLOP/s"],
        rows,
        title="Ablation — versioning dispatch queue depth (matmul-hyb)",
    )
    emit("ablation_queue_depth", table)

    values = [r[1] for r in rows]
    assert max(values) / min(values) < 1.05  # insensitive across depths
