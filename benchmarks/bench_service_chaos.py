"""Scheduler service under injected faults — goodput vs fault rate.

Sweeps a seeded :class:`ServiceFaultPlan` (worker crashes, connection
drops at both consult points, frame corruption) across fault rates and
drives each service with the seeded load generator, clients armed with
a :class:`RetryPolicy`.  Reports goodput, latency percentiles, retries
and faults fired per rate.

The figures of merit:

* **zero lost submissions** — with retries on, every submission
  completes at every fault rate (the faults are retryable by
  construction: crashed workers answer typed ``internal-error``,
  dropped connections reconnect, corrupt frames surface as
  ``bad-frame``);
* **byte-identical results** — each faulted run's per-request result
  digests equal the fault-free baseline's, so retries return *the*
  answer, not *an* answer;
* graceful goodput degradation — tail latency absorbs the retries.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.service.chaos import (
    ConnectionFaultRule,
    FrameFaultRule,
    ServiceFaultPlan,
    WorkerCrashRule,
)
from repro.service.client import RetryPolicy
from repro.service.loadgen import run_loadgen_sync, spec_pool
from repro.service.server import ServiceConfig, ServiceHarness

from figutils import emit, run_once

FAULT_RATES = [0.0, 0.05, 0.1, 0.2]
SEED = 7


def _plan(rate: float) -> ServiceFaultPlan | None:
    if rate == 0.0:
        return None
    return ServiceFaultPlan(
        seed=SEED,
        worker_crashes=(WorkerCrashRule(probability=rate),),
        connection_faults=(
            ConnectionFaultRule(drop=rate / 2, when="response"),
            ConnectionFaultRule(drop=rate / 2, when="request"),
        ),
        frame_faults=(FrameFaultRule(corrupt=rate / 2),),
    )


def sweep():
    # byte-identical comparison across servers needs fresh-scheduler
    # runs; pooled schedulers are history-dependent
    pool = spec_pool(seed=SEED, share_scheduler=False)
    load = dict(
        n_clients=6,
        requests_per_client=4,
        duplicate_fraction=0.5,
        seed=SEED,
        pool=pool,
    )
    out: dict = {"rates": {}}
    baseline_digests = None
    for rate in FAULT_RATES:
        config = ServiceConfig(workers=4, fault_plan=_plan(rate))
        with ServiceHarness(config, tcp=True) as harness:
            assert harness.address is not None
            retry = (
                RetryPolicy(max_attempts=8, base_s=0.02, cap_s=0.5, seed=SEED)
                if rate > 0.0
                else None
            )
            report = run_loadgen_sync(*harness.address, retry=retry, **load)
            fired = (
                harness.service.chaos.counters()["fired"]
                if harness.service.chaos is not None
                else {}
            )
        row = report.as_dict()
        row["faults_fired"] = sum(fired.values())
        if rate == 0.0:
            baseline_digests = report.result_digests
            row["byte_identical"] = True
        else:
            row["byte_identical"] = report.result_digests == baseline_digests
        out["rates"][rate] = row
    return out


def test_service_chaos(benchmark):
    out = run_once(benchmark, sweep)
    ms = 1e3

    rows = []
    for rate, r in out["rates"].items():
        rows.append(
            [
                f"{rate:.0%}",
                r["faults_fired"],
                f"{r['completed']}/{r['requests']}",
                r["retries"],
                r["throughput"],
                r["p50"] * ms,
                r["p99"] * ms,
                "yes" if r["byte_identical"] else "NO",
            ]
        )
    lines = [
        "Scheduler service under injected faults (retrying clients)",
        "",
        "fault rate drives worker crashes, connection drops (request and",
        "response side) and frame corruption; clients retry with",
        "decorrelated-jitter backoff (8 attempts max).",
        "",
        format_table(
            ["fault rate", "faults fired", "completed", "retries",
             "goodput (sub/s)", "p50 (ms)", "p99 (ms)", "byte-identical"],
            rows,
            title="Goodput and completeness vs injected fault rate",
            floatfmt="{:.1f}",
        ),
    ]
    emit("service_chaos", "\n".join(lines))

    for rate, r in out["rates"].items():
        assert r["errors"] == 0, f"rate {rate}: {r['errors']} lost submissions"
        assert r["completed"] == r["requests"], f"rate {rate}: incomplete"
        assert r["byte_identical"], f"rate {rate}: results diverged from baseline"
        if rate > 0.0:
            assert r["faults_fired"] > 0, f"rate {rate}: plan never fired"
