"""Profile store — cold vs warm time-to-reliable-phase (matmul).

A cold versioning run spends its opening phase learning: λ executions
per version per size group before the earliest-executor rule can place
tasks on merit (§IV-B).  Committing the learned table to a profile store
and warm-starting the next run under the ``trust`` policy removes that
phase entirely; ``probation`` keeps a shortened one.  The figure of
merit is *time to reliable phase*: the simulated time at which the last
size group graduates from learning.
"""

from repro.analysis.metrics import time_to_reliable_phase, warm_start_summary
from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp
from repro.core.versioning import VersioningScheduler
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import minotauro_node
from repro.store import ProfileStore, warm_start_options

from figutils import RESULTS_DIR, emit, run_once


def run_matmul(sched):
    app = MatmulApp(n_tiles=12, variant="hyb")
    machine = minotauro_node(8, 2, noise_cv=0.02, seed=4)
    app.register_cost_models(machine)
    rt = OmpSsRuntime(machine, sched)
    with rt:
        app.master(rt)
    res = rt.result()
    return res, res.gflops(app.total_flops())


def sweep():
    RESULTS_DIR.mkdir(exist_ok=True)
    store = ProfileStore(RESULTS_DIR / "matmul_profile_store.json")
    if store.exists():
        store.path.unlink()

    rows = {}
    cold = VersioningScheduler()
    cold_res, cold_gflops = run_matmul(cold)
    rows["cold"] = {**warm_start_summary(cold_res), "gflops": cold_gflops}

    store.begin_run()
    store.commit(cold.table, sim_time=cold_res.makespan)

    for policy in ("trust", "probation"):
        sched = VersioningScheduler(**warm_start_options(store, policy=policy))
        res, gflops = run_matmul(sched)
        rows[policy] = {**warm_start_summary(res), "gflops": gflops}
    return rows


def test_warmstart_time_to_reliable(benchmark):
    rows = run_once(benchmark, sweep)
    table = format_table(
        ["run", "time-to-reliable (s)", "learning", "reliable", "preloaded",
         "GFLOP/s"],
        [[name, r["time_to_reliable"], int(r["learning_dispatches"]),
          int(r["reliable_dispatches"]), int(r["preloaded_entries"]),
          r["gflops"]] for name, r in rows.items()],
        title="Profile store — cold vs warm time-to-reliable (matmul-hyb, "
        "8 SMP + 2 GPU)",
        floatfmt="{:.4f}",
    )
    emit("warmstart_time_to_reliable", table)

    cold, trust, probation = rows["cold"], rows["trust"], rows["probation"]
    # the cold run must actually have graduated for the comparison to mean
    # anything
    assert cold["time_to_reliable"] < float("inf")
    # trust skips learning entirely and graduates immediately
    assert trust["learning_dispatches"] == 0
    assert trust["time_to_reliable"] < cold["time_to_reliable"]
    # probation re-learns a shortened phase: between the two
    assert probation["time_to_reliable"] <= cold["time_to_reliable"]
    # warm-started throughput does not regress
    assert trust["gflops"] >= cold["gflops"] * 0.98
