#!/usr/bin/env python
"""Hybrid tiled matrix multiplication (the paper's §V-B1 evaluation).

Runs the mm-gpu and mm-hyb application variants under the three OmpSs
schedulers on simulated MinoTauro nodes, sweeping SMP worker counts,
and prints Figure-6/7/8-style output: GFLOP/s, transfer volumes, and
the per-version execution split of the versioning scheduler.

Run:  python examples/matmul_hybrid.py [--tiles 16]
"""

import argparse

from repro import minotauro_node
from repro.analysis.metrics import transfer_breakdown_gb, version_percentages
from repro.analysis.report import format_table, stacked_percentages
from repro.apps.matmul import VERSION_LEGEND, MatmulApp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiles", type=int, default=16,
                        help="tile-grid dimension (16 = the paper's 16384^2 matrix)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    smp_counts = (1, 4, 8, 12)
    perf_rows = []
    tx_rows = []
    splits = {}
    for smp in smp_counts:
        row = [f"{smp} SMP + 2 GPU"]
        for variant, sched in (("gpu", "affinity"), ("gpu", "dep"), ("hyb", "versioning")):
            app = MatmulApp(n_tiles=args.tiles, variant=variant)
            machine = minotauro_node(smp, 2, noise_cv=0.02, seed=args.seed)
            res = app.run(machine, sched)
            row.append(res.gflops)
            tx = transfer_breakdown_gb(res.run)
            tx_rows.append([f"{smp}smp", f"{variant}-{sched[:3]}",
                            tx["input_tx"], tx["output_tx"], tx["device_tx"]])
            if variant == "hyb":
                splits[f"{smp} SMP"] = version_percentages(
                    res.run, "matmul_tile_cublas", VERSION_LEGEND
                )
        perf_rows.append(row)

    print(format_table(
        ["config", "mm-gpu-aff", "mm-gpu-dep", "mm-hyb-ver"],
        perf_rows,
        title="Figure 6 — matmul performance (GFLOP/s, higher is better)",
    ))
    print()
    print(format_table(
        ["config", "run", "Input Tx", "Output Tx", "Device Tx"],
        tx_rows,
        title="Figure 7 — data transferred (GB)",
        floatfmt="{:.2f}",
    ))
    print()
    print(stacked_percentages(
        splits,
        title="Figure 8 — task versions run by the versioning scheduler",
        order=("CUBLAS", "CUDA", "SMP"),
    ))
    print()
    print("Note how the hand-coded CUDA version is only executed during the")
    print("initial learning phase (λ runs), after which CUBLAS — the faster")
    print("implementation on the same device — takes over, while the SMP")
    print("version keeps a share of the work that grows with worker count.")


if __name__ == "__main__":
    main()
