#!/usr/bin/env python
"""Post-mortem trace analysis and machine calibration from history.

Two workflows OmpSs users run on real systems, reproduced here:

1. **Trace analysis** (the Paraver workflow): run an application, export
   the execution trace, and compute utilisation timelines, the
   transfer/compute overlap fraction and the bottleneck worker.

2. **Machine distillation**: take the versioning scheduler's learned
   profile table from the run and turn it into cost models
   (`table_model_from_profile`) — a simulated machine built purely from
   execution history, the machine-side twin of the §VII hints file.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import OmpSsRuntime, VersioningScheduler, minotauro_node
from repro.analysis.traceexport import (
    critical_worker,
    overlap_fraction,
    trace_to_csv,
    utilisation_timeline,
)
from repro.apps.matmul import MatmulApp
from repro.sim.calibrate import table_model_from_profile


def sparkline(values, width=60) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    return "".join(blocks[int(v * (len(blocks) - 1))] for v in np.asarray(values)[idx])


def main() -> None:
    # ---- run the hybrid matmul under versioning -----------------------
    app = MatmulApp(n_tiles=10, variant="hyb")
    machine = minotauro_node(4, 2, noise_cv=0.02, seed=7)
    app.register_cost_models(machine)
    sched = VersioningScheduler()
    rt = OmpSsRuntime(machine, sched)
    with rt:
        app.master(rt)
    res = rt.result()
    print(f"run finished: {res.gflops(app.total_flops()):.1f} GFLOP/s, "
          f"{res.tasks_completed} tasks, makespan {res.makespan:.2f}s")

    # ---- 1. trace analysis --------------------------------------------
    with tempfile.TemporaryDirectory() as d:
        csv_path = Path(d) / "trace.csv"
        trace_to_csv(res.trace, csv_path)
        print(f"\ntrace exported: {len(res.trace)} records -> {csv_path.name}")

    print(f"transfer/compute overlap: {overlap_fraction(res.trace) * 100:.1f}% "
          "of transferred seconds hidden under execution")
    print(f"bottleneck worker       : {critical_worker(res.trace)}")
    print("\nutilisation timelines (one row per worker):")
    for worker, row in sorted(utilisation_timeline(res.trace, bins=120).items()):
        print(f"  {worker:>8} |{sparkline(row)}|")

    # ---- 2. distill a machine model from the learned profile ----------
    vset = sched.table.version_set("matmul_tile_cublas")
    model = table_model_from_profile(vset, "matmul_tile_cublas")
    tile_bytes = 3 * app.tile_size**2 * 8
    print("\ndistilled cost model (from the scheduler's own profile):")
    print(f"  CUBLAS tile @ {tile_bytes // 1024**2} MB data set -> "
          f"{model(tile_bytes, {}) * 1e3:.2f} ms per task")
    print("  (usable directly as a device cost model for future simulations)")


if __name__ == "__main__":
    main()
