#!/usr/bin/env python
"""Quickstart: two implementations of one task, scheduled adaptively.

This is the smallest complete program for the library:

1. declare a task with an SMP version and a (simulated) GPU version,
   tied together with ``implements`` — the Python rendering of the
   OmpSs pragmas in Figures 1 and 2 of the paper,
2. build a simulated heterogeneous node and teach it what each kernel
   costs,
3. run under the **versioning scheduler** and watch it learn which
   version to prefer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import OmpSsRuntime, VersioningScheduler, minotauro_node, target, task
from repro.sim.perfmodel import AffineBytesCostModel

# ----------------------------------------------------------------------
# 1. The task, in two versions.
#
#    #pragma omp target device(smp) copy_deps
#    #pragma omp task input([n]a) inout([n]b)
#    void saxpy(float *a, float *b);
# ----------------------------------------------------------------------
registry = {}  # private task registry (keeps repeated runs isolated)


@target(device="smp")
@task(inputs=["a"], inouts=["b"], registry=registry)
def saxpy(a, b):
    b += 2.0 * a


#    #pragma omp target device(cuda) implements(saxpy) copy_deps
@target(device="cuda", implements=saxpy)
@task(inputs=["a"], inouts=["b"], registry=registry)
def saxpy_cuda(a, b):
    b += 2.0 * a  # same computation; only the simulated cost differs


def main() -> None:
    # ------------------------------------------------------------------
    # 2. A MinoTauro-like node: 4 SMP cores + 1 GPU, plus kernel costs.
    #    The GPU streams 20x faster but every input must cross PCIe.
    # ------------------------------------------------------------------
    machine = minotauro_node(n_smp=4, n_gpus=1, noise_cv=0.05, seed=42)
    machine.register_kernel_for_kind("smp", "saxpy", AffineBytesCostModel(0.0, 1.0e9))
    machine.register_kernel_for_kind(
        "cuda", "saxpy_cuda", AffineBytesCostModel(10e-6, 20.0e9)
    )

    # ------------------------------------------------------------------
    # 3. Run 120 independent saxpy tasks under the versioning scheduler.
    # ------------------------------------------------------------------
    scheduler = VersioningScheduler(lam=3)
    rt = OmpSsRuntime(machine, scheduler)
    a = np.ones(1 << 16)
    bs = [np.zeros(1 << 16) for _ in range(120)]
    with rt:
        for b in bs:
            saxpy(a, b)
    result = rt.result()

    assert all(np.allclose(b, 2.0) for b in bs), "numerical result is wrong!"

    print(f"machine     : {machine}")
    print(f"makespan    : {result.makespan * 1e3:.2f} ms (simulated)")
    print(f"transfers   : {result.transfer_stats}")
    print(f"version runs: {result.version_counts['saxpy']}")
    print()
    print("What the scheduler learned (the paper's Table I structure):")
    print(scheduler.table.render())


if __name__ == "__main__":
    main()
