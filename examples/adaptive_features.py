#!/usr/bin/env python
"""The paper's §VII future-work features, implemented and demonstrated.

1. **External hints** — "the scheduler should also offer the possibility
   to receive external hints for tasks versions: for example, read an
   XML file ... written by OmpSs runtime from a previous application's
   execution."  We run once cold, save the learned profile table to an
   XML hints file, then warm-start a second run and compare how many
   learning-phase dispatches each needed.

2. **Range-based size grouping** — "it would be better to define the
   data sizes of each group in a reasonable range so that different
   calls to a task that process similar amounts of data would be joined
   together."  We run a workload whose task sizes jitter by a few bytes:
   exact grouping re-learns per unique size, relative grouping does not.

3. **Locality-aware versioning** — "we are going to provide the
   versioning scheduler with data locality information."  We compare
   transfer volumes between the plain and the locality-aware variants.

Run:  python examples/adaptive_features.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    LocalityVersioningScheduler,
    OmpSsRuntime,
    VersioningScheduler,
    load_hints,
    minotauro_node,
    save_hints,
    task,
)
from repro.runtime.dataregion import DataRegion
from repro.sim.perfmodel import AffineBytesCostModel


def build_workload(registry, sizes, repeats=30):
    """A single two-version task called with the given region sizes."""

    @task(inputs=["x"], outputs=["y"], device="smp", name="stencil_smp",
          registry=registry)
    def stencil(x, y):
        pass

    @task(inputs=["x"], outputs=["y"], device="cuda", implements="stencil_smp",
          name="stencil_gpu", registry=registry)
    def stencil_gpu(x, y):
        pass

    # Only a handful of distinct input regions, re-read by many tasks:
    # this is the regime where locality-aware placement pays off.
    xs = {}
    calls = []
    for r in range(repeats):
        size = sizes[r % len(sizes)]
        x = xs.setdefault((r % 4, size), DataRegion(("x", r % 4, size), size))
        y = DataRegion(("y", r), size)
        calls.append((stencil, x, y))
    return calls


def machine_with_kernels(seed=7):
    m = minotauro_node(2, 2, noise_cv=0.03, seed=seed)
    m.register_kernel_for_kind("smp", "stencil_smp", AffineBytesCostModel(0.0, 1.5e9))
    m.register_kernel_for_kind("cuda", "stencil_gpu", AffineBytesCostModel(5e-6, 12e9))
    return m


def run(scheduler, sizes, seed=7):
    calls = build_workload({}, sizes)
    rt = OmpSsRuntime(machine_with_kernels(seed), scheduler)
    with rt:
        for fn, x, y in calls:
            fn(x, y)
    return rt.result(), scheduler


def main() -> None:
    base_size = 8 * 1024 * 1024

    # ---- 1. hints: cold vs warm ---------------------------------------
    cold = VersioningScheduler()
    run(cold, [base_size])
    with tempfile.TemporaryDirectory() as d:
        hints_path = Path(d) / "profile.xml"
        save_hints(cold.table, hints_path)
        print(f"saved hints to {hints_path.name}:")
        print(hints_path.read_text()[:400], "...\n")
        warm = VersioningScheduler(hints=load_hints(hints_path))
        run(warm, [base_size])
    print(f"learning dispatches cold : {cold.learning_dispatches}")
    print(f"learning dispatches warm : {warm.learning_dispatches}  (hints skip λ-runs)")
    print()

    # ---- 2. exact vs range grouping on jittered sizes ------------------
    jittered = [base_size + d for d in (0, 1, -1, 17, -23, 64)]
    exact = VersioningScheduler(grouping="exact")
    run(exact, jittered)
    ranged = VersioningScheduler(grouping="relative", grouping_options={"tolerance": 0.1})
    run(ranged, jittered)
    print(f"size groups under exact grouping   : "
          f"{len(exact.table.version_set('stencil_smp'))} (one per unique byte count)")
    print(f"size groups under relative grouping: "
          f"{len(ranged.table.version_set('stencil_smp'))}")
    print(f"learning dispatches exact / ranged : "
          f"{exact.learning_dispatches} / {ranged.learning_dispatches}")
    print()

    # ---- 3. plain vs locality-aware placement --------------------------
    plain_res, _ = run(VersioningScheduler(), [base_size])
    loc_res, _ = run(LocalityVersioningScheduler(), [base_size])
    print("transfers, plain versioning   :", plain_res.transfer_stats)
    print("transfers, locality versioning:", loc_res.transfer_stats)
    print(f"makespan  plain / locality    : "
          f"{plain_res.makespan * 1e3:.1f} / {loc_res.makespan * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
