#!/usr/bin/env python
"""Cholesky factorization and the potrf bottleneck (§V-B2).

The potrf task gates every iteration of the tiled Cholesky — "it acts
like a bottleneck" — which makes version placement decisions visible:
the versioning scheduler learns that the SMP potrf cannot be hidden by
the graph's limited look-ahead and routes (nearly) all potrf instances
to the GPUs, keeping only the λ learning runs on the CPU (Figure 11).

This example runs the three application variants, prints the Figure
9/10-style results, and shows an execution-trace excerpt so the potrf
critical path is visible.

Run:  python examples/cholesky_bottleneck.py [--blocks 16]
"""

import argparse

from repro import minotauro_node
from repro.analysis.metrics import transfer_breakdown_gb, version_percentages
from repro.analysis.report import format_table, stacked_percentages
from repro.apps.cholesky import VERSION_LEGEND, CholeskyApp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=16,
                        help="block-grid dimension (16 = the paper's 32768^2 matrix)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    perf_rows = []
    tx_rows = []
    splits = {}
    for smp in (2, 8):
        row = [f"{smp} SMP + 2 GPU"]
        for label, variant, sched in (
            ("potrf-smp", "smp", "dep"),
            ("potrf-gpu", "gpu", "dep"),
            ("potrf-hyb-ver", "hyb", "versioning"),
        ):
            app = CholeskyApp(n_blocks=args.blocks, variant=variant)
            machine = minotauro_node(smp, 2, noise_cv=0.02, seed=args.seed)
            res = app.run(machine, sched)
            row.append(res.gflops)
            tx = transfer_breakdown_gb(res.run)
            tx_rows.append([f"{smp}smp", label, tx["input_tx"], tx["output_tx"],
                            tx["device_tx"]])
            if variant == "hyb":
                splits[f"{smp} SMP"] = version_percentages(
                    res.run, "potrf_magma", VERSION_LEGEND
                )
        perf_rows.append(row)

    print(format_table(
        ["config", "potrf-smp", "potrf-gpu", "potrf-hyb-ver"],
        perf_rows,
        title="Figure 9 — Cholesky performance (GFLOP/s)",
    ))
    print()
    print(format_table(
        ["config", "run", "Input Tx", "Output Tx", "Device Tx"],
        tx_rows,
        title="Figure 10 — data transferred (GB)",
        floatfmt="{:.2f}",
    ))
    print()
    print(stacked_percentages(
        splits,
        title="Figure 11 — potrf versions run by the versioning scheduler",
        order=("GPU", "SMP"),
    ))

    # A small factorization so the Gantt chart is readable.
    app = CholeskyApp(n_blocks=6, variant="hyb")
    res = app.run(minotauro_node(2, 2, noise_cv=0.0, seed=args.seed), "versioning")
    print()
    print("Execution trace of a 6x6-block hybrid run (p=potrf, t=trsm, s=syrk, g=gemm):")
    print(res.run.trace.gantt(width=100))


if __name__ == "__main__":
    main()
