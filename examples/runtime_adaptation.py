#!/usr/bin/env python
"""'The scheduler is always learning' (§IV-B) — adaptation under drift.

The versioning scheduler records every execution, so it keeps adapting
after the learning phase: "this makes the scheduler more flexible and
easily adapts to application's behavior, even if it changes over the
whole execution."

This example injects a mid-run phase change — the GPU version of a task
suddenly degrades 20x (think thermal throttling or a co-scheduled job) —
and compares two estimators on the same workload:

* the paper's arithmetic running mean (slow to forget the good old days),
* the weighted mean its footnote 3 proposes (EWMA), which flips the
  placement decision within a handful of tasks.

Run:  python examples/runtime_adaptation.py
"""

from repro import OmpSsRuntime, VersioningScheduler, minotauro_node, task
from repro.analysis.report import format_table
from repro.runtime.dataregion import DataRegion
from repro.sim.perfmodel import FixedCostModel
from repro.sim.perturb import PhaseShiftCostModel

MB = 1024**2
N_TASKS = 240
SWITCH_AT = 60  # GPU degrades after this many executions


def run_with(estimator: str, options=None):
    registry = {}

    @task(inputs=["x"], inouts=["acc"], device="smp", name="kern_smp",
          registry=registry)
    def kern(x, acc):
        pass

    @task(inputs=["x"], inouts=["acc"], device="cuda", implements="kern_smp",
          name="kern_gpu", registry=registry)
    def kern_gpu(x, acc):
        pass

    machine = minotauro_node(2, 1, noise_cv=0.0, seed=0)
    machine.register_kernel_for_kind("smp", "kern_smp", FixedCostModel(0.004))
    machine.register_kernel_for_kind(
        "cuda", "kern_gpu",
        PhaseShiftCostModel([(FixedCostModel(0.001), SWITCH_AT),
                             (FixedCostModel(0.020), 0)]),
    )
    sched = VersioningScheduler(estimator=estimator, estimator_options=options)
    rt = OmpSsRuntime(machine, sched)
    accs = [DataRegion(("acc", c), MB) for c in range(4)]
    with rt:
        for i in range(N_TASKS):
            kern(DataRegion(("x", i), MB), accs[i % 4])
    res = rt.result()
    counts = res.version_counts["kern_smp"]
    return res.makespan, counts.get("kern_gpu", 0), counts.get("kern_smp", 0)


def main() -> None:
    rows = []
    for label, est, opts in (
        ("arithmetic mean (paper)", "mean", None),
        ("EWMA α=0.3 (footnote 3)", "ewma", {"alpha": 0.3}),
        ("EWMA α=0.6", "ewma", {"alpha": 0.6}),
    ):
        makespan, gpu, smp = run_with(est, opts)
        rows.append([label, makespan, gpu, smp])

    print(format_table(
        ["estimator", "makespan (s)", "GPU runs", "SMP runs"],
        rows,
        title=f"GPU version degrades 20x after {SWITCH_AT} executions "
              f"({N_TASKS} chained tasks)",
        floatfmt="{:.3f}",
    ))
    print()
    print("The running mean keeps crediting the GPU for its fast early phase")
    print("and routes work there long after it turned slow; the weighted")
    print("mean forgets quickly, flips to the SMP version and finishes sooner.")


if __name__ == "__main__":
    main()
