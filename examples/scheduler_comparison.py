#!/usr/bin/env python
"""Every scheduler plug-in on one workload.

OmpSs selects its scheduling policy at launch time through an
environment variable, "so it is very easy to run several times the same
application using different schedulers" (§III).  The equivalent here:
the same hybrid matmul under every registered policy — including via
``REPRO_SCHEDULER`` — with performance, transfers and version mix side
by side.

Run:  python examples/scheduler_comparison.py
      REPRO_SCHEDULER=affinity python examples/scheduler_comparison.py --env
"""

import argparse

from repro import available_schedulers, minotauro_node
from repro.analysis.metrics import transfer_breakdown_gb, version_percentages
from repro.analysis.report import format_table
from repro.apps.matmul import VERSION_LEGEND, MatmulApp
from repro.schedulers.registry import scheduler_from_env


def run_one(scheduler, variant):
    app = MatmulApp(n_tiles=8, variant=variant)
    machine = minotauro_node(4, 2, noise_cv=0.02, seed=5)
    return app, app.run(machine, scheduler)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--env", action="store_true",
                        help="run only the scheduler named by $REPRO_SCHEDULER")
    args = parser.parse_args()

    if args.env:
        sched = scheduler_from_env(default="dep")
        # non-versioning policies can only run the GPU-only variant
        variant = "hyb" if sched.supports_versions else "gpu"
        _, res = run_one(sched, variant)
        print(res.summary())
        return

    print("registered schedulers:", ", ".join(available_schedulers()))
    print()
    rows = []
    for name in ("bf", "dep", "affinity", "versioning", "versioning-locality"):
        from repro.schedulers.registry import create_scheduler

        sched = create_scheduler(name)
        variant = "hyb" if sched.supports_versions else "gpu"
        _, res = run_one(sched, variant)
        tx = transfer_breakdown_gb(res.run)
        shares = version_percentages(res.run, "matmul_tile_cublas", VERSION_LEGEND)
        rows.append([
            name,
            variant,
            res.gflops,
            tx["total"],
            shares.get("SMP", 0.0),
        ])

    print(format_table(
        ["scheduler", "variant", "GFLOP/s", "data moved (GB)", "% SMP tasks"],
        rows,
        title="One matmul, five scheduling policies (4 SMP + 2 GPU)",
    ))
    print()
    print("Only the versioning policies can exploit the hybrid variant's")
    print("SMP implementation — the pre-existing schedulers ignore the")
    print("implements clause and run the main (GPU) version exclusively.")


if __name__ == "__main__":
    main()
