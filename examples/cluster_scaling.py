#!/usr/bin/env python
"""OmpSs@cluster: the same application across multiple nodes.

The paper's introduction notes that OmpSs can run applications on
"clusters of SMPs and/or GPUs transparently from the application point
of view".  This example scales the hybrid matmul — unchanged — from one
simulated MinoTauro node to four, with all inter-node data movement
routed through the host memories over a 3 GB/s interconnect.

Watch two things: aggregate GFLOP/s grows sub-linearly (the network
throttles the far nodes), and the transfer mix shifts — cross-node hops
show up as extra Input/Device Tx that a single node never pays.

Run:  python examples/cluster_scaling.py
"""

from repro import cluster_machine
from repro.analysis.metrics import transfer_breakdown_gb
from repro.analysis.report import format_table
from repro.apps.matmul import MatmulApp


def main() -> None:
    rows = []
    for nodes in (1, 2, 4):
        machine = cluster_machine(
            n_nodes=nodes, smp_per_node=4, gpus_per_node=2, noise_cv=0.02, seed=1
        )
        app = MatmulApp(n_tiles=10, variant="hyb")
        res = app.run(machine, "versioning")
        tx = transfer_breakdown_gb(res.run)
        rows.append([
            machine.name,
            res.gflops,
            tx["input_tx"],
            tx["output_tx"],
            tx["device_tx"],
        ])

    print(format_table(
        ["machine", "GFLOP/s", "Input Tx GB", "Output Tx GB", "Device Tx GB"],
        rows,
        title="Hybrid matmul under the versioning scheduler, 1 -> 4 nodes",
    ))
    print()
    print("Scaling is sub-linear: every tile consumed off-node crosses the")
    print("3 GB/s interconnect (and is staged through both host memories),")
    print("so the scheduler keeps most of the work near the data while the")
    print("extra nodes contribute what the network can feed.")


if __name__ == "__main__":
    main()
