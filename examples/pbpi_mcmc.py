#!/usr/bin/env python
"""PBPI: when the GPU is *not* the answer (§V-B3).

PBPI's third computational loop only has an SMP implementation, so any
likelihood data computed on a GPU must cross PCIe back to the host every
MCMC generation.  Sending loops 1 and 2 wholesale to the GPUs (pbpi-gpu)
therefore loses to staying on the host (pbpi-smp); the versioning
scheduler finds the balance — GPU-heavy loop 1, a GPU/SMP split for
loop 2 — and beats both (Figure 12).

Run:  python examples/pbpi_mcmc.py [--generations 30]
"""

import argparse

from repro import minotauro_node
from repro.analysis.metrics import transfer_breakdown_gb, version_percentages
from repro.analysis.report import bar_chart, format_table, stacked_percentages
from repro.apps.pbpi import PBPI_LOOP_LEGENDS, PBPIApp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    times = {}
    tx_rows = []
    loop1_split = {}
    loop2_split = {}
    for smp in (4, 8, 12):
        for label, variant, sched in (
            ("pbpi-smp", "smp", "dep"),
            ("pbpi-gpu", "gpu", "dep"),
            ("pbpi-hyb", "hyb", "versioning"),
        ):
            app = PBPIApp(generations=args.generations, variant=variant)
            machine = minotauro_node(smp, 2, noise_cv=0.02, seed=args.seed)
            res = app.run(machine, sched)
            times[f"{label} ({smp} smp)"] = res.makespan
            tx = transfer_breakdown_gb(res.run)
            tx_rows.append([f"{smp}smp", label, tx["input_tx"], tx["output_tx"],
                            tx["device_tx"]])
            if variant == "hyb":
                loop1_split[f"{smp} SMP"] = version_percentages(
                    res.run, "pbpi_loop1_gpu", PBPI_LOOP_LEGENDS["loop1"]
                )
                loop2_split[f"{smp} SMP"] = version_percentages(
                    res.run, "pbpi_loop2_gpu", PBPI_LOOP_LEGENDS["loop2"]
                )

    print(bar_chart(times, title="Figure 12 — PBPI execution time (s, lower is better)",
                    unit="s"))
    print()
    print(format_table(
        ["config", "run", "Input Tx", "Output Tx", "Device Tx"],
        tx_rows,
        title="Figure 13 — data transferred (GB)",
        floatfmt="{:.2f}",
    ))
    print()
    print(stacked_percentages(loop1_split, title="Figure 14 — loop 1 version split",
                              order=("GPU", "SMP")))
    print()
    print(stacked_percentages(loop2_split, title="Figure 15 — loop 2 version split",
                              order=("GPU", "SMP")))


if __name__ == "__main__":
    main()
