#!/usr/bin/env python
"""Building custom machines: beyond the MinoTauro node.

The paper motivates the versioning scheduler with portability: the same
annotated application should adapt to whatever node it lands on.  This
example runs one hybrid matmul, unmodified, on three very different
simulated machines and shows how the scheduler's version mix shifts:

* a GPU-dense node (8 GPUs, 2 cores) — SMP versions nearly vanish,
* a CPU-only node — the GPU versions cannot run at all,
* a node with a slow, high-latency interconnect — SMP work becomes more
  attractive because GPU placements pay heavily for data movement.

Run:  python examples/custom_machine.py
"""

from repro import minotauro_node
from repro.analysis.metrics import version_percentages
from repro.analysis.report import format_table
from repro.apps.matmul import VERSION_LEGEND, MatmulApp
from repro.sim.devices import GPUDevice, SMPDevice
from repro.sim.perfmodel import PerfModel
from repro.sim.topology import HOST_SPACE, Link, Machine


def gpu_dense_node() -> Machine:
    return minotauro_node(n_smp=2, n_gpus=8, noise_cv=0.02, seed=3)


def cpu_only_node() -> Machine:
    devices = [SMPDevice(f"smp{i}", PerfModel(noise_cv=0.02, seed=i)) for i in range(16)]
    return Machine("cpu-only[16smp]", devices, links=[])


def slow_interconnect_node() -> Machine:
    """Two GPUs behind a 0.8 GB/s, 200 us link (think: remote devices)."""
    devices = [SMPDevice(f"smp{i}", PerfModel(noise_cv=0.02, seed=i)) for i in range(8)]
    links = []
    for i in range(2):
        devices.append(
            GPUDevice(f"gpu{i}", PerfModel(noise_cv=0.02, seed=100 + i))
        )
        links.append(Link(HOST_SPACE, f"gpu{i}", 0.8e9, 200e-6))
        links.append(Link(f"gpu{i}", HOST_SPACE, 0.8e9, 200e-6))
    links.append(Link("gpu0", "gpu1", 0.8e9, 200e-6))
    links.append(Link("gpu1", "gpu0", 0.8e9, 200e-6))
    return Machine("slow-link[8smp+2gpu]", devices, links)


def main() -> None:
    rows = []
    for machine in (gpu_dense_node(), cpu_only_node(), slow_interconnect_node()):
        app = MatmulApp(n_tiles=8, variant="hyb")
        res = app.run(machine, "versioning")
        shares = version_percentages(res.run, "matmul_tile_cublas", VERSION_LEGEND)
        rows.append([
            machine.name,
            res.gflops,
            shares.get("CUBLAS", 0.0),
            shares.get("CUDA", 0.0),
            shares.get("SMP", 0.0),
        ])

    print(format_table(
        ["machine", "GFLOP/s", "%CUBLAS", "%CUDA", "%SMP"],
        rows,
        title="One hybrid application, three machines (versioning scheduler)",
    ))
    print()
    print("The same source adapts: version shares follow the hardware.")


if __name__ == "__main__":
    main()
