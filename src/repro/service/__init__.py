"""Scheduler-as-a-service: a persistent async front-end over the simulator.

One long-lived process hosts the runtime for many tenants: streaming
task-graph submission over newline-delimited JSON, per-tenant admission
control with bounded backpressure, fair dispatch onto a pool of
simulator workers that keep live scheduler instances (so versioning
profile tables learn across submissions), and a result cache that
answers repeated submissions byte-identically without re-simulating.

Entry points: ``python -m repro.service serve|loadgen|submit|smoke``,
or in-process via :class:`~repro.service.server.ServiceHarness`.
"""

from repro.service.cache import CacheKey, ResultCache
from repro.service.client import (
    AdmissionRejectedError,
    AsyncServiceClient,
    HarnessClient,
    ServiceClient,
    ServiceError,
    SubmitOutcome,
)
from repro.service.routing import ServiceRouter, active_router, route_via_service
from repro.service.server import (
    PROTOCOL,
    SchedulerService,
    ServiceConfig,
    ServiceHarness,
    serve_tcp,
)
from repro.service.session import AdmissionError, Session
from repro.service.spec import SpecError, SubmissionSpec

__all__ = [
    "AdmissionError",
    "AdmissionRejectedError",
    "AsyncServiceClient",
    "CacheKey",
    "HarnessClient",
    "PROTOCOL",
    "ResultCache",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHarness",
    "ServiceRouter",
    "Session",
    "SpecError",
    "SubmissionSpec",
    "SubmitOutcome",
    "active_router",
    "route_via_service",
    "serve_tcp",
]
