"""Scheduler-as-a-service: a persistent async front-end over the simulator.

One long-lived process hosts the runtime for many tenants: streaming
task-graph submission over newline-delimited JSON, per-tenant admission
control with bounded backpressure, fair dispatch onto a pool of
simulator workers that keep live scheduler instances (so versioning
profile tables learn across submissions), and a result cache that
answers repeated submissions byte-identically without re-simulating.

The service is hardened for long-lived operation: per-submission
deadlines, supervised (self-replacing) workers, retrying clients with
decorrelated-jitter backoff, a crash-safe cache journal, graceful
SIGTERM drain, a poisoned-submission breaker, and a seeded chaos harness
(:mod:`repro.service.chaos`) that makes every one of those failure modes
reproducible in tests.

Entry points: ``python -m repro.service
serve|submit|health|loadgen|smoke|chaos-smoke``, or in-process via
:class:`~repro.service.server.ServiceHarness`.
"""

from repro.service.cache import CacheKey, ResultCache
from repro.service.chaos import (
    CachePersistRule,
    ConnectionFaultRule,
    FrameFaultRule,
    ServiceFaultInjector,
    ServiceFaultPlan,
    WorkerCrashRule,
    WorkerStallRule,
)
from repro.service.client import (
    RETRYABLE_CODES,
    AdmissionRejectedError,
    AsyncServiceClient,
    HarnessClient,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    SubmitOutcome,
)
from repro.service.routing import ServiceRouter, active_router, route_via_service
from repro.service.server import (
    PROTOCOL,
    QuarantinedError,
    SchedulerService,
    ServiceConfig,
    ServiceHarness,
    SubmissionBreaker,
    ValidationFailed,
    serve_tcp,
)
from repro.service.session import AdmissionError, Session
from repro.service.spec import SpecError, SubmissionSpec

__all__ = [
    "AdmissionError",
    "AdmissionRejectedError",
    "AsyncServiceClient",
    "CacheKey",
    "CachePersistRule",
    "ConnectionFaultRule",
    "FrameFaultRule",
    "HarnessClient",
    "PROTOCOL",
    "QuarantinedError",
    "RETRYABLE_CODES",
    "ResultCache",
    "RetryPolicy",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "ServiceHarness",
    "ServiceRouter",
    "Session",
    "SpecError",
    "SubmissionBreaker",
    "SubmissionSpec",
    "SubmitOutcome",
    "ValidationFailed",
    "WorkerCrashRule",
    "WorkerStallRule",
    "active_router",
    "route_via_service",
    "serve_tcp",
]
