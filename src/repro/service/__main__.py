"""Command-line entry points for the scheduler service.

* ``serve`` — run a TCP server in the foreground.
* ``submit`` — send one submission spec (inline JSON or a file).
* ``loadgen`` — drive a running server with concurrent clients.
* ``smoke`` — self-contained end-to-end check: start a server on an
  ephemeral port, run the load generator against it over TCP, assert
  the invariants CI cares about (everything completes, the cache gets
  hits, cached answers are byte-identical), print the report.  Exits
  non-zero on any violation, so CI needs no shell plumbing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import run_loadgen_sync, spec_pool
from repro.service.server import ServiceConfig, ServiceHarness


def _add_server_opts(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=4, help="simulator worker count")
    p.add_argument("--max-pending", type=int, default=16, help="per-tenant queue bound")
    p.add_argument(
        "--admission", choices=("reject", "wait"), default="reject",
        help="what a full tenant queue does to new submissions",
    )
    p.add_argument("--cache-path", default=None, help="persist the result cache here")


def _config_from(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        workers=args.workers,
        max_pending=args.max_pending,
        admission=args.admission,
        cache_path=args.cache_path,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import SchedulerService, serve_tcp

    async def main() -> None:
        service = SchedulerService(_config_from(args))
        await service.start()
        server = await serve_tcp(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro.service listening on {host}:{port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    if args.spec.startswith("@"):
        with open(args.spec[1:]) as fh:
            spec = json.load(fh)
    else:
        spec = json.loads(args.spec)
    with ServiceClient(args.host, args.port) as client:
        try:
            outcome = client.submit(spec, no_cache=args.no_cache)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    result = outcome.result()
    print(
        f"{outcome.id}: {'cached' if outcome.cached else 'cold'} "
        f"{outcome.graph_fp} makespan={result.makespan:.6f}s "
        f"tasks={result.tasks_completed} ({outcome.latency * 1e3:.1f}ms)"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    report = run_loadgen_sync(
        args.host,
        args.port,
        n_clients=args.clients,
        requests_per_client=args.requests,
        duplicate_fraction=args.duplicates,
        seed=args.seed,
    )
    print(report.summary())
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    return 0 if report.errors == 0 else 1


def cmd_smoke(args: argparse.Namespace) -> int:
    failures: list[str] = []
    config = _config_from(args)
    with ServiceHarness(config, tcp=True) as harness:
        assert harness.address is not None
        host, port = harness.address
        pool = spec_pool(seed=args.seed)
        report = run_loadgen_sync(
            host,
            port,
            n_clients=args.clients,
            requests_per_client=args.requests,
            duplicate_fraction=args.duplicates,
            seed=args.seed,
            pool=pool,
        )
        print(report.summary())

        if report.completed != report.requests:
            failures.append(
                f"{report.requests - report.completed} of {report.requests} "
                "submissions did not complete cleanly"
            )
        if report.cached == 0:
            failures.append("cache hit rate is zero under duplicate load")
        # byte-identical replay: a fresh submission of the hot spec must
        # reproduce the exact cached payload
        with ServiceClient(host, port) as client:
            first = client.submit(pool[0])
            second = client.submit(pool[0])
            if not (first.cached and second.cached):
                failures.append("post-loadgen resubmission missed the cache")
            a = json.dumps(first.result_payload, sort_keys=True)
            b = json.dumps(second.result_payload, sort_keys=True)
            if a != b:
                failures.append("cached resubmission payloads differ")
            stats = client.stats()
        print(
            "server: "
            f"{stats['jobs_completed']} jobs, {stats['cold_runs']} cold runs, "
            f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
            f"{stats['scheduler_pool']['reuses']} scheduler reuses"
        )
        if stats["jobs_failed"]:
            failures.append(f"{stats['jobs_failed']} jobs failed server-side")

    for f in failures:
        print(f"SMOKE FAIL: {f}", file=sys.stderr)
    if not failures:
        print("service smoke: OK")
    return 1 if failures else 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.service")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("serve", help="run a TCP server in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    _add_server_opts(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="send one submission spec")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("spec", help="inline JSON, or @path/to/spec.json")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("loadgen", help="drive a running server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests", type=int, default=6)
    p.add_argument("--duplicates", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="also print the report as JSON")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("smoke", help="end-to-end TCP smoke check (CI)")
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests", type=int, default=6)
    p.add_argument("--duplicates", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    _add_server_opts(p)
    p.set_defaults(fn=cmd_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
