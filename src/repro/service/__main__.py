"""Command-line entry points for the scheduler service.

* ``serve`` — run a TCP server in the foreground.  SIGTERM (and the
  first Ctrl-C) triggers a graceful drain: admission closes with typed
  ``shutting-down`` errors, in-flight submissions finish, the cache is
  flushed, then the process exits.
* ``submit`` — send one submission spec (inline JSON or a file).
* ``health`` — print a running server's health report as JSON.
* ``loadgen`` — drive a running server with concurrent clients.
* ``smoke`` — self-contained end-to-end check: start a server on an
  ephemeral port, run the load generator against it over TCP, assert
  the invariants CI cares about (everything completes, the cache gets
  hits, cached answers are byte-identical), print the report.  Exits
  non-zero on any violation, so CI needs no shell plumbing.
* ``chaos-smoke`` — the same idea under seeded fault injection: a
  fault-free baseline, then a soak with worker crashes, connection
  drops and corrupt frames with retrying clients, then an abrupt kill
  and a restart on the same cache path.  Asserts 100% completion,
  byte-identical results across all three phases, and journal-recovered
  cache hits after the crash.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Optional

from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.loadgen import run_loadgen_sync, spec_pool
from repro.service.server import ServiceConfig, ServiceHarness


def _add_server_opts(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=4, help="simulator worker count")
    p.add_argument("--max-pending", type=int, default=16, help="per-tenant queue bound")
    p.add_argument(
        "--admission", choices=("reject", "wait"), default="reject",
        help="what a full tenant queue does to new submissions",
    )
    p.add_argument("--cache-path", default=None, help="persist the result cache here")


def _config_from(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        workers=args.workers,
        max_pending=args.max_pending,
        admission=args.admission,
        cache_path=args.cache_path,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import SchedulerService, serve_tcp

    async def main() -> None:
        service = SchedulerService(_config_from(args))
        await service.start()
        server = await serve_tcp(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro.service listening on {host}:{port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without loop signal handlers
        await stop.wait()
        print("repro.service draining...", flush=True)
        server.close()
        await server.wait_closed()
        await service.shutdown(drain=True, timeout=args.drain_timeout)
        print("repro.service stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    with ServiceClient(args.host, args.port) as client:
        try:
            health = client.health()
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(json.dumps(health, sort_keys=True, indent=2))
    return 0 if health.get("status") in ("ok", "draining") else 1


def cmd_submit(args: argparse.Namespace) -> int:
    if args.spec.startswith("@"):
        with open(args.spec[1:]) as fh:
            spec = json.load(fh)
    else:
        spec = json.loads(args.spec)
    with ServiceClient(args.host, args.port) as client:
        try:
            outcome = client.submit(spec, no_cache=args.no_cache)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    result = outcome.result()
    print(
        f"{outcome.id}: {'cached' if outcome.cached else 'cold'} "
        f"{outcome.graph_fp} makespan={result.makespan:.6f}s "
        f"tasks={result.tasks_completed} ({outcome.latency * 1e3:.1f}ms)"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    report = run_loadgen_sync(
        args.host,
        args.port,
        n_clients=args.clients,
        requests_per_client=args.requests,
        duplicate_fraction=args.duplicates,
        seed=args.seed,
    )
    print(report.summary())
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    return 0 if report.errors == 0 else 1


def cmd_smoke(args: argparse.Namespace) -> int:
    failures: list[str] = []
    config = _config_from(args)
    with ServiceHarness(config, tcp=True) as harness:
        assert harness.address is not None
        host, port = harness.address
        pool = spec_pool(seed=args.seed)
        report = run_loadgen_sync(
            host,
            port,
            n_clients=args.clients,
            requests_per_client=args.requests,
            duplicate_fraction=args.duplicates,
            seed=args.seed,
            pool=pool,
        )
        print(report.summary())

        if report.completed != report.requests:
            failures.append(
                f"{report.requests - report.completed} of {report.requests} "
                "submissions did not complete cleanly"
            )
        if report.cached == 0:
            failures.append("cache hit rate is zero under duplicate load")
        # byte-identical replay: a fresh submission of the hot spec must
        # reproduce the exact cached payload
        with ServiceClient(host, port) as client:
            first = client.submit(pool[0])
            second = client.submit(pool[0])
            if not (first.cached and second.cached):
                failures.append("post-loadgen resubmission missed the cache")
            a = json.dumps(first.result_payload, sort_keys=True)
            b = json.dumps(second.result_payload, sort_keys=True)
            if a != b:
                failures.append("cached resubmission payloads differ")
            stats = client.stats()
        print(
            "server: "
            f"{stats['jobs_completed']} jobs, {stats['cold_runs']} cold runs, "
            f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
            f"{stats['scheduler_pool']['reuses']} scheduler reuses"
        )
        if stats["jobs_failed"]:
            failures.append(f"{stats['jobs_failed']} jobs failed server-side")

    for f in failures:
        print(f"SMOKE FAIL: {f}", file=sys.stderr)
    if not failures:
        print("service smoke: OK")
    return 1 if failures else 0


def cmd_chaos_smoke(args: argparse.Namespace) -> int:
    """Seeded chaos soak (see module docstring). Exits non-zero on any
    lost submission, divergent result, or failed journal recovery."""
    from repro.service.chaos import (
        ConnectionFaultRule,
        FrameFaultRule,
        ServiceFaultPlan,
        WorkerCrashRule,
    )

    failures: list[str] = []
    # share_scheduler=False: pooled schedulers are history-dependent, and
    # this soak's whole point is byte-identical results across phases
    pool = spec_pool(seed=args.seed, share_scheduler=False)
    retry = RetryPolicy(max_attempts=8, base_s=0.02, cap_s=0.5, seed=args.seed)
    load = dict(
        n_clients=args.clients,
        requests_per_client=args.requests,
        duplicate_fraction=args.duplicates,
        seed=args.seed,
        pool=pool,
    )

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache_path = os.path.join(tmp, "cache.json")

        # phase 1 — fault-free baseline (no persistence; just the truth)
        with ServiceHarness(ServiceConfig(workers=args.workers), tcp=True) as h:
            assert h.address is not None
            baseline = run_loadgen_sync(*h.address, **load)
        print(f"baseline: {baseline.summary()}")
        if baseline.completed != baseline.requests:
            failures.append("baseline loadgen did not complete cleanly")

        # phase 2 — chaos soak: crashes, drops, corrupt frames; retries on
        plan = ServiceFaultPlan(
            seed=args.seed,
            worker_crashes=(WorkerCrashRule(probability=args.fault_rate),),
            connection_faults=(
                ConnectionFaultRule(drop=args.fault_rate / 2, when="response"),
                ConnectionFaultRule(drop=args.fault_rate / 2, when="request"),
            ),
            frame_faults=(FrameFaultRule(corrupt=args.fault_rate / 2),),
        )
        chaos_harness = ServiceHarness(
            ServiceConfig(workers=args.workers, cache_path=cache_path, fault_plan=plan),
            tcp=True,
        ).start()
        assert chaos_harness.address is not None
        soak = run_loadgen_sync(*chaos_harness.address, retry=retry, **load)
        fired = chaos_harness.service.chaos.counters()["fired"]
        print(f"chaos soak: {soak.summary()}")
        print(f"faults fired: {json.dumps(fired, sort_keys=True)}")
        # phase 3 — mid-soak crash: abrupt kill, no cache flush; the
        # append-only journal is all the restarted server inherits
        chaos_harness.kill()

        if soak.completed != soak.requests:
            failures.append(
                f"chaos soak lost {soak.requests - soak.completed} of "
                f"{soak.requests} submissions despite retries"
            )
        if soak.result_digests != baseline.result_digests:
            failures.append("chaos soak results are not byte-identical to baseline")
        if sum(fired.values()) == 0:
            failures.append("fault plan fired nothing; soak proved nothing")

        with ServiceHarness(
            ServiceConfig(workers=args.workers, cache_path=cache_path), tcp=True
        ) as h2:
            assert h2.address is not None
            replay = run_loadgen_sync(*h2.address, **load)
        print(f"post-restart replay: {replay.summary()}")
        if replay.completed != replay.requests:
            failures.append("post-restart replay did not complete cleanly")
        if replay.result_digests != baseline.result_digests:
            failures.append("post-restart results are not byte-identical to baseline")
        if replay.cached == 0:
            failures.append(
                "no cache hits after restart: journal recovery recovered nothing"
            )

    for f in failures:
        print(f"CHAOS SMOKE FAIL: {f}", file=sys.stderr)
    if not failures:
        print("service chaos smoke: OK")
    return 1 if failures else 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.service")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("serve", help="run a TCP server in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    p.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="max seconds to wait for in-flight jobs on SIGTERM",
    )
    _add_server_opts(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("health", help="print a running server's health report")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    p.set_defaults(fn=cmd_health)

    p = sub.add_parser("submit", help="send one submission spec")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("spec", help="inline JSON, or @path/to/spec.json")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("loadgen", help="drive a running server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests", type=int, default=6)
    p.add_argument("--duplicates", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="also print the report as JSON")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("smoke", help="end-to-end TCP smoke check (CI)")
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests", type=int, default=6)
    p.add_argument("--duplicates", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    _add_server_opts(p)
    p.set_defaults(fn=cmd_smoke)

    p = sub.add_parser(
        "chaos-smoke", help="seeded fault-injection soak with kill/restart (CI)"
    )
    p.add_argument("--clients", type=int, default=6)
    p.add_argument("--requests", type=int, default=4)
    p.add_argument("--duplicates", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--fault-rate", type=float, default=0.08,
        help="worker-crash probability; halved for drops and corrupt frames",
    )
    p.add_argument("--workers", type=int, default=4)
    p.set_defaults(fn=cmd_chaos_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
