"""Submission specifications — the unit of work clients send the service.

A :class:`SubmissionSpec` is a declarative, JSON-serializable recipe for
one run: which application graph to build (by factory name + arguments),
which simulated machine to build it on, which scheduling policy, and the
noise seed.  The service rebuilds the app and machine from the spec,
fingerprints the resulting graph and machine, and keys its result cache
on ``(graph fingerprint, machine fingerprint, scheduler, seed, runtime
config)``.

Specs deliberately name *factories*, not pickled objects: everything on
the wire is data, the server decides what code runs, and two clients
sending the same spec hash to the same cache entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.sim.topology import Machine, MachineSpec, cluster_machine, minotauro_node


class SpecError(ValueError):
    """The submission spec is malformed or names unknown factories."""


def _build_minotauro(seed: int, **args: Any) -> Machine:
    return minotauro_node(spec=MachineSpec(seed=seed, **args))


def _build_cluster(seed: int, **args: Any) -> Machine:
    return cluster_machine(seed=seed, **args)


#: Machine factories a spec may name.  Each takes the spec's seed plus
#: the spec's machine args and returns a :class:`Machine`.
MACHINE_FACTORIES: dict[str, Callable[..., Machine]] = {
    "minotauro": _build_minotauro,
    "cluster": _build_cluster,
}


def _app_factories() -> dict[str, Callable[..., Any]]:
    # imported lazily: repro.apps pulls in NumPy kernels the service
    # front-end does not need until a spec is actually built
    from repro.apps.cholesky import CholeskyApp
    from repro.apps.matmul import MatmulApp
    from repro.apps.pbpi import PBPIApp

    return {"matmul": MatmulApp, "cholesky": CholeskyApp, "pbpi": PBPIApp}


#: RuntimeConfig fields a spec may set (all JSON scalars).
_CONFIG_FIELDS = {
    "overlap_transfers",
    "prefetch",
    "prefetch_window",
    "max_in_flight_tasks",
    "flush_on_wait",
    "execute_bodies",
    "check_aliasing",
    "max_events",
    "progress_horizon",
    "progress_stall_limit",
}


@dataclass(frozen=True)
class SubmissionSpec:
    """One run, described as data.

    ``seed`` is the *only* noise seed of the submission — machine args
    must not carry their own, so the cache key's seed term is
    unambiguous.  ``share_scheduler`` opts into the service's live
    scheduler pool: submissions with the same (scheduler, options,
    machine fingerprint) reuse one scheduler instance, so versioning
    profile tables keep learning across submissions from all tenants.
    With ``share_scheduler=False`` every cold run starts a fresh
    scheduler — byte-identical to a local batch run of the same spec.
    """

    app: str
    app_args: Mapping[str, Any] = field(default_factory=dict)
    machine: str = "minotauro"
    machine_args: Mapping[str, Any] = field(default_factory=dict)
    scheduler: str = "versioning"
    scheduler_options: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    config: Optional[Mapping[str, Any]] = None
    share_scheduler: bool = True
    #: Wall-clock budget in seconds from admission to completion; the
    #: service fails the submission with a typed ``deadline-exceeded``
    #: once it passes — while queued and cooperatively mid-simulation.
    #: Deliberately *not* part of the cache key: the deadline bounds how
    #: long the client waits, it does not change what the run computes.
    deadline_s: Optional[float] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "app": self.app,
            "app_args": dict(self.app_args),
            "machine": self.machine,
            "machine_args": dict(self.machine_args),
            "scheduler": self.scheduler,
            "scheduler_options": dict(self.scheduler_options),
            "seed": self.seed,
            "share_scheduler": self.share_scheduler,
        }
        if self.config is not None:
            out["config"] = dict(self.config)
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SubmissionSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"spec must be an object, got {type(payload).__name__}")
        unknown = set(payload) - {
            "app", "app_args", "machine", "machine_args", "scheduler",
            "scheduler_options", "seed", "config", "share_scheduler",
            "deadline_s",
        }
        if unknown:
            raise SpecError(f"unknown spec field(s): {', '.join(sorted(unknown))}")
        if "app" not in payload:
            raise SpecError("spec is missing the 'app' field")
        spec = cls(
            app=str(payload["app"]),
            app_args=dict(payload.get("app_args", {})),
            machine=str(payload.get("machine", "minotauro")),
            machine_args=dict(payload.get("machine_args", {})),
            scheduler=str(payload.get("scheduler", "versioning")),
            scheduler_options=dict(payload.get("scheduler_options", {})),
            seed=int(payload.get("seed", 0)),
            config=(
                dict(payload["config"]) if payload.get("config") is not None else None
            ),
            share_scheduler=bool(payload.get("share_scheduler", True)),
            deadline_s=(
                float(payload["deadline_s"])
                if payload.get("deadline_s") is not None
                else None
            ),
        )
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Cheap structural validation (no app/machine construction)."""
        if self.app not in _app_factories():
            raise SpecError(
                f"unknown app {self.app!r}; known: {', '.join(sorted(_app_factories()))}"
            )
        if self.machine not in MACHINE_FACTORIES:
            raise SpecError(
                f"unknown machine factory {self.machine!r}; "
                f"known: {', '.join(sorted(MACHINE_FACTORIES))}"
            )
        if "seed" in self.machine_args:
            raise SpecError(
                "machine_args must not carry 'seed'; use the spec's top-level seed"
            )
        if self.app_args.get("real"):
            raise SpecError(
                "real-arithmetic apps are not serviceable: their numerical "
                "outputs live in the submitting process"
            )
        if self.config is not None:
            bad = set(self.config) - _CONFIG_FIELDS
            if bad:
                raise SpecError(f"unknown config field(s): {', '.join(sorted(bad))}")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise SpecError("deadline_s must be positive (or omitted)")
        try:
            json.dumps(self.to_dict())
        except (TypeError, ValueError) as exc:
            raise SpecError(f"spec is not JSON-serializable: {exc}") from exc

    # ------------------------------------------------------------------
    # Server-side builders
    # ------------------------------------------------------------------
    def build_app(self) -> Any:
        """A fresh application instance (masters may consume state)."""
        factory = _app_factories()[self.app]
        try:
            return factory(**self.app_args)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad app_args for {self.app!r}: {exc}") from exc

    def build_machine(self) -> Machine:
        factory = MACHINE_FACTORIES[self.machine]
        try:
            return factory(self.seed, **self.machine_args)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad machine_args for {self.machine!r}: {exc}") from exc

    def build_config(self):
        from repro.runtime.runtime import RuntimeConfig

        if self.config is None:
            return None
        try:
            return RuntimeConfig(**dict(self.config))
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad runtime config: {exc}") from exc

    # ------------------------------------------------------------------
    def scheduler_key(self) -> str:
        """Canonical scheduler term of the cache key.

        Covers the policy name, its options, and whether the run drew
        from the shared (history-dependent) scheduler pool — a shared
        run and a fresh-scheduler run of the same spec are different
        experiments and must not collide in the cache.
        """
        return json.dumps(
            {
                "scheduler": self.scheduler,
                "options": dict(self.scheduler_options),
                "shared": self.share_scheduler,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def config_key(self) -> str:
        """Canonical runtime-config term of the cache key.

        Config fields (prefetch, overlap_transfers, ...) change
        simulation results, so two submissions differing only in config
        must not collide.  ``None`` and ``{}`` both canonicalize to
        ``"{}"``: each builds a default :class:`RuntimeConfig`, so they
        are the same experiment.
        """
        return json.dumps(
            dict(self.config or {}), sort_keys=True, separators=(",", ":")
        )


__all__ = ["MACHINE_FACTORIES", "SpecError", "SubmissionSpec"]
