"""The scheduler service: a persistent async front-end over the simulator.

One process hosts the simulator for many tenants.  Requests are
newline-delimited JSON; the same :meth:`SchedulerService.handle_request`
coroutine also serves as an in-process transport for tests and for
:class:`ServiceHarness`.  The moving parts:

* per-tenant :class:`~repro.service.session.Session` admission queues
  (bounded; reject or backpressure on overflow),
* a **dispatcher** coroutine draining sessions round-robin — at most one
  job per tenant per sweep, so a flooding tenant cannot starve others —
  into a bounded run queue,
* ``workers`` worker coroutines executing jobs in threads
  (``asyncio.to_thread``); simulations are pure Python compute but the
  event loop must stay responsive to new submissions,
* a **live scheduler pool**: submissions with ``share_scheduler=True``
  reuse one scheduler instance per (scheduler key, machine fingerprint),
  so versioning profile tables keep learning across submissions from all
  tenants — the paper's persistent-runtime behaviour, where the second
  tenant benefits from what the first tenant's runs taught the policy,
* a :class:`~repro.service.cache.ResultCache` answering repeated
  submissions without re-simulating, byte-identical to the first run.

Robustness machinery (all failure modes reproducible under a seeded
:class:`~repro.service.chaos.ServiceFaultPlan`):

* **supervision** — the dispatcher and every worker run under a
  supervisor: a coroutine that dies is logged, its in-flight job fails
  with a typed ``internal-error``, and a replacement is spawned, so the
  worker pool never shrinks;
* **deadlines** — a spec's ``deadline_s`` is enforced while the job is
  queued and cooperatively during simulation (the sim engine's
  wall-clock check), failing with typed ``deadline-exceeded``;
* **graceful drain** — :meth:`SchedulerService.shutdown` with
  ``drain=True`` stops admission (typed ``shutting-down``), finishes
  in-flight work, then flushes the cache; ``python -m repro.service
  serve`` wires SIGTERM to it;
* a **poisoned-submission breaker** — consecutive failures of one cache
  key trip a per-key circuit: identical submissions fast-fail with
  typed ``quarantined`` for a cooldown instead of burning workers;
* a ``health`` op reporting queue depths, live workers, pool and cache
  state.

Every response is a JSON object with ``"ok"``; failures carry a typed
``error.code`` (``bad-request`` / ``bad-spec`` / ``admission-rejected`` /
``run-failed`` / ``validation-failed`` / ``deadline-exceeded`` /
``internal-error`` / ``quarantined`` / ``shutting-down``) so clients can
branch without parsing prose.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.runtime.fingerprint import app_graph_fingerprint
from repro.service.cache import CacheKey, ResultCache
from repro.service.chaos import ServiceFaultInjector, ServiceFaultPlan
from repro.service.session import AdmissionError, Job, Session
from repro.service.spec import SpecError, SubmissionSpec
from repro.sim.engine import WallDeadlineExceededError

log = logging.getLogger(__name__)

PROTOCOL = "repro.service/1"


class ValidationFailed(Exception):
    """A cold run produced a trace the sanitizer rejects."""

    def __init__(self, messages: list[str]) -> None:
        super().__init__("; ".join(messages))
        self.messages = messages


class QuarantinedError(Exception):
    """The submission's cache key is quarantined by the breaker."""

    def __init__(self, key: CacheKey, retry_after: float) -> None:
        super().__init__(
            f"submission is quarantined after repeated failures; "
            f"retry in {retry_after:.1f}s"
        )
        self.key = key
        self.retry_after = retry_after


class WorkerCrashError(RuntimeError):
    """Injected worker death (chaos) — escapes the worker coroutine."""


@dataclass
class ServiceConfig:
    """Knobs of one service instance."""

    workers: int = 4            #: concurrent simulator workers
    max_pending: int = 16       #: per-tenant admission queue bound
    admission: str = "reject"   #: "reject" or "wait" on overflow
    cache_path: Optional[str] = None
    cache_entries: Optional[int] = 1024
    validate_results: bool = True  #: sanitize every cold run before caching
    journal: bool = True        #: append-only cache journal between snapshots
    #: Consecutive failures of one cache key before the breaker trips.
    breaker_threshold: int = 3
    #: Seconds identical submissions fast-fail (``quarantined``) after a trip.
    breaker_cooldown_s: float = 30.0
    #: Seeded service-fault injection (None = no chaos).
    fault_plan: Optional[ServiceFaultPlan] = None


@dataclass
class _SchedulerEntry:
    """One pooled live scheduler plus its serialization lock.

    A scheduler instance is single-run state *plus* learned profile
    tables; two simulations must not bind it concurrently, so cold runs
    drawing from the pool serialize on ``lock`` (runs with different
    keys still overlap freely).
    """

    scheduler: Any
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    runs: int = 0


class SubmissionBreaker:
    """Per-cache-key circuit breaker for poisoned submissions.

    ``threshold`` *consecutive* failures of one key trip its circuit:
    identical submissions fast-fail (typed ``quarantined``) for
    ``cooldown_s`` wall seconds instead of re-running a submission that
    deterministically fails.  Re-admission is probationary, mirroring
    worker quarantine in :mod:`repro.resilience.recovery`: after the
    cooldown one attempt is allowed — a failure re-trips immediately, a
    success clears the record.  Thread-safe (consulted from worker
    threads).
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("breaker cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.tripped = 0
        self._lock = threading.Lock()
        self._strikes: dict[CacheKey, int] = {}
        self._blocked_until: dict[CacheKey, float] = {}

    def blocked_for(self, key: CacheKey) -> Optional[float]:
        """Remaining quarantine seconds for ``key``, or None if admitted."""
        with self._lock:
            until = self._blocked_until.get(key)
            if until is None:
                return None
            remaining = until - time.monotonic()
            if remaining > 0:
                return remaining
            # cooldown over: probation — one more failure re-trips
            del self._blocked_until[key]
            self._strikes[key] = self.threshold - 1
            return None

    def record_failure(self, key: CacheKey) -> bool:
        """Count one failure; True if the circuit (re-)tripped."""
        with self._lock:
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            if strikes >= self.threshold:
                self._blocked_until[key] = time.monotonic() + self.cooldown_s
                self._strikes[key] = self.threshold  # saturate
                self.tripped += 1
                return True
            return False

    def record_success(self, key: CacheKey) -> None:
        with self._lock:
            self._strikes.pop(key, None)
            self._blocked_until.pop(key, None)

    def active(self) -> int:
        """Number of keys currently quarantined."""
        with self._lock:
            now = time.monotonic()
            return sum(1 for until in self._blocked_until.values() if until > now)


class SchedulerService:
    """Transport-agnostic service core (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ValueError("need at least one worker")
        plan = self.config.fault_plan
        self.chaos: Optional[ServiceFaultInjector] = (
            plan.injector() if plan is not None and not plan.empty else None
        )
        self.cache = ResultCache(
            self.config.cache_path,
            max_entries=self.config.cache_entries,
            journal=self.config.journal,
            persist_fault=self.chaos.persist_fault if self.chaos is not None else None,
        )
        self.breaker = SubmissionBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self.sessions: dict[str, Session] = {}
        self._scheduler_pool: dict[tuple[str, str], _SchedulerEntry] = {}
        self._pool_lock = threading.Lock()
        # canonical (app, app_args, machine, machine_args) -> the two
        # fingerprints of the cache key.  A captured graph and a built
        # machine are deterministic functions of those spec fields, so
        # repeated submissions skip graph capture entirely — that is
        # what keeps a cache hit at transport cost instead of
        # graph-construction cost.
        self._fp_cache: dict[str, tuple[str, str]] = {}
        self._fp_lock = threading.Lock()
        # cold_runs / scheduler_reuses are bumped from worker threads;
        # += is not atomic, so stats mutation takes this lock
        self._stats_lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._run_queue: "asyncio.Queue[Job]" = asyncio.Queue(
            maxsize=2 * self.config.workers
        )
        self._work_event = asyncio.Event()
        self._dispatch_task: Optional[asyncio.Task] = None
        self._worker_tasks: dict[int, asyncio.Task] = {}
        self._inflight: dict[int, Job] = {}
        self._running = False
        self._draining = False
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.cold_runs = 0
        self.scheduler_reuses = 0
        self.workers_replaced = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._draining = False
        self._spawn_dispatcher()
        for i in range(self.config.workers):
            self._spawn_worker(i)

    def _all_tasks(self) -> list[asyncio.Task]:
        tasks = list(self._worker_tasks.values())
        if self._dispatch_task is not None:
            tasks.append(self._dispatch_task)
        return tasks

    async def stop(self) -> None:
        """Stop immediately: cancel loops, fail queued work, flush the cache.

        Queued and in-flight jobs fail with typed ``shutting-down`` —
        the retryable code, so clients holding them can resubmit against
        a restarted server (idempotent: results are cache-keyed).
        """
        self._running = False
        self._draining = True
        tasks = self._all_tasks()
        for t in tasks:
            t.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._dispatch_task = None
        self._worker_tasks = {}
        # anything still queued must not leave a client hanging
        for session in self.sessions.values():
            while True:
                try:
                    job = session.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._finish(job, _error(job.id, "shutting-down", "service stopped"))
        while True:
            try:
                job = self._run_queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._finish(job, _error(job.id, "shutting-down", "service stopped"))
        for job in list(self._inflight.values()):
            self._finish(job, _error(job.id, "shutting-down", "service stopped"))
        self._inflight.clear()
        self.cache.save()

    async def shutdown(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Drain, then stop.

        With ``drain=True`` (the default) admission closes first — new
        submissions fail with typed ``shutting-down`` — and the service
        waits for every queued and in-flight job to finish (bounded by
        ``timeout`` wall seconds, if given) before stopping and flushing
        the cache.  ``drain=False`` is :meth:`stop`.
        """
        self._draining = True
        if drain:
            deadline = time.perf_counter() + timeout if timeout is not None else None
            while self._outstanding():
                if deadline is not None and time.perf_counter() > deadline:
                    log.warning(
                        "drain timed out with %d jobs outstanding", self._outstanding()
                    )
                    break
                await asyncio.sleep(0.02)
        await self.stop()

    def _outstanding(self) -> int:
        queued = sum(s.queue.qsize() for s in self.sessions.values())
        return queued + self._run_queue.qsize() + len(self._inflight)

    # ------------------------------------------------------------------
    # Supervision: a dead dispatcher/worker is replaced, never mourned
    # ------------------------------------------------------------------
    def _spawn_dispatcher(self) -> None:
        task = asyncio.create_task(self._dispatch(), name="svc-dispatch")
        self._dispatch_task = task
        task.add_done_callback(self._on_dispatcher_exit)

    def _on_dispatcher_exit(self, task: asyncio.Task) -> None:
        if not self._running or task.cancelled():
            return
        exc = task.exception()
        log.warning("service dispatcher died (%r); replacing", exc)
        self.workers_replaced += 1
        self._spawn_dispatcher()
        self._work_event.set()  # re-check queues the dead sweep may have missed

    def _spawn_worker(self, index: int) -> None:
        task = asyncio.create_task(self._worker(index), name=f"svc-worker-{index}")
        self._worker_tasks[index] = task
        task.add_done_callback(lambda t, i=index: self._on_worker_exit(i, t))

    def _on_worker_exit(self, index: int, task: asyncio.Task) -> None:
        """Supervisor: fail the dead worker's job, spawn a replacement."""
        if not self._running or task.cancelled():
            return
        exc = task.exception()
        job = self._inflight.pop(index, None)
        log.warning(
            "service worker %d died (%r) holding job %s; replacing",
            index, exc, job.id if job is not None else "<none>",
        )
        if job is not None:
            self._finish(
                job,
                _error(
                    job.id,
                    "internal-error",
                    f"worker crashed while handling this submission: {exc}",
                ),
            )
        self.workers_replaced += 1
        self._spawn_worker(index)

    # ------------------------------------------------------------------
    # The in-process transport (TCP wraps this too)
    # ------------------------------------------------------------------
    async def handle_request(
        self, request: Mapping[str, Any], tenant: str = "anon"
    ) -> dict:
        if not isinstance(request, Mapping):
            return _error(None, "bad-request", "request must be a JSON object")
        rid = request.get("id")
        op = request.get("op", "submit")
        try:
            if op == "ping":
                return {"ok": True, "id": rid, "protocol": PROTOCOL}
            if op == "stats":
                return {"ok": True, "id": rid, "stats": self.stats()}
            if op == "health":
                return {"ok": True, "id": rid, "health": self.health()}
            if op == "invalidate-machine":
                mfp = request.get("machine_fp")
                if not isinstance(mfp, str):
                    return _error(rid, "bad-request", "invalidate-machine needs machine_fp")
                return {"ok": True, "id": rid, "invalidated": self.cache.invalidate_machine(mfp)}
            if op == "submit":
                return await self._submit(request, tenant)
            return _error(rid, "bad-request", f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # the transport must always answer
            return _error(rid, "run-failed", f"{type(exc).__name__}: {exc}")

    async def _submit(self, request: Mapping[str, Any], tenant: str) -> dict:
        rid = request.get("id") or f"job-{next(self._job_ids)}"
        tenant = str(request.get("tenant", tenant))
        if self._draining:
            return _error(
                rid, "shutting-down",
                "service is draining and admits no new submissions",
                tenant=tenant,
            )
        try:
            spec = SubmissionSpec.from_dict(request.get("spec"))
        except SpecError as exc:
            return _error(rid, "bad-spec", str(exc))
        job = Job(
            id=str(rid),
            tenant=tenant,
            spec=spec,
            no_cache=bool(request.get("no_cache", False)),
            submitted_at=time.perf_counter(),
        )
        session = self._session(tenant)
        try:
            await session.admit(job)
        except AdmissionError as exc:
            return _error(job.id, exc.code, str(exc), tenant=tenant)
        self._work_event.set()
        return await job.future

    def _session(self, tenant: str) -> Session:
        session = self.sessions.get(tenant)
        if session is None:
            session = Session(
                tenant,
                max_pending=self.config.max_pending,
                admission=self.config.admission,
            )
            self.sessions[tenant] = session
        return session

    def release_session(self, tenant: str) -> bool:
        """Drop ``tenant``'s session if it is idle (no queued jobs).

        Transports call this when a connection-scoped tenant
        (``conn-N``) disconnects, so a long-running server does not
        accumulate one dead session per connection ever made.  A session
        with queued jobs stays — the dispatcher still owns them.  Runs
        on the event loop, like every other ``self.sessions`` access.
        """
        session = self.sessions.get(tenant)
        if session is not None and session.queue.empty():
            del self.sessions[tenant]
            return True
        return False

    # ------------------------------------------------------------------
    # Dispatcher and workers
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Round-robin: one job per session per sweep into the run queue."""
        while True:
            await self._work_event.wait()
            self._work_event.clear()
            moved = True
            while moved:
                moved = False
                for session in list(self.sessions.values()):
                    try:
                        job = session.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        continue
                    await self._run_queue.put(job)  # bounded: throttles the sweep
                    moved = True

    async def _worker(self, index: int) -> None:
        while True:
            job = await self._run_queue.get()
            job.started_at = time.perf_counter()
            # the job stays in _inflight until answered: if this
            # coroutine dies, the supervisor finds and fails it there
            self._inflight[index] = job
            fault = self.chaos.worker_fault() if self.chaos is not None else None
            if fault is not None:
                kind, arg = fault
                if kind == "crash":
                    raise WorkerCrashError(f"injected worker crash on job {job.id}")
                if kind == "stall":
                    await asyncio.sleep(arg)
            deadline_at = job.deadline_at
            if deadline_at is not None and time.perf_counter() > deadline_at:
                self._finish(
                    job,
                    _error(
                        job.id, "deadline-exceeded",
                        f"deadline of {job.spec.deadline_s}s passed while queued",
                    ),
                )
                self._inflight.pop(index, None)
                continue
            try:
                response = await asyncio.to_thread(self._execute, job)
            except SpecError as exc:
                response = _error(job.id, "bad-spec", str(exc))
            except ValidationFailed as exc:
                response = _error(job.id, "validation-failed", str(exc))
            except WallDeadlineExceededError:
                response = _error(
                    job.id, "deadline-exceeded",
                    f"deadline of {job.spec.deadline_s}s passed mid-simulation",
                )
            except QuarantinedError as exc:
                response = _error(
                    job.id, "quarantined", str(exc), retry_after=exc.retry_after
                )
            except asyncio.CancelledError:
                self._finish(job, _error(job.id, "shutting-down", "service stopped"))
                self._inflight.pop(index, None)
                raise
            except Exception as exc:
                response = _error(job.id, "run-failed", f"{type(exc).__name__}: {exc}")
            self._finish(job, response)
            self._inflight.pop(index, None)

    def _finish(self, job: Job, response: dict) -> None:
        job.finished_at = time.perf_counter()
        session = self.sessions.get(job.tenant)
        if response.get("ok"):
            self.jobs_completed += 1
            if session is not None:
                session.stats.completed += 1
            response["elapsed"] = job.finished_at - job.submitted_at
        else:
            self.jobs_failed += 1
            if session is not None:
                session.stats.failed += 1
                if response.get("error", {}).get("code") == "deadline-exceeded":
                    session.stats.deadline_exceeded += 1
            response.setdefault("tenant", job.tenant)
        if not job.future.done():
            job.future.set_result(response)

    # ------------------------------------------------------------------
    # Job execution (worker thread)
    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> dict:
        """Fingerprint, consult the cache and breaker, simulate on a miss."""
        import json

        from repro.sim.calibrate import machine_fingerprint

        spec = job.spec
        fp_key = json.dumps(
            {
                "app": spec.app,
                "app_args": dict(spec.app_args),
                "machine": spec.machine,
                "machine_args": dict(spec.machine_args),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._fp_lock:
            fps = self._fp_cache.get(fp_key)
        machine = app = None
        if fps is None:
            graph_fp = app_graph_fingerprint(spec.build_app())
            machine = spec.build_machine()
            app = spec.build_app()
            app.register_cost_models(machine)
            machine_fp = machine_fingerprint(machine)
            with self._fp_lock:
                self._fp_cache[fp_key] = (graph_fp, machine_fp)
        else:
            graph_fp, machine_fp = fps
        key = CacheKey(
            graph_fp, machine_fp, spec.scheduler_key(), spec.seed, spec.config_key()
        )

        if not job.no_cache:
            payload = self.cache.lookup(key)
            if payload is not None:
                return self._ok(job, key, payload, cached=True)

        retry_after = self.breaker.blocked_for(key)
        if retry_after is not None:
            raise QuarantinedError(key, retry_after)

        if machine is None:
            machine = spec.build_machine()
            app = spec.build_app()
            app.register_cost_models(machine)

        try:
            result = self._simulate(job, spec, machine, app, machine_fp)
        except (SpecError, WallDeadlineExceededError, QuarantinedError):
            raise  # not the submission poisoning workers — no strike
        except Exception:
            if self.breaker.record_failure(key):
                log.warning(
                    "breaker tripped for cache key %s after %d consecutive failures",
                    key.graph_fp, self.breaker.threshold,
                )
            raise
        self.breaker.record_success(key)

        from repro.runtime.serialize import run_result_to_dict

        payload = run_result_to_dict(result)
        self.cache.insert(key, payload, meta={"app": spec.app, "tenant": job.tenant})
        return self._ok(job, key, payload, cached=False)

    def _simulate(
        self, job: Job, spec: SubmissionSpec, machine: Any, app: Any, machine_fp: str
    ) -> Any:
        """One cold run (worker thread): simulate, then sanitize."""
        from repro.runtime.runtime import OmpSsRuntime

        entry = self._pool_entry(spec, machine_fp) if spec.share_scheduler else None
        if entry is not None:
            with entry.lock:
                rt = OmpSsRuntime(machine, entry.scheduler, config=spec.build_config())
                rt.engine.wall_deadline = job.deadline_at
                with rt:
                    app.master(rt)
                result = rt.result()
                entry.runs += 1
                if entry.runs > 1:
                    with self._stats_lock:
                        self.scheduler_reuses += 1
        else:
            rt = OmpSsRuntime(
                machine,
                spec.scheduler,
                config=spec.build_config(),
                scheduler_options=dict(spec.scheduler_options),
            )
            rt.engine.wall_deadline = job.deadline_at
            with rt:
                app.master(rt)
            result = rt.result()
        with self._stats_lock:
            self.cold_runs += 1

        if self.config.validate_results:
            from repro.sanitizer.diagnostics import Severity
            from repro.sanitizer.invariants import validate_run

            errors = [
                f"{d.code}: {d.message}"
                for d in validate_run(result)
                if d.severity is Severity.ERROR
            ]
            if errors:
                raise ValidationFailed(errors)
        return result

    def _pool_entry(self, spec: SubmissionSpec, machine_fp: str) -> _SchedulerEntry:
        from repro.schedulers.registry import create_scheduler

        pool_key = (spec.scheduler_key(), machine_fp)
        with self._pool_lock:
            entry = self._scheduler_pool.get(pool_key)
            if entry is None:
                entry = _SchedulerEntry(
                    scheduler=create_scheduler(
                        spec.scheduler, **dict(spec.scheduler_options)
                    )
                )
                self._scheduler_pool[pool_key] = entry
            return entry

    def _ok(self, job: Job, key: CacheKey, payload: dict, *, cached: bool) -> dict:
        return {
            "ok": True,
            "id": job.id,
            "tenant": job.tenant,
            "cached": cached,
            "graph_fp": key.graph_fp,
            "machine_fp": key.machine_fp,
            "result": payload,
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._pool_lock:
            pool = {
                "entries": len(self._scheduler_pool),
                "reuses": self.scheduler_reuses,
            }
        return {
            "protocol": PROTOCOL,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "cold_runs": self.cold_runs,
            "workers_replaced": self.workers_replaced,
            "cache": self.cache.stats.as_dict(),
            "cache_entries": len(self.cache),
            "scheduler_pool": pool,
            "sessions": {t: s.stats.as_dict() for t, s in self.sessions.items()},
        }

    def health(self) -> dict:
        """Liveness snapshot: what an operator (or a drain script) polls."""
        live = sum(1 for t in self._worker_tasks.values() if not t.done())
        with self._pool_lock:
            pool_size = len(self._scheduler_pool)
        return {
            "status": "draining" if self._draining else "ok",
            "workers": {
                "configured": self.config.workers,
                "live": live,
                "replaced": self.workers_replaced,
            },
            "queues": {t: s.pending() for t, s in self.sessions.items()},
            "run_queue_depth": self._run_queue.qsize(),
            "inflight": len(self._inflight),
            "scheduler_pool_size": pool_size,
            "cache": self.cache.stats.as_dict(),
            "cache_entries": len(self.cache),
            "breaker": {"active": self.breaker.active(), "tripped": self.breaker.tripped},
            "chaos": self.chaos.counters() if self.chaos is not None else None,
        }


def _error(rid: Optional[str], code: str, message: str, **extra: Any) -> dict:
    out: dict[str, Any] = {
        "ok": False,
        "id": rid,
        "error": {"code": code, "message": message},
    }
    out.update(extra)
    return out


# ----------------------------------------------------------------------
# TCP transport: newline-delimited JSON over a stream
# ----------------------------------------------------------------------
MAX_LINE = 8 * 1024 * 1024  # a spec is small; a result payload is not ours to read


def _corrupt_frame(data: bytes) -> bytes:
    """Injected frame damage: framing intact, payload unparseable."""
    body, nl = data[:-1], data[-1:]
    mid = len(body) // 2
    return body[:mid] + b"\x00\x00\x00\x00" + body[mid:] + nl


async def serve_tcp(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind a newline-delimited-JSON listener onto ``service``.

    Each connection is one tenant by default (``conn-N``), released on
    disconnect; requests may override with an explicit ``"tenant"``
    field (named tenants persist across connections).  Requests on one
    connection are processed concurrently (pipelining) — responses carry
    the request ``id`` for correlation and writes are serialized.

    When the service carries a chaos injector, the transport consults it
    per request (connection drop/reset at the request or response point)
    and per response frame (corruption/truncation) — the wire-level
    failure modes the retrying clients are tested against.
    """
    import json

    conn_ids = itertools.count(1)

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        tenant = f"conn-{next(conn_ids)}"
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        chaos = service.chaos

        def die(how: str) -> None:
            if how == "reset":
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            else:
                writer.close()

        async def send(response: dict) -> None:
            data = json.dumps(response, sort_keys=True).encode() + b"\n"
            fault = chaos.frame_fault() if chaos is not None else None
            try:
                if fault == "corrupt":
                    data = _corrupt_frame(data)
                async with write_lock:
                    if fault == "truncate":
                        writer.write(data[: max(1, len(data) // 2)])
                        await writer.drain()
                        writer.close()
                        return
                    writer.write(data)
                    await writer.drain()
            except OSError:
                pass  # peer vanished mid-write; its retry reconnects

        async def answer(request: Any, ordinal: int) -> None:
            try:
                if isinstance(request, Mapping):
                    response = await service.handle_request(request, tenant)
                else:
                    response = _error(None, "bad-request", "request must be a JSON object")
                if chaos is not None:
                    fault = chaos.connection_fault("response", ordinal)
                    if fault is not None:
                        die(fault)  # the work happened; the answer is lost
                        return
                await send(response)
            except asyncio.CancelledError:
                raise
            except Exception:  # a handler bug must never kill the loop task
                log.exception("connection handler failed answering request %s", ordinal)

        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except ValueError:
                    # over-limit line: StreamReader.readline wraps
                    # LimitOverrunError in ValueError — answer, then
                    # drop the connection (the stream is mid-line and
                    # cannot be resynchronized)
                    await send(
                        _error(
                            None,
                            "bad-request",
                            f"request line exceeds {MAX_LINE} bytes",
                        )
                    )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                ordinal = 0
                if chaos is not None:
                    ordinal = chaos.request_ordinal()
                    fault = chaos.connection_fault("request", ordinal)
                    if fault is not None:
                        die(fault)  # dies before admission; nothing ran
                        break
                try:
                    request = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    task = asyncio.create_task(
                        send(_error(None, "bad-request", f"invalid JSON: {exc}"))
                    )
                else:
                    task = asyncio.create_task(answer(request, ordinal))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except asyncio.CancelledError:
            # server teardown cancelled us mid-read: finish cleanly —
            # a task left in the cancelled state trips asyncio's
            # StreamReaderProtocol done-callback (it calls
            # task.exception() unguarded on 3.11) and spams the loop's
            # exception handler on every drain with open connections
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # all of this connection's jobs are done (answer() awaited
            # their futures above), so its auto-created session is idle
            service.release_session(tenant)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    server = await asyncio.start_server(handle, host, port, limit=MAX_LINE)
    return server


# ----------------------------------------------------------------------
# Harness: run the service (and optionally TCP) on a background thread
# ----------------------------------------------------------------------
class ServiceHarness:
    """A running service owned by a background event-loop thread.

    Gives synchronous code — tests, benchmarks, the batch CLI — both
    transports: :meth:`request` calls straight into the service
    in-process, and with ``tcp=True`` the harness also listens on an
    ephemeral localhost port (:attr:`address`).  Use as a context
    manager; exit stops the loop and persists the cache.

    Unhandled event-loop exceptions are recorded in :attr:`loop_errors`
    — robustness tests assert it stays empty under protocol abuse.
    :meth:`kill` abandons the service without flushing anything, which
    is how tests simulate a crashed server (journal recovery).
    """

    def __init__(
        self, config: Optional[ServiceConfig] = None, *, tcp: bool = False
    ) -> None:
        self.service = SchedulerService(config)
        self._tcp = tcp
        self.address: Optional[tuple[str, int]] = None
        self.loop_errors: list[dict] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServiceHarness":
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            def record_error(
                loop: asyncio.AbstractEventLoop, context: dict
            ) -> None:
                self.loop_errors.append(context)
                loop.default_exception_handler(context)

            loop.set_exception_handler(record_error)
            self._loop = loop

            async def boot() -> None:
                await self.service.start()
                if self._tcp:
                    self._server = await serve_tcp(self.service)
                    self.address = self._server.sockets[0].getsockname()[:2]
                started.set()

            loop.run_until_complete(boot())
            loop.run_forever()
            try:
                # a kill() leaves connection handlers and workers mid-await;
                # run their cancellation to completion so the loop closes
                # clean (the *service* state is still abandoned unflushed)
                leftovers = asyncio.all_tasks(loop)
                for t in leftovers:
                    t.cancel()
                if leftovers:
                    loop.run_until_complete(
                        asyncio.gather(*leftovers, return_exceptions=True)
                    )
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()
            except RuntimeError:  # killed mid-flight; nothing left to salvage
                pass

        self._thread = threading.Thread(target=run, name="repro-service", daemon=True)
        self._thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        async def teardown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            await self.service.stop()

        asyncio.run_coroutine_threadsafe(teardown(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        self._loop = self._thread = self._server = None

    def drain(self, *, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: close admission, finish in-flight, flush."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=True, timeout=timeout), loop
        ).result(timeout=(timeout or 0) + 60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        self._loop = self._thread = self._server = None

    def kill(self) -> None:
        """Abandon the service without flushing — a simulated crash.

        No drain, no ``cache.save()``: whatever the append-only journal
        holds is all a restarted service gets to recover from.
        """
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        def abrupt() -> None:
            self.service._running = False  # mute supervision respawns
            for t in self.service._all_tasks():
                t.cancel()
            if self._server is not None:
                self._server.close()
            loop.stop()

        loop.call_soon_threadsafe(abrupt)
        thread.join(timeout=30)
        self._loop = self._thread = self._server = None

    def __enter__(self) -> "ServiceHarness":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    # -- the synchronous in-process transport ---------------------------
    def request(
        self, request: Mapping[str, Any], *, tenant: str = "local", timeout: float = 300.0
    ) -> dict:
        assert self._loop is not None, "harness not started"
        fut = asyncio.run_coroutine_threadsafe(
            self.service.handle_request(request, tenant), self._loop
        )
        return fut.result(timeout=timeout)


__all__ = [
    "MAX_LINE",
    "PROTOCOL",
    "QuarantinedError",
    "SchedulerService",
    "ServiceConfig",
    "ServiceHarness",
    "SubmissionBreaker",
    "ValidationFailed",
    "WorkerCrashError",
    "serve_tcp",
]
