"""The scheduler service: a persistent async front-end over the simulator.

One process hosts the simulator for many tenants.  Requests are
newline-delimited JSON; the same :meth:`SchedulerService.handle_request`
coroutine also serves as an in-process transport for tests and for
:class:`ServiceHarness`.  The moving parts:

* per-tenant :class:`~repro.service.session.Session` admission queues
  (bounded; reject or backpressure on overflow),
* a **dispatcher** coroutine draining sessions round-robin — at most one
  job per tenant per sweep, so a flooding tenant cannot starve others —
  into a bounded run queue,
* ``workers`` worker coroutines executing jobs in threads
  (``asyncio.to_thread``); simulations are pure Python compute but the
  event loop must stay responsive to new submissions,
* a **live scheduler pool**: submissions with ``share_scheduler=True``
  reuse one scheduler instance per (scheduler key, machine fingerprint),
  so versioning profile tables keep learning across submissions from all
  tenants — the paper's persistent-runtime behaviour, where the second
  tenant benefits from what the first tenant's runs taught the policy,
* a :class:`~repro.service.cache.ResultCache` answering repeated
  submissions without re-simulating, byte-identical to the first run.

Every response is a JSON object with ``"ok"``; failures carry a typed
``error.code`` (``bad-request`` / ``bad-spec`` / ``admission-rejected`` /
``run-failed`` / ``validation-failed``) so clients can branch without
parsing prose.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.runtime.fingerprint import app_graph_fingerprint
from repro.service.cache import CacheKey, ResultCache
from repro.service.session import AdmissionError, Job, Session
from repro.service.spec import SpecError, SubmissionSpec

PROTOCOL = "repro.service/1"


class ValidationFailed(Exception):
    """A cold run produced a trace the sanitizer rejects."""

    def __init__(self, messages: list[str]) -> None:
        super().__init__("; ".join(messages))
        self.messages = messages


@dataclass
class ServiceConfig:
    """Knobs of one service instance."""

    workers: int = 4            #: concurrent simulator workers
    max_pending: int = 16       #: per-tenant admission queue bound
    admission: str = "reject"   #: "reject" or "wait" on overflow
    cache_path: Optional[str] = None
    cache_entries: Optional[int] = 1024
    validate_results: bool = True  #: sanitize every cold run before caching


@dataclass
class _SchedulerEntry:
    """One pooled live scheduler plus its serialization lock.

    A scheduler instance is single-run state *plus* learned profile
    tables; two simulations must not bind it concurrently, so cold runs
    drawing from the pool serialize on ``lock`` (runs with different
    keys still overlap freely).
    """

    scheduler: Any
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    runs: int = 0


class SchedulerService:
    """Transport-agnostic service core (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ValueError("need at least one worker")
        self.cache = ResultCache(
            self.config.cache_path, max_entries=self.config.cache_entries
        )
        self.sessions: dict[str, Session] = {}
        self._scheduler_pool: dict[tuple[str, str], _SchedulerEntry] = {}
        self._pool_lock = threading.Lock()
        # canonical (app, app_args, machine, machine_args) -> the two
        # fingerprints of the cache key.  A captured graph and a built
        # machine are deterministic functions of those spec fields, so
        # repeated submissions skip graph capture entirely — that is
        # what keeps a cache hit at transport cost instead of
        # graph-construction cost.
        self._fp_cache: dict[str, tuple[str, str]] = {}
        self._fp_lock = threading.Lock()
        # cold_runs / scheduler_reuses are bumped from worker threads;
        # += is not atomic, so stats mutation takes this lock
        self._stats_lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._run_queue: "asyncio.Queue[Job]" = asyncio.Queue(
            maxsize=2 * self.config.workers
        )
        self._work_event = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.cold_runs = 0
        self.scheduler_reuses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tasks = [asyncio.create_task(self._dispatch(), name="svc-dispatch")]
        self._tasks += [
            asyncio.create_task(self._worker(i), name=f"svc-worker-{i}")
            for i in range(self.config.workers)
        ]

    async def stop(self) -> None:
        self._running = False
        for t in self._tasks:
            t.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # anything still queued must not leave a client hanging
        for session in self.sessions.values():
            while True:
                try:
                    job = session.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._finish(job, _error(job.id, "run-failed", "service stopped"))
        while True:
            try:
                job = self._run_queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._finish(job, _error(job.id, "run-failed", "service stopped"))
        self.cache.save()

    # ------------------------------------------------------------------
    # The in-process transport (TCP wraps this too)
    # ------------------------------------------------------------------
    async def handle_request(
        self, request: Mapping[str, Any], tenant: str = "anon"
    ) -> dict:
        if not isinstance(request, Mapping):
            return _error(None, "bad-request", "request must be a JSON object")
        rid = request.get("id")
        op = request.get("op", "submit")
        try:
            if op == "ping":
                return {"ok": True, "id": rid, "protocol": PROTOCOL}
            if op == "stats":
                return {"ok": True, "id": rid, "stats": self.stats()}
            if op == "invalidate-machine":
                mfp = request.get("machine_fp")
                if not isinstance(mfp, str):
                    return _error(rid, "bad-request", "invalidate-machine needs machine_fp")
                return {"ok": True, "id": rid, "invalidated": self.cache.invalidate_machine(mfp)}
            if op == "submit":
                return await self._submit(request, tenant)
            return _error(rid, "bad-request", f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # the transport must always answer
            return _error(rid, "run-failed", f"{type(exc).__name__}: {exc}")

    async def _submit(self, request: Mapping[str, Any], tenant: str) -> dict:
        rid = request.get("id") or f"job-{next(self._job_ids)}"
        tenant = str(request.get("tenant", tenant))
        try:
            spec = SubmissionSpec.from_dict(request.get("spec"))
        except SpecError as exc:
            return _error(rid, "bad-spec", str(exc))
        job = Job(
            id=str(rid),
            tenant=tenant,
            spec=spec,
            no_cache=bool(request.get("no_cache", False)),
            submitted_at=time.perf_counter(),
        )
        session = self._session(tenant)
        try:
            await session.admit(job)
        except AdmissionError as exc:
            return _error(job.id, exc.code, str(exc), tenant=tenant)
        self._work_event.set()
        return await job.future

    def _session(self, tenant: str) -> Session:
        session = self.sessions.get(tenant)
        if session is None:
            session = Session(
                tenant,
                max_pending=self.config.max_pending,
                admission=self.config.admission,
            )
            self.sessions[tenant] = session
        return session

    def release_session(self, tenant: str) -> bool:
        """Drop ``tenant``'s session if it is idle (no queued jobs).

        Transports call this when a connection-scoped tenant
        (``conn-N``) disconnects, so a long-running server does not
        accumulate one dead session per connection ever made.  A session
        with queued jobs stays — the dispatcher still owns them.  Runs
        on the event loop, like every other ``self.sessions`` access.
        """
        session = self.sessions.get(tenant)
        if session is not None and session.queue.empty():
            del self.sessions[tenant]
            return True
        return False

    # ------------------------------------------------------------------
    # Dispatcher and workers
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Round-robin: one job per session per sweep into the run queue."""
        while True:
            await self._work_event.wait()
            self._work_event.clear()
            moved = True
            while moved:
                moved = False
                for session in list(self.sessions.values()):
                    try:
                        job = session.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        continue
                    await self._run_queue.put(job)  # bounded: throttles the sweep
                    moved = True

    async def _worker(self, index: int) -> None:
        while True:
            job = await self._run_queue.get()
            job.started_at = time.perf_counter()
            try:
                response = await asyncio.to_thread(self._execute, job)
            except SpecError as exc:
                response = _error(job.id, "bad-spec", str(exc))
            except ValidationFailed as exc:
                response = _error(job.id, "validation-failed", str(exc))
            except asyncio.CancelledError:
                self._finish(job, _error(job.id, "run-failed", "service stopped"))
                raise
            except Exception as exc:
                response = _error(job.id, "run-failed", f"{type(exc).__name__}: {exc}")
            self._finish(job, response)

    def _finish(self, job: Job, response: dict) -> None:
        job.finished_at = time.perf_counter()
        session = self.sessions.get(job.tenant)
        if response.get("ok"):
            self.jobs_completed += 1
            if session is not None:
                session.stats.completed += 1
            response["elapsed"] = job.finished_at - job.submitted_at
        else:
            self.jobs_failed += 1
            if session is not None:
                session.stats.failed += 1
            response.setdefault("tenant", job.tenant)
        if not job.future.done():
            job.future.set_result(response)

    # ------------------------------------------------------------------
    # Job execution (worker thread)
    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> dict:
        """Fingerprint, consult the cache, simulate on a miss."""
        import json

        from repro.runtime.runtime import OmpSsRuntime
        from repro.sim.calibrate import machine_fingerprint

        spec = job.spec
        fp_key = json.dumps(
            {
                "app": spec.app,
                "app_args": dict(spec.app_args),
                "machine": spec.machine,
                "machine_args": dict(spec.machine_args),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._fp_lock:
            fps = self._fp_cache.get(fp_key)
        machine = app = None
        if fps is None:
            graph_fp = app_graph_fingerprint(spec.build_app())
            machine = spec.build_machine()
            app = spec.build_app()
            app.register_cost_models(machine)
            machine_fp = machine_fingerprint(machine)
            with self._fp_lock:
                self._fp_cache[fp_key] = (graph_fp, machine_fp)
        else:
            graph_fp, machine_fp = fps
        key = CacheKey(
            graph_fp, machine_fp, spec.scheduler_key(), spec.seed, spec.config_key()
        )

        if not job.no_cache:
            payload = self.cache.lookup(key)
            if payload is not None:
                return self._ok(job, key, payload, cached=True)

        if machine is None:
            machine = spec.build_machine()
            app = spec.build_app()
            app.register_cost_models(machine)

        entry = self._pool_entry(spec, machine_fp) if spec.share_scheduler else None
        if entry is not None:
            with entry.lock:
                rt = OmpSsRuntime(machine, entry.scheduler, config=spec.build_config())
                with rt:
                    app.master(rt)
                result = rt.result()
                entry.runs += 1
                if entry.runs > 1:
                    with self._stats_lock:
                        self.scheduler_reuses += 1
        else:
            rt = OmpSsRuntime(
                machine,
                spec.scheduler,
                config=spec.build_config(),
                scheduler_options=dict(spec.scheduler_options),
            )
            with rt:
                app.master(rt)
            result = rt.result()
        with self._stats_lock:
            self.cold_runs += 1

        if self.config.validate_results:
            from repro.sanitizer.diagnostics import Severity
            from repro.sanitizer.invariants import validate_run

            errors = [
                f"{d.code}: {d.message}"
                for d in validate_run(result)
                if d.severity is Severity.ERROR
            ]
            if errors:
                raise ValidationFailed(errors)

        from repro.runtime.serialize import run_result_to_dict

        payload = run_result_to_dict(result)
        self.cache.insert(key, payload, meta={"app": spec.app, "tenant": job.tenant})
        return self._ok(job, key, payload, cached=False)

    def _pool_entry(self, spec: SubmissionSpec, machine_fp: str) -> _SchedulerEntry:
        from repro.schedulers.registry import create_scheduler

        pool_key = (spec.scheduler_key(), machine_fp)
        with self._pool_lock:
            entry = self._scheduler_pool.get(pool_key)
            if entry is None:
                entry = _SchedulerEntry(
                    scheduler=create_scheduler(
                        spec.scheduler, **dict(spec.scheduler_options)
                    )
                )
                self._scheduler_pool[pool_key] = entry
            return entry

    def _ok(self, job: Job, key: CacheKey, payload: dict, *, cached: bool) -> dict:
        return {
            "ok": True,
            "id": job.id,
            "tenant": job.tenant,
            "cached": cached,
            "graph_fp": key.graph_fp,
            "machine_fp": key.machine_fp,
            "result": payload,
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._pool_lock:
            pool = {
                "entries": len(self._scheduler_pool),
                "reuses": self.scheduler_reuses,
            }
        return {
            "protocol": PROTOCOL,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "cold_runs": self.cold_runs,
            "cache": self.cache.stats.as_dict(),
            "cache_entries": len(self.cache),
            "scheduler_pool": pool,
            "sessions": {t: s.stats.as_dict() for t, s in self.sessions.items()},
        }


def _error(rid: Optional[str], code: str, message: str, **extra: Any) -> dict:
    out: dict[str, Any] = {
        "ok": False,
        "id": rid,
        "error": {"code": code, "message": message},
    }
    out.update(extra)
    return out


# ----------------------------------------------------------------------
# TCP transport: newline-delimited JSON over a stream
# ----------------------------------------------------------------------
MAX_LINE = 8 * 1024 * 1024  # a spec is small; a result payload is not ours to read


async def serve_tcp(
    service: SchedulerService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind a newline-delimited-JSON listener onto ``service``.

    Each connection is one tenant by default (``conn-N``), released on
    disconnect; requests may override with an explicit ``"tenant"``
    field (named tenants persist across connections).  Requests on one
    connection are processed concurrently (pipelining) — responses carry
    the request ``id`` for correlation and writes are serialized.
    """
    import json

    conn_ids = itertools.count(1)

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        tenant = f"conn-{next(conn_ids)}"
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def send(response: dict) -> None:
            async with write_lock:
                writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
                await writer.drain()

        async def answer(request: Any) -> None:
            if isinstance(request, Mapping):
                response = await service.handle_request(request, tenant)
            else:
                response = _error(None, "bad-request", "request must be a JSON object")
            await send(response)

        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except ValueError:
                    # over-limit line: StreamReader.readline wraps
                    # LimitOverrunError in ValueError — answer, then
                    # drop the connection (the stream is mid-line and
                    # cannot be resynchronized)
                    try:
                        await send(
                            _error(
                                None,
                                "bad-request",
                                f"request line exceeds {MAX_LINE} bytes",
                            )
                        )
                    except OSError:
                        pass
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    task = asyncio.create_task(
                        send(_error(None, "bad-request", f"invalid JSON: {exc}"))
                    )
                else:
                    task = asyncio.create_task(answer(request))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # all of this connection's jobs are done (answer() awaited
            # their futures above), so its auto-created session is idle
            service.release_session(tenant)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    server = await asyncio.start_server(handle, host, port, limit=MAX_LINE)
    return server


# ----------------------------------------------------------------------
# Harness: run the service (and optionally TCP) on a background thread
# ----------------------------------------------------------------------
class ServiceHarness:
    """A running service owned by a background event-loop thread.

    Gives synchronous code — tests, benchmarks, the batch CLI — both
    transports: :meth:`request` calls straight into the service
    in-process, and with ``tcp=True`` the harness also listens on an
    ephemeral localhost port (:attr:`address`).  Use as a context
    manager; exit stops the loop and persists the cache.
    """

    def __init__(
        self, config: Optional[ServiceConfig] = None, *, tcp: bool = False
    ) -> None:
        self.service = SchedulerService(config)
        self._tcp = tcp
        self.address: Optional[tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServiceHarness":
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def boot() -> None:
                await self.service.start()
                if self._tcp:
                    self._server = await serve_tcp(self.service)
                    self.address = self._server.sockets[0].getsockname()[:2]
                started.set()

            loop.run_until_complete(boot())
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=run, name="repro-service", daemon=True)
        self._thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return

        async def teardown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            await self.service.stop()

        asyncio.run_coroutine_threadsafe(teardown(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        self._loop = self._thread = self._server = None

    def __enter__(self) -> "ServiceHarness":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    # -- the synchronous in-process transport ---------------------------
    def request(
        self, request: Mapping[str, Any], *, tenant: str = "local", timeout: float = 300.0
    ) -> dict:
        assert self._loop is not None, "harness not started"
        fut = asyncio.run_coroutine_threadsafe(
            self.service.handle_request(request, tenant), self._loop
        )
        return fut.result(timeout=timeout)


__all__ = [
    "PROTOCOL",
    "SchedulerService",
    "ServiceConfig",
    "ServiceHarness",
    "ValidationFailed",
    "serve_tcp",
]
