"""Per-tenant session state: admission queues and backpressure.

Every connecting tenant gets a :class:`Session` holding a bounded
admission queue.  The dispatcher drains all sessions round-robin, so one
tenant flooding the service cannot starve the others — fairness is
structural, not probabilistic.

Two admission policies govern what happens when a tenant's queue is
full:

* ``"reject"`` (default) — the submission fails immediately with a
  typed :class:`AdmissionError` the transport turns into an
  ``admission-rejected`` error response.  The client learns *now* that
  it is over its budget; nothing hangs.
* ``"wait"`` — the submitting coroutine blocks on the queue, exerting
  backpressure up the transport (the TCP reader stops consuming, the
  kernel socket buffer fills, the client's writes stall).

Jobs carry an :class:`asyncio.Future` resolved by the worker that runs
them; the transport awaits it to answer the client.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from repro.service.spec import SubmissionSpec


class AdmissionError(Exception):
    """The tenant's admission queue is full and the policy is reject."""

    code = "admission-rejected"

    def __init__(self, tenant: str, limit: int) -> None:
        super().__init__(
            f"tenant {tenant!r} has {limit} submissions pending; "
            "retry after some complete (admission policy: reject)"
        )
        self.tenant = tenant
        self.limit = limit


@dataclass
class Job:
    """One admitted submission travelling through the service."""

    id: str
    tenant: str
    spec: SubmissionSpec
    no_cache: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    future: "asyncio.Future[dict]" = field(default_factory=asyncio.Future, repr=False)

    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute ``perf_counter`` deadline, or None without one."""
        if self.spec.deadline_s is None:
            return None
        return self.submitted_at + self.spec.deadline_s


@dataclass
class SessionStats:
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    deadline_exceeded: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "deadline_exceeded": self.deadline_exceeded,
        }


class Session:
    """One tenant's admission queue plus accounting."""

    def __init__(
        self,
        tenant: str,
        *,
        max_pending: int = 16,
        admission: str = "reject",
    ) -> None:
        if admission not in ("reject", "wait"):
            raise ValueError(f"unknown admission policy {admission!r}")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.tenant = tenant
        self.admission = admission
        self.max_pending = max_pending
        self.stats = SessionStats()
        self.queue: "asyncio.Queue[Job]" = asyncio.Queue(maxsize=max_pending)

    async def admit(self, job: Job) -> None:
        """Enqueue ``job`` per the admission policy.

        Raises :class:`AdmissionError` when the queue is full under the
        reject policy; blocks (backpressure) under wait.
        """
        if self.admission == "reject":
            try:
                self.queue.put_nowait(job)
            except asyncio.QueueFull:
                self.stats.rejected += 1
                raise AdmissionError(self.tenant, self.max_pending) from None
        else:
            await self.queue.put(job)
        self.stats.submitted += 1

    def pending(self) -> int:
        return self.queue.qsize()


__all__ = ["AdmissionError", "Job", "Session", "SessionStats"]
