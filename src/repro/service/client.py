"""Client-side bindings for the scheduler service.

Three flavours over the same request/response shapes:

* :class:`ServiceClient` — synchronous, one TCP connection, blocking
  socket I/O.  What a batch script (``reproduce.py --serve``) uses.
* :class:`AsyncServiceClient` — ``asyncio`` streams, for the load
  generator's many concurrent tenants.
* :class:`HarnessClient` — calls straight into an in-process
  :class:`~repro.service.server.ServiceHarness`, no sockets; what unit
  tests use.

All three normalise responses into :class:`SubmitOutcome` and raise
typed errors: :class:`AdmissionRejectedError` for admission overflow,
:class:`ServiceError` (with ``.code``) for everything else.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.service.spec import SubmissionSpec


class ServiceError(Exception):
    """The service answered with a typed error response."""

    def __init__(self, code: str, message: str, response: Optional[dict] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response or {}


class AdmissionRejectedError(ServiceError):
    """The tenant's admission queue was full under the reject policy."""


@dataclass
class SubmitOutcome:
    """One successful submission, decoded."""

    id: str
    cached: bool
    graph_fp: str
    machine_fp: str
    raw: dict          #: the full response (``raw["result"]`` is the payload)
    latency: float     #: client-observed round-trip seconds

    @property
    def result_payload(self) -> dict:
        return self.raw["result"]

    def result(self):
        """The deserialized :class:`RunResult` (live fields are None)."""
        from repro.runtime.serialize import run_result_from_dict

        return run_result_from_dict(self.raw["result"])


def _raise_for(response: dict) -> None:
    err = response.get("error") or {}
    code = err.get("code", "run-failed")
    message = err.get("message", "unknown service error")
    if code == "admission-rejected":
        raise AdmissionRejectedError(code, message, response)
    raise ServiceError(code, message, response)


def _decode_submit(response: dict, latency: float) -> SubmitOutcome:
    if not response.get("ok"):
        _raise_for(response)
    return SubmitOutcome(
        id=str(response.get("id")),
        cached=bool(response.get("cached")),
        graph_fp=str(response.get("graph_fp")),
        machine_fp=str(response.get("machine_fp")),
        raw=response,
        latency=latency,
    )


def _submit_request(
    spec: Union[SubmissionSpec, Mapping[str, Any]],
    *,
    rid: Optional[str],
    tenant: Optional[str],
    no_cache: bool,
) -> dict:
    payload = spec.to_dict() if isinstance(spec, SubmissionSpec) else dict(spec)
    request: dict[str, Any] = {"op": "submit", "spec": payload}
    if rid is not None:
        request["id"] = rid
    if tenant is not None:
        request["tenant"] = tenant
    if no_cache:
        request["no_cache"] = True
    return request


class _ClientOps:
    """Shared sync surface; subclasses provide :meth:`request`."""

    def request(self, request: Mapping[str, Any]) -> dict:
        raise NotImplementedError

    def submit(
        self,
        spec: Union[SubmissionSpec, Mapping[str, Any]],
        *,
        rid: Optional[str] = None,
        tenant: Optional[str] = None,
        no_cache: bool = False,
    ) -> SubmitOutcome:
        t0 = time.perf_counter()
        response = self.request(
            _submit_request(spec, rid=rid, tenant=tenant, no_cache=no_cache)
        )
        return _decode_submit(response, time.perf_counter() - t0)

    def ping(self) -> dict:
        response = self.request({"op": "ping"})
        if not response.get("ok"):
            _raise_for(response)
        return response

    def stats(self) -> dict:
        response = self.request({"op": "stats"})
        if not response.get("ok"):
            _raise_for(response)
        return response["stats"]


class ServiceClient(_ClientOps):
    """Blocking TCP client: one connection, one request in flight."""

    def __init__(self, host: str, port: int, *, timeout: float = 300.0) -> None:
        self.address = (host, port)
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def request(self, request: Mapping[str, Any]) -> dict:
        self._sock.sendall(json.dumps(dict(request)).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ServiceError("connection-closed", "server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class HarnessClient(_ClientOps):
    """In-process client over a started ServiceHarness (tests)."""

    def __init__(self, harness: Any, *, tenant: str = "local") -> None:
        self._harness = harness
        self._tenant = tenant

    def request(self, request: Mapping[str, Any]) -> dict:
        return self._harness.request(request, tenant=self._tenant)


class AsyncServiceClient:
    """``asyncio`` TCP client for concurrent load generation.

    One connection per instance; requests are serialized per connection
    (the load generator gets concurrency by opening many clients, which
    is also what makes each connection its own tenant server-side).
    """

    def __init__(self, host: str, port: int) -> None:
        self.address = (host, port)
        self._reader: Optional[Any] = None
        self._writer: Optional[Any] = None

    async def connect(self) -> "AsyncServiceClient":
        import asyncio

        from repro.service.server import MAX_LINE

        self._reader, self._writer = await asyncio.open_connection(
            *self.address, limit=MAX_LINE
        )
        return self

    async def request(self, request: Mapping[str, Any]) -> dict:
        assert self._reader is not None and self._writer is not None, "not connected"
        self._writer.write(json.dumps(dict(request)).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("connection-closed", "server closed the connection")
        return json.loads(line)

    async def submit(
        self,
        spec: Union[SubmissionSpec, Mapping[str, Any]],
        *,
        rid: Optional[str] = None,
        tenant: Optional[str] = None,
        no_cache: bool = False,
    ) -> SubmitOutcome:
        t0 = time.perf_counter()
        response = await self.request(
            _submit_request(spec, rid=rid, tenant=tenant, no_cache=no_cache)
        )
        return _decode_submit(response, time.perf_counter() - t0)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.close()


__all__ = [
    "AdmissionRejectedError",
    "AsyncServiceClient",
    "HarnessClient",
    "ServiceClient",
    "ServiceError",
    "SubmitOutcome",
]
