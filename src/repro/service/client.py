"""Client-side bindings for the scheduler service.

Three flavours over the same request/response shapes:

* :class:`ServiceClient` — synchronous, one TCP connection, blocking
  socket I/O.  What a batch script (``reproduce.py --serve``) uses.
* :class:`AsyncServiceClient` — ``asyncio`` streams, for the load
  generator's many concurrent tenants.
* :class:`HarnessClient` — calls straight into an in-process
  :class:`~repro.service.server.ServiceHarness`, no sockets; what unit
  tests use.

All three normalise responses into :class:`SubmitOutcome` and raise
typed errors: :class:`AdmissionRejectedError` for admission overflow,
:class:`ServiceError` (with ``.code``) for everything else — including
transport failures, which surface as ``connection-closed`` /
``connection-reset`` / ``connection-refused`` / ``timeout`` /
``bad-frame`` / ``not-connected`` rather than raw socket exceptions.

Retries
-------
Both TCP clients accept a :class:`RetryPolicy`.  Retrying a submission
is *safe by construction*: results are keyed by the spec's cache key and
byte-identical across runs, so resubmitting after a lost response at
worst re-runs a simulation and at best hits the result cache.  The
policy retries only :data:`RETRYABLE_CODES` — failures where the work
may not have happened or the answer was lost — with decorrelated-jitter
exponential backoff, a bounded attempt budget, and an optional overall
wall-clock deadline.  Transport-level failures tear the connection down
and reconnect before the next attempt, which is what lets a client ride
out a server restart.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.service.spec import SubmissionSpec


class ServiceError(Exception):
    """The service answered with a typed error response."""

    def __init__(self, code: str, message: str, response: Optional[dict] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response or {}


class AdmissionRejectedError(ServiceError):
    """The tenant's admission queue was full under the reject policy."""


#: Error codes a :class:`RetryPolicy` retries by default: the failure is
#: transient (connection-level, a draining server, a crashed worker) and
#: resubmission is idempotent.  ``quarantined``, ``bad-spec``,
#: ``deadline-exceeded`` and friends are deliberately absent — retrying
#: those burns the budget on a deterministic failure.
RETRYABLE_CODES = frozenset(
    {
        "connection-closed",
        "connection-reset",
        "connection-refused",
        "not-connected",
        "timeout",
        "bad-frame",
        "shutting-down",
        "internal-error",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with decorrelated-jitter exponential backoff.

    ``max_attempts`` caps total tries (first attempt included);
    ``deadline_s`` additionally bounds the whole exchange in wall
    seconds — a retry that could not complete before the deadline is not
    attempted.  Sleeps follow the decorrelated-jitter scheme
    (``sleep = min(cap, uniform(base, prev * 3))``), which spreads a
    thundering herd of reconnecting clients better than plain
    exponential doubling.  ``seed`` pins the jitter stream for
    deterministic tests; production clients leave it ``None``.
    """

    max_attempts: int = 5
    base_s: float = 0.05
    cap_s: float = 2.0
    deadline_s: Optional[float] = None
    codes: frozenset = RETRYABLE_CODES
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError("need 0 < base_s <= cap_s")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or omitted)")
        object.__setattr__(self, "codes", frozenset(self.codes))

    def backoff(self) -> "_Backoff":
        return _Backoff(self)

    def retryable_code(self, code: Optional[str]) -> bool:
        return code is not None and code in self.codes


class _Backoff:
    """One exchange's sleep sequence (decorrelated jitter)."""

    def __init__(self, policy: RetryPolicy) -> None:
        self._policy = policy
        self._rng = random.Random(policy.seed)
        self._prev = policy.base_s

    def next(self) -> float:
        sleep = min(
            self._policy.cap_s, self._rng.uniform(self._policy.base_s, self._prev * 3)
        )
        self._prev = sleep
        return sleep


@dataclass
class SubmitOutcome:
    """One successful submission, decoded."""

    id: str
    cached: bool
    graph_fp: str
    machine_fp: str
    raw: dict          #: the full response (``raw["result"]`` is the payload)
    latency: float     #: client-observed round-trip seconds

    @property
    def result_payload(self) -> dict:
        return self.raw["result"]

    def result(self):
        """The deserialized :class:`RunResult` (live fields are None)."""
        from repro.runtime.serialize import run_result_from_dict

        return run_result_from_dict(self.raw["result"])


def _raise_for(response: dict) -> None:
    err = response.get("error") or {}
    code = err.get("code", "run-failed")
    message = err.get("message", "unknown service error")
    if code == "admission-rejected":
        raise AdmissionRejectedError(code, message, response)
    raise ServiceError(code, message, response)


def _decode_submit(response: dict, latency: float) -> SubmitOutcome:
    if not response.get("ok"):
        _raise_for(response)
    return SubmitOutcome(
        id=str(response.get("id")),
        cached=bool(response.get("cached")),
        graph_fp=str(response.get("graph_fp")),
        machine_fp=str(response.get("machine_fp")),
        raw=response,
        latency=latency,
    )


def _submit_request(
    spec: Union[SubmissionSpec, Mapping[str, Any]],
    *,
    rid: Optional[str],
    tenant: Optional[str],
    no_cache: bool,
) -> dict:
    payload = spec.to_dict() if isinstance(spec, SubmissionSpec) else dict(spec)
    request: dict[str, Any] = {"op": "submit", "spec": payload}
    if rid is not None:
        request["id"] = rid
    if tenant is not None:
        request["tenant"] = tenant
    if no_cache:
        request["no_cache"] = True
    return request


def _response_error_code(response: Mapping[str, Any]) -> Optional[str]:
    if response.get("ok"):
        return None
    return (response.get("error") or {}).get("code")


class _ClientOps:
    """Shared sync surface; subclasses provide :meth:`request`."""

    def request(self, request: Mapping[str, Any]) -> dict:
        raise NotImplementedError

    def submit(
        self,
        spec: Union[SubmissionSpec, Mapping[str, Any]],
        *,
        rid: Optional[str] = None,
        tenant: Optional[str] = None,
        no_cache: bool = False,
    ) -> SubmitOutcome:
        t0 = time.perf_counter()
        response = self.request(
            _submit_request(spec, rid=rid, tenant=tenant, no_cache=no_cache)
        )
        return _decode_submit(response, time.perf_counter() - t0)

    def ping(self) -> dict:
        response = self.request({"op": "ping"})
        if not response.get("ok"):
            _raise_for(response)
        return response

    def stats(self) -> dict:
        response = self.request({"op": "stats"})
        if not response.get("ok"):
            _raise_for(response)
        return response["stats"]

    def health(self) -> dict:
        response = self.request({"op": "health"})
        if not response.get("ok"):
            _raise_for(response)
        return response["health"]


class ServiceClient(_ClientOps):
    """Blocking TCP client: one connection, one request in flight.

    With a :class:`RetryPolicy`, :meth:`request` transparently
    reconnects and resubmits on retryable failures (see module
    docstring); :attr:`retries` counts the extra attempts made.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 300.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.address = (host, port)
        self._timeout = timeout
        self._retry = retry
        self._sock: Optional[socket.socket] = None
        self._rfile: Optional[Any] = None
        self.retries = 0
        self._connect()

    # -- transport ------------------------------------------------------
    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(self.address, timeout=self._timeout)
        except OSError as exc:
            self._sock = None
            raise ServiceError(
                "connection-refused", f"cannot connect to {self.address}: {exc}"
            ) from exc
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        try:
            if self._rfile is not None:
                self._rfile.close()
        except OSError:
            pass
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._sock = self._rfile = None

    def _request_once(self, request: Mapping[str, Any]) -> dict:
        if self._sock is None:
            self._connect()
        assert self._sock is not None and self._rfile is not None
        try:
            self._sock.sendall(json.dumps(dict(request)).encode() + b"\n")
            line = self._rfile.readline()
        except socket.timeout as exc:
            # the stream is mid-exchange and unusable; callers (or the
            # retry loop) must reconnect
            raise ServiceError(
                "timeout", f"no response within {self._timeout}s"
            ) from exc
        except OSError as exc:
            raise ServiceError(
                "connection-reset", f"connection failed mid-request: {exc}"
            ) from exc
        if not line:
            raise ServiceError("connection-closed", "server closed the connection")
        try:
            return json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(
                "bad-frame", f"undecodable response frame: {exc}"
            ) from exc

    # -- request with retry ---------------------------------------------
    def request(self, request: Mapping[str, Any]) -> dict:
        policy = self._retry
        if policy is None:
            return self._request_once(request)
        backoff = policy.backoff()
        deadline = (
            time.perf_counter() + policy.deadline_s
            if policy.deadline_s is not None
            else None
        )
        attempt = 0
        while True:
            attempt += 1
            transport_failure = False
            try:
                response = self._request_once(request)
            except ServiceError as exc:
                if not policy.retryable_code(exc.code):
                    raise
                transport_failure = True
                failure: Union[ServiceError, dict] = exc
            else:
                code = _response_error_code(response)
                if not policy.retryable_code(code):
                    return response
                failure = response
            if transport_failure:
                self._teardown()
            if attempt >= policy.max_attempts:
                if isinstance(failure, ServiceError):
                    raise failure
                return failure
            sleep = backoff.next()
            if deadline is not None and time.perf_counter() + sleep > deadline:
                if isinstance(failure, ServiceError):
                    raise failure
                return failure
            self.retries += 1
            time.sleep(sleep)

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class HarnessClient(_ClientOps):
    """In-process client over a started ServiceHarness (tests)."""

    def __init__(self, harness: Any, *, tenant: str = "local") -> None:
        self._harness = harness
        self._tenant = tenant

    def request(self, request: Mapping[str, Any]) -> dict:
        return self._harness.request(request, tenant=self._tenant)


class AsyncServiceClient:
    """``asyncio`` TCP client for concurrent load generation.

    One connection per instance; requests are serialized per connection
    (the load generator gets concurrency by opening many clients, which
    is also what makes each connection its own tenant server-side).
    Accepts the same :class:`RetryPolicy` as :class:`ServiceClient`,
    with ``asyncio.sleep`` backoff and automatic reconnection.
    """

    def __init__(
        self, host: str, port: int, *, retry: Optional[RetryPolicy] = None
    ) -> None:
        self.address = (host, port)
        self._retry = retry
        self._reader: Optional[Any] = None
        self._writer: Optional[Any] = None
        self.retries = 0

    async def connect(self) -> "AsyncServiceClient":
        import asyncio

        from repro.service.server import MAX_LINE

        try:
            self._reader, self._writer = await asyncio.open_connection(
                *self.address, limit=MAX_LINE
            )
        except OSError as exc:
            self._reader = self._writer = None
            raise ServiceError(
                "connection-refused", f"cannot connect to {self.address}: {exc}"
            ) from exc
        return self

    async def _teardown(self) -> None:
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _request_once(self, request: Mapping[str, Any]) -> dict:
        if self._reader is None or self._writer is None:
            raise ServiceError(
                "not-connected", "client is not connected; call connect() first"
            )
        try:
            self._writer.write(json.dumps(dict(request)).encode() + b"\n")
            await self._writer.drain()
            line = await self._reader.readline()
        except OSError as exc:
            raise ServiceError(
                "connection-reset", f"connection failed mid-request: {exc}"
            ) from exc
        if not line:
            raise ServiceError("connection-closed", "server closed the connection")
        try:
            return json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(
                "bad-frame", f"undecodable response frame: {exc}"
            ) from exc

    async def request(self, request: Mapping[str, Any]) -> dict:
        import asyncio

        policy = self._retry
        if policy is None:
            return await self._request_once(request)
        backoff = policy.backoff()
        deadline = (
            time.perf_counter() + policy.deadline_s
            if policy.deadline_s is not None
            else None
        )
        attempt = 0
        while True:
            attempt += 1
            transport_failure = False
            try:
                if self._reader is None:
                    await self.connect()
                response = await self._request_once(request)
            except ServiceError as exc:
                if not policy.retryable_code(exc.code):
                    raise
                transport_failure = True
                failure: Union[ServiceError, dict] = exc
            else:
                code = _response_error_code(response)
                if not policy.retryable_code(code):
                    return response
                failure = response
            if transport_failure:
                await self._teardown()
            if attempt >= policy.max_attempts:
                if isinstance(failure, ServiceError):
                    raise failure
                return failure
            sleep = backoff.next()
            if deadline is not None and time.perf_counter() + sleep > deadline:
                if isinstance(failure, ServiceError):
                    raise failure
                return failure
            self.retries += 1
            await asyncio.sleep(sleep)

    async def submit(
        self,
        spec: Union[SubmissionSpec, Mapping[str, Any]],
        *,
        rid: Optional[str] = None,
        tenant: Optional[str] = None,
        no_cache: bool = False,
    ) -> SubmitOutcome:
        t0 = time.perf_counter()
        response = await self.request(
            _submit_request(spec, rid=rid, tenant=tenant, no_cache=no_cache)
        )
        return _decode_submit(response, time.perf_counter() - t0)

    async def close(self) -> None:
        await self._teardown()

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.close()


__all__ = [
    "AdmissionRejectedError",
    "AsyncServiceClient",
    "HarnessClient",
    "RETRYABLE_CODES",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "SubmitOutcome",
]
