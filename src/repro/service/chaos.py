"""Seeded fault injection for the scheduler service.

The service-layer analogue of :mod:`repro.resilience.faults`: a
:class:`ServiceFaultPlan` is an immutable, eagerly-validated description
of every way the *service* (not the simulation) can fail — worker
coroutines dying, workers stalling, TCP connections dropping or being
reset mid-exchange, response frames corrupted or truncated on the wire,
and cache-persistence writes failing.  A plan is injected via
:attr:`~repro.service.server.ServiceConfig.fault_plan`; the server and
TCP transport consult its :class:`ServiceFaultInjector` at well-defined
points, so every failure mode the robustness machinery claims to handle
is reproducible in tests under a fixed seed.

Like ``FaultPlan``, every rule owns a child RNG seeded from
``(plan.seed, rule kind, rule index)`` — adding a rule never perturbs
the draws of the others — and rules can fire probabilistically or at
exact consult ordinals (``at_jobs`` / ``at_requests`` / ``at_frames`` /
``at_writes``), which is what deterministic regression tests use.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Union

IntTuple = tuple[int, ...]


def _rule_error(rule: object, message: str) -> ValueError:
    return ValueError(f"{type(rule).__name__}: {message}")


def _as_int_tuple(rule: object, name: str, value: Union[Iterable[int], IntTuple]) -> IntTuple:
    out = tuple(int(v) for v in value)
    if any(v < 0 for v in out):
        raise _rule_error(rule, f"{name} ordinals must be non-negative")
    return out


def _check_probability(rule: object, name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise _rule_error(rule, f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class WorkerCrashRule:
    """A service worker dies as it picks a job off the run queue.

    The worker coroutine raises — exactly what a bug in the dispatch
    path would do — so the job it held is stranded until supervision
    fails it (typed ``internal-error``) and replaces the worker.  Fires
    with ``probability`` per job pickup, or deterministically at the
    pickup ordinals in ``at_jobs`` (0-based, service-wide).
    """

    probability: float = 0.0
    at_jobs: IntTuple = ()

    def __post_init__(self) -> None:
        _check_probability(self, "probability", self.probability)
        object.__setattr__(self, "at_jobs", _as_int_tuple(self, "at_jobs", self.at_jobs))
        if self.probability == 0.0 and not self.at_jobs:
            raise _rule_error(self, "rule can never fire (no probability, no at_jobs)")


@dataclass(frozen=True)
class WorkerStallRule:
    """A worker holds a job for ``stall_s`` wall seconds before running it.

    Models a wedged worker thread: the job sits past its queue position,
    which is how per-submission deadlines get exceeded while "queued".
    """

    stall_s: float
    probability: float = 0.0
    at_jobs: IntTuple = ()

    def __post_init__(self) -> None:
        if self.stall_s <= 0:
            raise _rule_error(self, "stall_s must be positive")
        _check_probability(self, "probability", self.probability)
        object.__setattr__(self, "at_jobs", _as_int_tuple(self, "at_jobs", self.at_jobs))
        if self.probability == 0.0 and not self.at_jobs:
            raise _rule_error(self, "rule can never fire (no probability, no at_jobs)")


@dataclass(frozen=True)
class ConnectionFaultRule:
    """A TCP connection dies mid-exchange.

    ``when="response"`` (default) kills the connection after the request
    was processed but before its response frame is written — the nastier
    case: the work happened, the answer is lost, and only an idempotent
    resubmission (served from the result cache) recovers it.
    ``when="request"`` kills it right after the frame is read, before
    admission.  ``drop`` closes cleanly; ``reset`` aborts the transport
    (the peer sees ``ECONNRESET``).
    """

    drop: float = 0.0
    reset: float = 0.0
    at_requests: IntTuple = ()
    when: str = "response"

    def __post_init__(self) -> None:
        _check_probability(self, "drop", self.drop)
        _check_probability(self, "reset", self.reset)
        if self.drop + self.reset > 1.0:
            raise _rule_error(self, "drop + reset must not exceed 1")
        if self.when not in ("request", "response"):
            raise _rule_error(self, f"when must be 'request' or 'response', got {self.when!r}")
        object.__setattr__(
            self, "at_requests", _as_int_tuple(self, "at_requests", self.at_requests)
        )
        if self.drop == 0.0 and self.reset == 0.0 and not self.at_requests:
            raise _rule_error(self, "rule can never fire (no probabilities, no at_requests)")


@dataclass(frozen=True)
class FrameFaultRule:
    """A response frame is damaged on the wire.

    ``corrupt`` overwrites bytes inside the JSON body (framing intact,
    payload unparseable → the client's ``bad-frame``); ``truncate``
    sends a prefix of the frame and closes the connection (the client
    sees a short read).  ``at_frames`` are 0-based response-frame
    ordinals, service-wide.
    """

    corrupt: float = 0.0
    truncate: float = 0.0
    at_frames: IntTuple = ()

    def __post_init__(self) -> None:
        _check_probability(self, "corrupt", self.corrupt)
        _check_probability(self, "truncate", self.truncate)
        if self.corrupt + self.truncate > 1.0:
            raise _rule_error(self, "corrupt + truncate must not exceed 1")
        object.__setattr__(
            self, "at_frames", _as_int_tuple(self, "at_frames", self.at_frames)
        )
        if self.corrupt == 0.0 and self.truncate == 0.0 and not self.at_frames:
            raise _rule_error(self, "rule can never fire (no probabilities, no at_frames)")


@dataclass(frozen=True)
class CachePersistRule:
    """A cache persistence write fails with ``OSError``.

    Consulted on every journal append and snapshot write (``at_writes``
    counts both, in order).  The cache must degrade — warn, count, keep
    the in-memory entry — never corrupt the store or kill the service.
    """

    probability: float = 0.0
    at_writes: IntTuple = ()

    def __post_init__(self) -> None:
        _check_probability(self, "probability", self.probability)
        object.__setattr__(
            self, "at_writes", _as_int_tuple(self, "at_writes", self.at_writes)
        )
        if self.probability == 0.0 and not self.at_writes:
            raise _rule_error(self, "rule can never fire (no probability, no at_writes)")


@dataclass(frozen=True)
class ServiceFaultPlan:
    """The full service-failure scenario of one soak (immutable, reusable)."""

    seed: int = 0
    worker_crashes: tuple[WorkerCrashRule, ...] = ()
    worker_stalls: tuple[WorkerStallRule, ...] = ()
    connection_faults: tuple[ConnectionFaultRule, ...] = ()
    frame_faults: tuple[FrameFaultRule, ...] = ()
    cache_persist_faults: tuple[CachePersistRule, ...] = ()

    def __post_init__(self) -> None:
        for name, kind in (
            ("worker_crashes", WorkerCrashRule),
            ("worker_stalls", WorkerStallRule),
            ("connection_faults", ConnectionFaultRule),
            ("frame_faults", FrameFaultRule),
            ("cache_persist_faults", CachePersistRule),
        ):
            rules = tuple(getattr(self, name))
            for rule in rules:
                if not isinstance(rule, kind):
                    raise ValueError(
                        f"{name} expects {kind.__name__} rules, got {type(rule).__name__}"
                    )
            object.__setattr__(self, name, rules)

    @property
    def empty(self) -> bool:
        return not (
            self.worker_crashes
            or self.worker_stalls
            or self.connection_faults
            or self.frame_faults
            or self.cache_persist_faults
        )

    def injector(self) -> "ServiceFaultInjector":
        """Fresh per-soak mutable state (counters + seeded RNG streams)."""
        return ServiceFaultInjector(self)


class ServiceFaultInjector:
    """Per-soak evaluation of a :class:`ServiceFaultPlan`.

    One RNG stream and one consult counter per rule, seeded from
    ``plan.seed`` and the rule index.  Rules are evaluated in
    declaration order; the first that fires wins.  Draws are serialized
    by a lock — consults come from the event loop *and* from simulator
    worker threads (cache writes).
    """

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()

        def streams(kind: str, rules: tuple) -> list[random.Random]:
            return [random.Random(f"{plan.seed}:{kind}:{i}") for i in range(len(rules))]

        self._crash_rngs = streams("worker-crash", plan.worker_crashes)
        self._stall_rngs = streams("worker-stall", plan.worker_stalls)
        self._conn_rngs = streams("connection", plan.connection_faults)
        self._frame_rngs = streams("frame", plan.frame_faults)
        self._persist_rngs = streams("cache-persist", plan.cache_persist_faults)
        self._jobs_seen = 0
        self._requests_seen = 0
        self._frames_seen = 0
        self._writes_seen = 0
        #: fired-fault counters by kind, for health reports and tests
        self.fired: dict[str, int] = {
            "worker-crash": 0,
            "worker-stall": 0,
            "connection-drop": 0,
            "connection-reset": 0,
            "frame-corrupt": 0,
            "frame-truncate": 0,
            "cache-persist": 0,
        }

    # ------------------------------------------------------------------
    def worker_fault(self) -> Optional[tuple[str, float]]:
        """Consulted as a worker dequeues a job.

        Returns ``("crash", 0.0)``, ``("stall", seconds)`` or ``None``.
        """
        with self._lock:
            ordinal = self._jobs_seen
            self._jobs_seen += 1
            for i, rule in enumerate(self.plan.worker_crashes):
                if ordinal in rule.at_jobs or (
                    rule.probability > 0.0
                    and self._crash_rngs[i].random() < rule.probability
                ):
                    self.fired["worker-crash"] += 1
                    return ("crash", 0.0)
            for i, rule in enumerate(self.plan.worker_stalls):
                if ordinal in rule.at_jobs or (
                    rule.probability > 0.0
                    and self._stall_rngs[i].random() < rule.probability
                ):
                    self.fired["worker-stall"] += 1
                    return ("stall", rule.stall_s)
            return None

    def request_ordinal(self) -> int:
        """Claim the next request ordinal (service-wide, 0-based).

        The transport claims one ordinal as it reads each request frame
        and passes it to both :meth:`connection_fault` consult points —
        pipelined responses complete out of order, so the ordinal must
        travel with the request rather than live in the injector.
        """
        with self._lock:
            ordinal = self._requests_seen
            self._requests_seen += 1
            return ordinal

    def connection_fault(self, when: str, ordinal: int) -> Optional[str]:
        """Consulted for request ``ordinal`` at the ``when`` point.

        Returns ``"drop"``, ``"reset"`` or ``None``.  A rule's
        ``at_requests`` indices refer to the ordinal claimed at the
        request point, whichever ``when`` the rule uses.
        """
        with self._lock:
            for i, rule in enumerate(self.plan.connection_faults):
                if rule.when != when:
                    continue
                if ordinal in rule.at_requests:
                    self.fired["connection-drop"] += 1
                    return "drop"
                rng = self._conn_rngs[i]
                if rule.drop > 0.0 and rng.random() < rule.drop:
                    self.fired["connection-drop"] += 1
                    return "drop"
                if rule.reset > 0.0 and rng.random() < rule.reset:
                    self.fired["connection-reset"] += 1
                    return "reset"
            return None

    def frame_fault(self) -> Optional[str]:
        """Consulted per outgoing response frame.

        Returns ``"corrupt"``, ``"truncate"`` or ``None``.
        """
        with self._lock:
            ordinal = self._frames_seen
            self._frames_seen += 1
            for i, rule in enumerate(self.plan.frame_faults):
                if ordinal in rule.at_frames:
                    self.fired["frame-corrupt"] += 1
                    return "corrupt"
                rng = self._frame_rngs[i]
                if rule.corrupt > 0.0 and rng.random() < rule.corrupt:
                    self.fired["frame-corrupt"] += 1
                    return "corrupt"
                if rule.truncate > 0.0 and rng.random() < rule.truncate:
                    self.fired["frame-truncate"] += 1
                    return "truncate"
            return None

    def persist_fault(self, kind: str = "journal") -> bool:
        """Consulted per cache persistence write (journal or snapshot)."""
        with self._lock:
            ordinal = self._writes_seen
            self._writes_seen += 1
            for i, rule in enumerate(self.plan.cache_persist_faults):
                if ordinal in rule.at_writes or (
                    rule.probability > 0.0
                    and self._persist_rngs[i].random() < rule.probability
                ):
                    self.fired["cache-persist"] += 1
                    return True
            return False

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Consults seen and faults fired, for health/debug output."""
        with self._lock:
            return {
                "jobs_seen": self._jobs_seen,
                "requests_seen": self._requests_seen,
                "frames_seen": self._frames_seen,
                "writes_seen": self._writes_seen,
                "fired": dict(self.fired),
            }


__all__ = [
    "CachePersistRule",
    "ConnectionFaultRule",
    "FrameFaultRule",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "WorkerCrashRule",
    "WorkerStallRule",
]
