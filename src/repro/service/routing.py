"""Routing batch-style ``Application.run`` calls through the service.

``reproduce.py --serve`` should not re-implement every experiment: the
figure drivers keep calling :meth:`Application.run`, and while a
:func:`route_via_service` context is active that call is *routed* — the
app, machine and scheduler are described as a
:class:`~repro.service.spec.SubmissionSpec`, submitted to the service,
and the response deserialized back into an :class:`AppResult` the driver
cannot tell apart from a local run.

Routing is best-effort by construction: anything the wire format cannot
express (live scheduler instances, fault plans, machines built outside
the named factories, apps with real arithmetic or non-default dtypes)
falls back to the local path and is counted, never mis-serialized.
Routed submissions use ``share_scheduler=False`` so the service runs a
fresh scheduler per cold run — byte-identical to the batch path, which
is exactly what the equality tests assert.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import logging
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Optional

from repro.service.client import ServiceError
from repro.service.spec import _CONFIG_FIELDS, SpecError, SubmissionSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import Application, AppResult
    from repro.sim.topology import Machine

log = logging.getLogger(__name__)

#: Failure codes that mean "the service is unreachable", not "the
#: submission is bad" — routing falls back to a local run on these
#: (best-effort, like every other routing fallback) instead of failing
#: an experiment because a service died under it.
_CONNECTION_CODES = frozenset(
    {
        "connection-closed",
        "connection-reset",
        "connection-refused",
        "not-connected",
        "timeout",
        "bad-frame",
        "shutting-down",
    }
)


class ServiceRouter:
    """Turns ``Application.run`` calls into service submissions."""

    def __init__(self, client: Any, *, tenant: Optional[str] = None) -> None:
        self.client = client
        self.tenant = tenant
        self.routed = 0
        self.cache_hits = 0
        self.fallbacks = 0
        self.connection_fallbacks = 0

    # ------------------------------------------------------------------
    def try_submit(
        self,
        app: "Application",
        machine: "Machine",
        scheduler: Any,
        *,
        scheduler_options: Optional[Mapping[str, Any]] = None,
        config: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
        recovery: Optional[Any] = None,
    ) -> Optional["AppResult"]:
        """The routed :class:`AppResult`, or None to run locally."""
        from repro.apps.base import AppResult

        spec = self._spec_for(
            app,
            machine,
            scheduler,
            scheduler_options=scheduler_options,
            config=config,
            fault_plan=fault_plan,
            recovery=recovery,
        )
        if spec is None:
            self.fallbacks += 1
            return None
        try:
            outcome = self.client.submit(spec, tenant=self.tenant)
        except (OSError, ServiceError) as exc:
            code = getattr(exc, "code", None)
            if isinstance(exc, ServiceError) and code not in _CONNECTION_CODES:
                raise  # the submission itself is bad; a local run won't fix it
            log.warning(
                "service unreachable (%s); running %s locally",
                code or type(exc).__name__, app.name,
            )
            self.fallbacks += 1
            self.connection_fallbacks += 1
            return None
        self.routed += 1
        if outcome.cached:
            self.cache_hits += 1
        return AppResult(
            app=app.name,
            variant=app.variant,
            run=outcome.result(),
            total_flops=app.total_flops(),
        )

    # ------------------------------------------------------------------
    def _spec_for(
        self,
        app: "Application",
        machine: "Machine",
        scheduler: Any,
        *,
        scheduler_options: Optional[Mapping[str, Any]],
        config: Optional[Any],
        fault_plan: Optional[Any],
        recovery: Optional[Any],
    ) -> Optional[SubmissionSpec]:
        if fault_plan is not None or recovery is not None:
            return None  # chaos plans hold live callbacks; not wire-expressible
        if not isinstance(scheduler, str):
            return None  # a live scheduler instance carries state we can't ship
        provenance = getattr(machine, "provenance", None)
        if not provenance:
            return None  # hand-built machine: no factory recipe to send
        app_args = app.submission_args()
        if app_args is None:
            return None
        config_dict = _config_to_dict(config)
        if config is not None and config_dict is None:
            return None  # config diverges outside the wire-expressible fields
        try:
            return SubmissionSpec.from_dict(
                {
                    "app": app.name,
                    "app_args": app_args,
                    "machine": provenance["factory"],
                    "machine_args": dict(provenance["args"]),
                    "scheduler": scheduler,
                    "scheduler_options": dict(scheduler_options or {}),
                    "seed": int(provenance["seed"]),
                    "config": config_dict,
                    "share_scheduler": False,
                }
            )
        except SpecError:
            return None


def _config_to_dict(config: Optional[Any]) -> Optional[dict]:
    """A RuntimeConfig as spec fields, or None if not expressible."""
    if config is None:
        return None
    from repro.runtime.runtime import RuntimeConfig

    defaults = RuntimeConfig()
    diff = {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(RuntimeConfig)
        if getattr(config, f.name) != getattr(defaults, f.name)
    }
    if set(diff) - _CONFIG_FIELDS:
        return None
    try:
        json.dumps(diff)
    except (TypeError, ValueError):
        return None
    return {f: getattr(config, f) for f in sorted(_CONFIG_FIELDS)}


# ----------------------------------------------------------------------
# The active-router slot Application.run consults
# ----------------------------------------------------------------------
_active: Optional[ServiceRouter] = None


def active_router() -> Optional[ServiceRouter]:
    return _active


@contextlib.contextmanager
def route_via_service(
    client: Any, *, tenant: Optional[str] = None
) -> Iterator[ServiceRouter]:
    """While active, ``Application.run`` submits to ``client``'s service."""
    global _active
    previous = _active
    _active = router = ServiceRouter(client, tenant=tenant)
    try:
        yield router
    finally:
        _active = previous


__all__ = ["ServiceRouter", "active_router", "route_via_service"]
