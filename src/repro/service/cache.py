"""The service's result cache.

Simulated runs are deterministic given ``(graph, machine, scheduler,
seed)``, so the service never simulates the same submission twice: the
first run's serialized :class:`~repro.runtime.runtime.RunResult` is
parked under a :class:`CacheKey` and repeated submissions are answered
from memory, byte-identical to the original.

The key's terms:

* ``graph_fp`` — the canonical graph fingerprint
  (:func:`repro.runtime.fingerprint.graph_fingerprint`),
* ``machine_fp`` — the machine-calibration digest
  (:func:`repro.sim.calibrate.machine_fingerprint`); re-calibrating a
  device changes it, so stale results fall out of reach automatically
  and :meth:`ResultCache.invalidate_machine` reclaims their entries,
* ``scheduler_key`` — policy name + options + shared-pool flag,
* ``seed`` — the submission's noise seed (deliberately *not* part of
  the machine fingerprint, mirroring the profile store's rationale),
* ``config_key`` — canonical JSON of the spec's runtime-config
  overrides (prefetch, overlap, ...); they change simulation results,
  so an overlap on/off ablation must occupy two entries, not one.

Persistence is crash-safe in two layers:

* **snapshots** — the full store written atomically (temp file +
  ``os.replace``) by :meth:`ResultCache.save`, following ``repro.store``
  conventions;
* an **append-only journal** (``<path>.journal``, NDJSON) recording
  every insert between snapshots.  On startup the snapshot is loaded
  and the journal replayed on top, so killing the server mid-write
  loses at most the entry being appended — never the store.  ``save``
  truncates the journal it just folded in.

A corrupted or truncated snapshot (or journal with an alien schema) is
quarantined to ``<file>.corrupt`` with a warning and the cache starts
cold — persistence failures degrade, they never kill the server.  All
public methods are thread-safe — simulator workers call them from
worker threads.
"""

from __future__ import annotations

import io
import json
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

log = logging.getLogger(__name__)

CACHE_SCHEMA = "repro.result-cache/2"  # v2: cache keys grew a config term

PathLike = Union[str, Path]

#: Called with ``"journal"`` or ``"snapshot"`` before each persistence
#: write; returning True makes the write fail with OSError.  Wired to
#: :meth:`repro.service.chaos.ServiceFaultInjector.persist_fault`.
PersistFaultHook = Callable[[str], bool]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cacheable submission."""

    graph_fp: str
    machine_fp: str
    scheduler_key: str
    seed: int
    config_key: str = "{}"

    def encode(self) -> str:
        """Stable string form used in the persistence payload."""
        return json.dumps(
            [
                self.graph_fp,
                self.machine_fp,
                self.scheduler_key,
                self.seed,
                self.config_key,
            ],
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def decode(cls, encoded: str) -> "CacheKey":
        graph_fp, machine_fp, scheduler_key, seed, config_key = json.loads(encoded)
        return cls(graph_fp, machine_fp, scheduler_key, int(seed), config_key)


@dataclass
class ResultCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidated: int = 0
    journal_appends: int = 0
    journal_replayed: int = 0
    persist_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "journal_appends": self.journal_appends,
            "journal_replayed": self.journal_replayed,
            "persist_errors": self.persist_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    payload: dict
    hits: int = 0
    meta: dict = field(default_factory=dict)


class ResultCache:
    """Thread-safe LRU map from :class:`CacheKey` to result payloads."""

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        max_entries: Optional[int] = 1024,
        journal: bool = True,
        persist_fault: Optional[PersistFaultHook] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.path = Path(path) if path is not None else None
        self.journal_path = (
            self.path.with_name(self.path.name + ".journal")
            if self.path is not None and journal
            else None
        )
        self.max_entries = max_entries
        self.stats = ResultCacheStats()
        self._persist_fault = persist_fault
        self._journal_fh: Optional[io.TextIOWrapper] = None
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        if self.path is not None:
            self._load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: CacheKey) -> Optional[dict]:
        """The cached result payload for ``key``, or None (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            entry.hits += 1
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.payload

    def insert(self, key: CacheKey, payload: dict, *, meta: Optional[dict] = None) -> None:
        """Park one result payload; evicts the LRU entry when full.

        With a journal configured the entry is also appended to it
        (flushed), so a kill before the next snapshot cannot lose it.
        A failed append degrades to warning + counter — the in-memory
        entry is unaffected.
        """
        entry = _Entry(payload=payload, meta=dict(meta or {}))
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._append_journal(key, entry)

    def invalidate_machine(self, machine_fp: str) -> int:
        """Drop every entry recorded under ``machine_fp``.

        New submissions on a re-calibrated machine already miss (the
        fingerprint is part of the key); this reclaims the dead weight.
        """
        with self._lock:
            stale = [k for k in self._entries if k.machine_fp == machine_fp]
            for k in stale:
                del self._entries[k]
            self.stats.invalidated += len(stale)
            return len(stale)

    def keys(self) -> list[CacheKey]:
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    # Persistence: atomic snapshots + an append-only journal between them
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            log.warning("cache file %s is %s and could not be quarantined", path, reason)
            return
        log.warning(
            "cache file %s is %s; quarantined to %s and starting cold", path, reason, target
        )

    def _load(self) -> None:
        self._load_snapshot()
        self._replay_journal()

    def _load_snapshot(self) -> None:
        assert self.path is not None
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
        except OSError:
            return  # unreadable cache = cold cache, never a dead server
        except json.JSONDecodeError:
            self._quarantine(self.path, "corrupt (not valid JSON)")
            return
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            self._quarantine(self.path, f"not a {CACHE_SCHEMA} payload")
            return
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            self._quarantine(self.path, "malformed (entries is not an object)")
            return
        for encoded, record in entries.items():
            try:
                key = CacheKey.decode(encoded)
                self._entries[key] = _Entry(
                    payload=record["result"],
                    hits=int(record.get("hits", 0)),
                    meta=dict(record.get("meta", {})),
                )
            except (KeyError, TypeError, ValueError):
                continue  # skip the one bad entry, keep the rest

    def _replay_journal(self) -> None:
        """Fold journal appends (since the last snapshot) into memory.

        A truncated or corrupt line ends the replay — that is the entry
        that was mid-write when the server died, and nothing after it
        can be trusted to be in order.
        """
        if self.journal_path is None or not self.journal_path.exists():
            return
        try:
            text = self.journal_path.read_text()
        except OSError:
            return
        replayed = 0
        for lineno, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                log.warning(
                    "cache journal %s: stopping replay at corrupt/truncated line %d "
                    "(%d entries recovered)",
                    self.journal_path, lineno + 1, replayed,
                )
                break
            if lineno == 0:
                if not isinstance(record, dict) or record.get("schema") != CACHE_SCHEMA:
                    self._quarantine(self.journal_path, f"not a {CACHE_SCHEMA} journal")
                    return
                continue
            try:
                key = CacheKey.decode(record["key"])
                self._entries[key] = _Entry(
                    payload=record["result"],
                    hits=int(record.get("hits", 0)),
                    meta=dict(record.get("meta", {})),
                )
                self._entries.move_to_end(key)
                replayed += 1
            except (KeyError, TypeError, ValueError):
                continue  # one bad record, keep replaying
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self.stats.journal_replayed = replayed

    def _append_journal(self, key: CacheKey, entry: _Entry) -> None:
        """Append one insert to the journal (caller holds the lock)."""
        if self.journal_path is None:
            return
        try:
            if self._persist_fault is not None and self._persist_fault("journal"):
                raise OSError("injected journal write failure")
            if self._journal_fh is None or self._journal_fh.closed:
                self.journal_path.parent.mkdir(parents=True, exist_ok=True)
                fresh = (
                    not self.journal_path.exists()
                    or self.journal_path.stat().st_size == 0
                )
                self._journal_fh = open(self.journal_path, "a")
                if fresh:
                    self._journal_fh.write(
                        json.dumps({"schema": CACHE_SCHEMA}, sort_keys=True) + "\n"
                    )
            self._journal_fh.write(
                json.dumps(
                    {"key": key.encode(), "result": entry.payload, "meta": entry.meta},
                    sort_keys=True,
                )
                + "\n"
            )
            self._journal_fh.flush()
            self.stats.journal_appends += 1
        except OSError as exc:
            self.stats.persist_errors += 1
            log.warning("cache journal append failed (entry stays in memory): %s", exc)
            # the handle may be mid-line; reopen on the next append
            if self._journal_fh is not None:
                try:
                    self._journal_fh.close()
                except OSError:
                    pass
                self._journal_fh = None

    def save(self) -> Optional[Path]:
        """Atomically snapshot the cache, then truncate the journal.

        No-op without a path.  A failed snapshot degrades to warning +
        counter and *keeps* the journal — nothing persisted is lost.
        """
        if self.path is None:
            return None
        with self._lock:
            payload = {
                "schema": CACHE_SCHEMA,
                "entries": {
                    key.encode(): {
                        "result": entry.payload,
                        "hits": entry.hits,
                        "meta": entry.meta,
                    }
                    for key, entry in self._entries.items()
                },
            }
            try:
                if self._persist_fault is not None and self._persist_fault("snapshot"):
                    raise OSError("injected snapshot write failure")
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w") as fh:
                        json.dump(payload, fh, sort_keys=True)
                    os.replace(tmp, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError as exc:
                self.stats.persist_errors += 1
                log.warning("cache snapshot failed (journal kept): %s", exc)
                return None
            # the snapshot holds everything; the journal is now redundant
            if self._journal_fh is not None:
                try:
                    self._journal_fh.close()
                except OSError:
                    pass
                self._journal_fh = None
            if self.journal_path is not None and self.journal_path.exists():
                try:
                    os.unlink(self.journal_path)
                except OSError:
                    pass
        return self.path

    def close(self) -> None:
        """Release the journal handle (entries stay journaled on disk)."""
        with self._lock:
            if self._journal_fh is not None:
                try:
                    self._journal_fh.close()
                except OSError:
                    pass
                self._journal_fh = None


__all__ = ["CACHE_SCHEMA", "CacheKey", "ResultCache", "ResultCacheStats"]
