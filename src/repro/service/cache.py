"""The service's result cache.

Simulated runs are deterministic given ``(graph, machine, scheduler,
seed)``, so the service never simulates the same submission twice: the
first run's serialized :class:`~repro.runtime.runtime.RunResult` is
parked under a :class:`CacheKey` and repeated submissions are answered
from memory, byte-identical to the original.

The key's terms:

* ``graph_fp`` — the canonical graph fingerprint
  (:func:`repro.runtime.fingerprint.graph_fingerprint`),
* ``machine_fp`` — the machine-calibration digest
  (:func:`repro.sim.calibrate.machine_fingerprint`); re-calibrating a
  device changes it, so stale results fall out of reach automatically
  and :meth:`ResultCache.invalidate_machine` reclaims their entries,
* ``scheduler_key`` — policy name + options + shared-pool flag,
* ``seed`` — the submission's noise seed (deliberately *not* part of
  the machine fingerprint, mirroring the profile store's rationale),
* ``config_key`` — canonical JSON of the spec's runtime-config
  overrides (prefetch, overlap, ...); they change simulation results,
  so an overlap on/off ablation must occupy two entries, not one.

Persistence follows ``repro.store`` conventions: a versioned JSON
payload written atomically (temp file + ``os.replace``), loaded
tolerantly (a corrupt or alien file starts an empty cache rather than
killing the server).  All public methods are thread-safe — simulator
workers call them from worker threads.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

CACHE_SCHEMA = "repro.result-cache/2"  # v2: cache keys grew a config term

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cacheable submission."""

    graph_fp: str
    machine_fp: str
    scheduler_key: str
    seed: int
    config_key: str = "{}"

    def encode(self) -> str:
        """Stable string form used in the persistence payload."""
        return json.dumps(
            [
                self.graph_fp,
                self.machine_fp,
                self.scheduler_key,
                self.seed,
                self.config_key,
            ],
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def decode(cls, encoded: str) -> "CacheKey":
        graph_fp, machine_fp, scheduler_key, seed, config_key = json.loads(encoded)
        return cls(graph_fp, machine_fp, scheduler_key, int(seed), config_key)


@dataclass
class ResultCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    payload: dict
    hits: int = 0
    meta: dict = field(default_factory=dict)


class ResultCache:
    """Thread-safe LRU map from :class:`CacheKey` to result payloads."""

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        max_entries: Optional[int] = 1024,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.path = Path(path) if path is not None else None
        self.max_entries = max_entries
        self.stats = ResultCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: CacheKey) -> Optional[dict]:
        """The cached result payload for ``key``, or None (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            entry.hits += 1
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.payload

    def insert(self, key: CacheKey, payload: dict, *, meta: Optional[dict] = None) -> None:
        """Park one result payload; evicts the LRU entry when full."""
        with self._lock:
            self._entries[key] = _Entry(payload=payload, meta=dict(meta or {}))
            self._entries.move_to_end(key)
            self.stats.insertions += 1
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_machine(self, machine_fp: str) -> int:
        """Drop every entry recorded under ``machine_fp``.

        New submissions on a re-calibrated machine already miss (the
        fingerprint is part of the key); this reclaims the dead weight.
        """
        with self._lock:
            stale = [k for k in self._entries if k.machine_fp == machine_fp]
            for k in stale:
                del self._entries[k]
            self.stats.invalidated += len(stale)
            return len(stale)

    def keys(self) -> list[CacheKey]:
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    # Persistence (repro.store conventions: versioned, atomic)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # unreadable cache = cold cache, never a dead server
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            return
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return
        for encoded, record in entries.items():
            try:
                key = CacheKey.decode(encoded)
                self._entries[key] = _Entry(
                    payload=record["result"],
                    hits=int(record.get("hits", 0)),
                    meta=dict(record.get("meta", {})),
                )
            except (KeyError, TypeError, ValueError):
                continue  # skip the one bad entry, keep the rest

    def save(self) -> Optional[Path]:
        """Atomically persist the cache (no-op without a path)."""
        if self.path is None:
            return None
        with self._lock:
            payload = {
                "schema": CACHE_SCHEMA,
                "entries": {
                    key.encode(): {
                        "result": entry.payload,
                        "hits": entry.hits,
                        "meta": entry.meta,
                    }
                    for key, entry in self._entries.items()
                },
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return self.path


__all__ = ["CACHE_SCHEMA", "CacheKey", "ResultCache", "ResultCacheStats"]
