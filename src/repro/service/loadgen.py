"""Load generator: many concurrent tenants hammering one service.

Drives ``n_clients`` concurrent TCP connections (each its own tenant),
each submitting ``requests_per_client`` specs drawn from a small seeded
pool.  ``duplicate_fraction`` controls how often a client re-submits a
spec already in the pool rotation — the dial that produces cache hits.
Everything is seeded, so a loadgen run is reproducible end to end and CI
can assert on its report.

The report separates cold and cached latency percentiles: the headline
claim of the result cache is that a cached resubmission's p50 sits an
order of magnitude under a cold run's.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.service.client import (
    AsyncServiceClient,
    RetryPolicy,
    ServiceError,
    SubmitOutcome,
)
from repro.service.spec import SubmissionSpec

#: Small, fast spec shapes the generator rotates through.  All run in
#: well under a second; variety exercises distinct cache keys.
_POOL_SHAPES = [
    {"app": "matmul", "app_args": {"n_tiles": 2, "variant": "hyb"}},
    {"app": "matmul", "app_args": {"n_tiles": 3, "variant": "hyb"}},
    {"app": "matmul", "app_args": {"n_tiles": 2, "variant": "gpu"}},
    {"app": "cholesky", "app_args": {"n_blocks": 3, "variant": "hyb"}},
    {"app": "cholesky", "app_args": {"n_blocks": 4, "variant": "hyb"}},
    {"app": "pbpi", "app_args": {"generations": 2, "n_blocks": 3, "variant": "hyb"}},
]


def spec_pool(
    *,
    seed: int = 0,
    size: int = 6,
    scheduler: str = "versioning",
    share_scheduler: bool = True,
) -> list[SubmissionSpec]:
    """A deterministic pool of small submission specs."""
    rng = random.Random(seed)
    pool = []
    for i in range(size):
        shape = _POOL_SHAPES[i % len(_POOL_SHAPES)]
        pool.append(
            SubmissionSpec.from_dict(
                {
                    **shape,
                    "machine": "minotauro",
                    "machine_args": {"n_smp": 2, "n_gpus": 1},
                    "scheduler": scheduler,
                    "seed": rng.randrange(1 << 16),
                    "share_scheduler": share_scheduler,
                }
            )
        )
    return pool


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


@dataclass
class LoadgenReport:
    """What one load-generation run observed, client-side."""

    n_clients: int
    requests: int = 0
    completed: int = 0
    cached: int = 0
    errors: int = 0
    retries: int = 0
    wall_time: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)
    cold_latencies: list[float] = field(default_factory=list, repr=False)
    cached_latencies: list[float] = field(default_factory=list, repr=False)
    error_codes: dict[str, int] = field(default_factory=dict)
    #: request id -> SHA-256 of the canonical result payload.  Chaos
    #: soaks diff this against a fault-free run of the same seed/pool to
    #: prove retries returned byte-identical results, not just *a* result.
    result_digests: dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def throughput(self) -> float:
        return self.completed / self.wall_time if self.wall_time else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cached / self.completed if self.completed else 0.0

    def as_dict(self) -> dict:
        return {
            "n_clients": self.n_clients,
            "requests": self.requests,
            "completed": self.completed,
            "cached": self.cached,
            "errors": self.errors,
            "retries": self.retries,
            "error_codes": dict(self.error_codes),
            "wall_time": self.wall_time,
            "throughput": self.throughput,
            "hit_rate": self.hit_rate,
            "p50": _percentile(self.latencies, 0.50),
            "p99": _percentile(self.latencies, 0.99),
            "cold_p50": _percentile(self.cold_latencies, 0.50),
            "cached_p50": _percentile(self.cached_latencies, 0.50),
        }

    def summary(self) -> str:
        d = self.as_dict()
        return (
            f"{d['completed']}/{d['requests']} ok "
            f"({d['errors']} errors, {d['retries']} retries) in {d['wall_time']:.2f}s | "
            f"{d['throughput']:.1f} submissions/s | "
            f"p50 {d['p50'] * 1e3:.1f}ms p99 {d['p99'] * 1e3:.1f}ms | "
            f"hit rate {d['hit_rate']:.0%} "
            f"(cold p50 {d['cold_p50'] * 1e3:.1f}ms, "
            f"cached p50 {d['cached_p50'] * 1e3:.1f}ms)"
        )

    def record(self, outcome: SubmitOutcome) -> None:
        self.completed += 1
        self.latencies.append(outcome.latency)
        canonical = json.dumps(
            outcome.result_payload, sort_keys=True, separators=(",", ":")
        )
        self.result_digests[outcome.id] = hashlib.sha256(
            canonical.encode()
        ).hexdigest()
        if outcome.cached:
            self.cached += 1
            self.cached_latencies.append(outcome.latency)
        else:
            self.cold_latencies.append(outcome.latency)

    def record_error(self, exc: ServiceError) -> None:
        self.errors += 1
        self.error_codes[exc.code] = self.error_codes.get(exc.code, 0) + 1


async def run_loadgen(
    host: str,
    port: int,
    *,
    n_clients: int = 8,
    requests_per_client: int = 6,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
    pool: Optional[list[SubmissionSpec]] = None,
    retry: Optional[RetryPolicy] = None,
) -> LoadgenReport:
    """Drive the service from ``n_clients`` concurrent connections.

    Each client walks the spec pool; with probability
    ``duplicate_fraction`` it re-submits the pool's first spec (the
    shared hot key) instead of advancing — that overlap across clients
    is what fills and then exercises the result cache.

    ``retry`` arms every client with the same :class:`RetryPolicy`
    (seeded per client off ``seed`` when the policy itself is seeded, so
    two clients never share a jitter stream); the report's ``retries``
    aggregates the extra attempts made across all clients.
    """
    specs = pool if pool is not None else spec_pool(seed=seed)
    report = LoadgenReport(n_clients=n_clients)
    report.requests = n_clients * requests_per_client

    async def one_client(cid: int) -> None:
        rng = random.Random((seed << 8) ^ cid)
        policy = retry
        if policy is not None and policy.seed is not None:
            policy = RetryPolicy(
                max_attempts=policy.max_attempts,
                base_s=policy.base_s,
                cap_s=policy.cap_s,
                deadline_s=policy.deadline_s,
                codes=policy.codes,
                seed=(policy.seed << 8) ^ cid,
            )
        async with AsyncServiceClient(host, port, retry=policy) as client:
            for i in range(requests_per_client):
                if rng.random() < duplicate_fraction:
                    spec = specs[0]
                else:
                    spec = specs[(cid + i) % len(specs)]
                try:
                    outcome = await client.submit(spec, rid=f"c{cid}-r{i}")
                except ServiceError as exc:
                    report.record_error(exc)
                else:
                    report.record(outcome)
            report.retries += client.retries

    t0 = time.perf_counter()
    await asyncio.gather(*(one_client(c) for c in range(n_clients)))
    report.wall_time = time.perf_counter() - t0
    return report


def run_loadgen_sync(host: str, port: int, **kwargs) -> LoadgenReport:
    """Blocking wrapper around :func:`run_loadgen` (owns its loop)."""
    return asyncio.run(run_loadgen(host, port, **kwargs))


__all__ = ["LoadgenReport", "run_loadgen", "run_loadgen_sync", "spec_pool"]
