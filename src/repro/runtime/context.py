"""Current-runtime context.

OmpSs task pragmas turn function calls into task submissions only when a
runtime is active; otherwise the annotated function is just a function.
This module holds the (per-process) stack of active runtimes that the
``@task`` decorator consults on every call.  A stack — rather than a
single slot — supports nested runtimes in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime

_stack: list["OmpSsRuntime"] = []


def push_runtime(rt: "OmpSsRuntime") -> None:
    _stack.append(rt)


def pop_runtime(rt: "OmpSsRuntime") -> None:
    if not _stack or _stack[-1] is not rt:
        raise RuntimeError("runtime context stack corrupted (mismatched pop)")
    _stack.pop()


def current_runtime() -> Optional["OmpSsRuntime"]:
    return _stack[-1] if _stack else None
