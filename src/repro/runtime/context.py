"""Current-runtime context.

OmpSs task pragmas turn function calls into task submissions only when a
runtime is active; otherwise the annotated function is just a function.
This module holds the stack of active runtimes that the ``@task``
decorator consults on every call.  A stack — rather than a single
slot — supports nested runtimes in tests.  The stack is **per thread**:
the scheduler service runs independent simulations on worker threads,
and each master body must only see its own runtime.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime


class _ThreadStack(threading.local):
    def __init__(self) -> None:
        self.items: list["OmpSsRuntime"] = []


_tls = _ThreadStack()


def push_runtime(rt: "OmpSsRuntime") -> None:
    _tls.items.append(rt)


def pop_runtime(rt: "OmpSsRuntime") -> None:
    if not _tls.items or _tls.items[-1] is not rt:
        raise RuntimeError("runtime context stack corrupted (mismatched pop)")
    _tls.items.pop()


def current_runtime() -> Optional["OmpSsRuntime"]:
    return _tls.items[-1] if _tls.items else None
