"""JSON serialization for run results and traces.

Until now a :class:`~repro.runtime.runtime.RunResult` only lived inside
the process that produced it; the scheduler service needs to ship
results over a socket and park them in a result cache, so the
*observable* outcome of a run — everything :class:`RunResult` compares
by — round-trips through a versioned JSON schema:

* ``trace_to_dict`` / ``trace_from_dict`` — the full record list,
  including ``meta`` tuples (scalars only, which is all live traces
  carry), with float-exact round-trips (``json`` emits ``repr(float)``),
* ``run_result_to_dict`` / ``run_result_from_dict`` — scheduler,
  machine, makespan, task counts, transfer/cache/resilience statistics,
  version counts, worker stats, trace and finish order.

Live run internals (the dependence graph, worker objects, scheduler
state, the access recorder) are process-bound by nature and are *not*
serialized; they deserialize as ``None``/empty, exactly the fields
``RunResult`` already excludes from equality.  Schemas are versioned;
an unknown version raises :class:`SchemaError` instead of guessing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.memory.cache import CacheStats
from repro.memory.transfers import TransferStats, TxCategory
from repro.resilience.recovery import ResilienceStats
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from repro.runtime.runtime import RunResult

#: Schema tags, bumped on any incompatible layout change.
TRACE_SCHEMA = "repro.trace/1"
RUN_RESULT_SCHEMA = "repro.run-result/1"

_META_SCALARS = (str, int, float, bool)


class SchemaError(ValueError):
    """Payload is not a recognised serialized run result / trace."""


def _require_schema(payload: Any, expected: str) -> dict:
    if not isinstance(payload, dict):
        raise SchemaError(f"expected a JSON object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != expected:
        raise SchemaError(f"expected schema {expected!r}, got {schema!r}")
    return payload


def _meta_to_json(meta: tuple) -> list:
    out = []
    for item in meta:
        if not isinstance(item, _META_SCALARS):
            # Nested/exotic metadata only appears on synthetic traces
            # (sanitizer diagnostics build their own records); a run
            # trace carries scalars.  Stringify rather than refuse so
            # the trace stays shippable, but keep it visible.
            out.append(repr(item))
        else:
            out.append(item)
    return out


# ----------------------------------------------------------------------
# Trace
# ----------------------------------------------------------------------
def trace_to_dict(trace: Trace) -> dict:
    """Serialize a trace to a JSON-compatible dict (append order kept)."""
    return {
        "schema": TRACE_SCHEMA,
        "records": [
            [r.start, r.end, r.worker, r.category, r.label, _meta_to_json(r.meta)]
            for r in trace
        ],
    }


def trace_from_dict(payload: dict) -> Trace:
    """Rebuild a :class:`Trace` from :func:`trace_to_dict` output."""
    payload = _require_schema(payload, TRACE_SCHEMA)
    trace = Trace()
    try:
        for start, end, worker, category, label, meta in payload["records"]:
            trace.add(start, end, worker, category, label, meta=tuple(meta))
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed trace record list: {exc}") from exc
    return trace


# ----------------------------------------------------------------------
# Statistics blocks
# ----------------------------------------------------------------------
def _transfer_stats_to_dict(stats: TransferStats) -> dict:
    return {
        "bytes": {c.name: stats.bytes_by_category.get(c, 0) for c in TxCategory},
        "counts": {c.name: stats.count_by_category.get(c, 0) for c in TxCategory},
    }


def _transfer_stats_from_dict(payload: dict) -> TransferStats:
    stats = TransferStats()
    for c in TxCategory:
        stats.bytes_by_category[c] = int(payload["bytes"].get(c.name, 0))
        stats.count_by_category[c] = int(payload["counts"].get(c.name, 0))
    return stats


def _cache_stats_to_dict(stats: CacheStats) -> dict:
    return {
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "writeback_bytes": stats.writeback_bytes,
    }


def _cache_stats_from_dict(payload: dict) -> CacheStats:
    return CacheStats(
        evictions=int(payload.get("evictions", 0)),
        writebacks=int(payload.get("writebacks", 0)),
        writeback_bytes=int(payload.get("writeback_bytes", 0)),
    )


def _resilience_from_dict(payload: dict) -> ResilienceStats:
    stats = ResilienceStats()
    known = stats.as_dict()
    for key, value in payload.items():
        if key in known:
            setattr(stats, key, int(value))
    return stats


# ----------------------------------------------------------------------
# RunResult
# ----------------------------------------------------------------------
def run_result_to_dict(result: "RunResult") -> dict:
    """Serialize the observable outcome of a run (the compared fields).

    ``finish_order`` keeps the producing run's task uids; they identify
    tasks only relative to that run's numbering (like the run-local
    sequence numbers carried in trace metadata).
    """
    return {
        "schema": RUN_RESULT_SCHEMA,
        "scheduler": result.scheduler,
        "machine": result.machine,
        "makespan": result.makespan,
        "tasks_completed": result.tasks_completed,
        "transfer_stats": _transfer_stats_to_dict(result.transfer_stats),
        "cache_stats": _cache_stats_to_dict(result.cache_stats),
        "version_counts": {
            name: dict(counts) for name, counts in result.version_counts.items()
        },
        "worker_stats": {
            name: dict(stats) for name, stats in result.worker_stats.items()
        },
        "trace": trace_to_dict(result.trace),
        "finish_order": list(result.finish_order),
        "resilience": result.resilience.as_dict(),
    }


def run_result_from_dict(payload: dict) -> "RunResult":
    """Rebuild a :class:`RunResult` from :func:`run_result_to_dict`.

    The live-run fields (``graph``, ``workers``, ``scheduler_state``,
    ``recorder``, ``local_ids``) come back empty — they never leave the
    producing process.  Everything the dataclass compares by is
    restored exactly, so ``from_json(x.to_json()) == x``.
    """
    from repro.runtime.runtime import RunResult

    payload = _require_schema(payload, RUN_RESULT_SCHEMA)
    try:
        return RunResult(
            scheduler=payload["scheduler"],
            machine=payload["machine"],
            makespan=payload["makespan"],
            tasks_completed=payload["tasks_completed"],
            transfer_stats=_transfer_stats_from_dict(payload["transfer_stats"]),
            cache_stats=_cache_stats_from_dict(payload["cache_stats"]),
            version_counts={
                name: {v: int(n) for v, n in counts.items()}
                for name, counts in payload["version_counts"].items()
            },
            worker_stats={
                name: {k: float(v) for k, v in stats.items()}
                for name, stats in payload["worker_stats"].items()
            },
            trace=trace_from_dict(payload["trace"]),
            finish_order=[int(u) for u in payload["finish_order"]],
            resilience=_resilience_from_dict(payload.get("resilience", {})),
        )
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed run-result payload: {exc}") from exc


__all__ = [
    "RUN_RESULT_SCHEMA",
    "TRACE_SCHEMA",
    "SchemaError",
    "run_result_from_dict",
    "run_result_to_dict",
    "trace_from_dict",
    "trace_to_dict",
]
