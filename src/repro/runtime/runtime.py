"""The OmpSs runtime core.

Execution model (mirroring Nanos++ as described in §III/§IV-B):

* a master thread (the caller's Python code) creates tasks; each
  submission runs the dependence analysis and hands *ready* tasks to the
  scheduling policy,
* the policy dispatches each ready task — one chosen version, one chosen
  worker — into that worker's FIFO queue,
* a worker starts its head task once the task's input regions hold valid
  copies in the worker's memory space; input transfers are issued at
  dispatch time (prefetch) so they overlap with the execution of earlier
  tasks, unless overlap is disabled,
* on completion the runtime updates the coherence directory (writes
  invalidate remote copies), reports the measured duration back to the
  scheduler, releases dependent tasks, and the worker proceeds,
* ``taskwait`` blocks the master until every submitted task has retired,
  then flushes dirty data back to the host (unless ``noflush``).

Time is simulated: durations come from the machine's device cost models
and transfers from its links.  Task bodies may still execute real NumPy
kernels so applications produce verifiable numerical results.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping, Optional, Union

from repro.memory.cache import CacheManager, CacheStats
from repro.memory.directory import Directory, TransferRequest
from repro.memory.transfers import TransferEngine, TransferStats
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import (
    RecoveryPolicy,
    ResilienceManager,
    ResilienceStats,
)
from repro.runtime import context
from repro.runtime.dataregion import DataRegion
from repro.runtime.dependences import DependenceGraph
from repro.runtime.task import TaskInstance, TaskState, TaskVersion
from repro.runtime.worker import Worker
from repro.sim.engine import EventKind, SimEngine
from repro.sim.topology import HOST_SPACE, Machine
from repro.sim.trace import Trace

_EPS = 1e-12


@dataclass
class RuntimeConfig:
    """Runtime tunables (the paper's environment-variable switches).

    ``overlap_transfers`` + ``prefetch`` reproduce the configuration used
    throughout the paper's evaluation ("we configured OmpSs to overlap
    data transfers with task execution.  We also combined this feature
    with prefetching task data", §V-A2).  Disabling them is used by the
    overlap ablation bench.
    """

    overlap_transfers: bool = True
    prefetch: bool = True
    #: How many tasks deep into each worker queue input transfers are
    #: issued ahead of execution.  Bounds pinned device memory to
    #: ``window x task working set`` while still overlapping transfers
    #: with the execution of earlier tasks.
    prefetch_window: int = 4
    #: Task-creation throttle (the Nanos++ throttle policy): the master
    #: thread blocks in ``submit`` while this many tasks are in flight,
    #: bounding runtime memory and look-ahead.  ``None`` = unthrottled.
    max_in_flight_tasks: Optional[int] = None
    flush_on_wait: bool = True
    execute_bodies: bool = True
    check_aliasing: bool = False
    #: Aliasing policy for the dependence graph: ``None`` derives it
    #: from ``check_aliasing`` ("reject" vs "off"); "report" collects
    #: SAN-R003 sanitizer diagnostics instead of raising.
    alias_policy: Optional[str] = None
    #: Run task bodies under the sanitizer's access recorder: actual
    #: reads/writes are diffed against the declared clauses and exposed
    #: through ``RunResult.race_diagnostics()`` / ``validate()``.
    #: Implies nothing unless ``execute_bodies`` is on and kernels are
    #: real NumPy code.
    record_accesses: bool = False
    max_events: Optional[int] = None
    #: Global progress watchdog: if no task completes for this many
    #: simulated seconds (``progress_stall_limit`` consecutive times)
    #: while tasks are unfinished, the run fails with a diagnostic dump
    #: (:class:`repro.resilience.watchdog.ProgressStallError`) instead
    #: of stalling forever.  ``None`` disables it.
    progress_horizon: Optional[float] = None
    progress_stall_limit: int = 3

    def __post_init__(self) -> None:
        if self.prefetch and not self.overlap_transfers:
            # prefetch is meaningless without overlap; normalise silently
            self.prefetch = False
        if self.prefetch_window < 1:
            raise ValueError("prefetch_window must be >= 1")
        if self.max_in_flight_tasks is not None and self.max_in_flight_tasks < 1:
            raise ValueError("max_in_flight_tasks must be >= 1 or None")
        if self.progress_horizon is not None and self.progress_horizon <= 0:
            raise ValueError("progress_horizon must be positive or None")
        if self.progress_stall_limit < 1:
            raise ValueError("progress_stall_limit must be >= 1")

    @property
    def effective_window(self) -> int:
        """Queue depth at which tasks are prepared (1 = head only)."""
        return self.prefetch_window if self.prefetch else 1


@dataclass
class RunResult:
    """Everything a finished run exposes to analysis code."""

    scheduler: str
    machine: str
    makespan: float
    tasks_completed: int
    transfer_stats: TransferStats
    cache_stats: CacheStats
    version_counts: dict[str, dict[str, int]]
    worker_stats: dict[str, dict[str, float]]
    trace: Trace
    finish_order: list[int]
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: live run internals for the sanitizer (excluded from equality so
    #: determinism tests keep comparing results by observable outcome)
    graph: Optional[DependenceGraph] = field(
        default=None, repr=False, compare=False
    )
    workers: list[Worker] = field(
        default_factory=list, repr=False, compare=False
    )
    scheduler_state: Any = field(default=None, repr=False, compare=False)
    recorder: Any = field(default=None, repr=False, compare=False)
    local_ids: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def version_fractions(self, task_name: str) -> dict[str, float]:
        """Share of executions per version of one task (Figures 8/11/14/15)."""
        counts = self.version_counts.get(task_name, {})
        total = sum(counts.values())
        if total == 0:
            return {}
        return {v: n / total for v, n in counts.items()}

    def gflops(self, total_flops: float) -> float:
        """Aggregate rate given the application's total flop count."""
        if self.makespan <= 0:
            return 0.0
        return total_flops / self.makespan / 1e9

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        """Serialize the observable outcome to a versioned JSON string.

        Everything the dataclass compares by round-trips exactly; the
        live-run internals (graph, workers, scheduler state, recorder)
        are process-bound and excluded — see
        :mod:`repro.runtime.serialize`.
        """
        import json

        from repro.runtime.serialize import run_result_to_dict

        return json.dumps(run_result_to_dict(self), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        """Rebuild a result serialized with :meth:`to_json`."""
        import json

        from repro.runtime.serialize import run_result_from_dict

        return run_result_from_dict(json.loads(payload))

    # -- sanitizer entry points ----------------------------------------
    def validate(self, *, strict: bool = True, static: bool = False) -> list:
        """Run every applicable sanitizer check over this result.

        Covers the trace invariants (SAN-T*), the aliasing findings
        collected by the dependence graph (SAN-R003) and — when the run
        recorded accesses — the declared-vs-actual diff and
        happens-before analysis (SAN-R001/R002/R010).  With ``static``
        the static effect pre-flight also runs over the task definitions
        this run executed (SAN-S00x, best-effort: versions with callable
        clause specs or unrecoverable source are skipped).  With
        ``strict`` (the default) error-severity findings raise
        :class:`repro.sanitizer.SanitizerError`; otherwise the list of
        diagnostics is returned for inspection.
        """
        from repro.sanitizer import validate_run
        from repro.sanitizer.diagnostics import raise_if_errors

        diags = validate_run(self)
        if static:
            from repro.sanitizer.static import check_definitions

            definitions: dict = {}
            if self.graph is not None:
                for t in self.graph._tasks.values():
                    definitions.setdefault(t.definition.name, t.definition)
            else:
                from repro.runtime.directives import registered_tasks

                definitions = registered_tasks()
            diags.extend(check_definitions(definitions))
        if strict:
            raise_if_errors(diags)
        return diags

    def race_diagnostics(self) -> list:
        """Dynamic-race findings of this run (requires ``record_accesses``)."""
        from repro.sanitizer.races import check_happens_before

        out = list(self.recorder.diagnostics()) if self.recorder is not None else []
        if self.graph is not None:
            out.extend(self.graph.alias_diagnostics)
            out.extend(check_happens_before(self.graph, recorder=self.recorder))
        return out


class OmpSsRuntime:
    """One run of the OmpSs-like runtime on a simulated machine.

    Use as a context manager; the ``with`` body plays the role of the
    master thread::

        rt = OmpSsRuntime(machine, scheduler="versioning")
        with rt:
            for ...: some_task(...)
            rt.taskwait()
        result = rt.result()
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: "Union[str, Any]" = "versioning",
        *,
        config: Optional[RuntimeConfig] = None,
        scheduler_options: Optional[Mapping[str, Any]] = None,
        fault_plan: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        from repro.schedulers.registry import create_scheduler  # avoid cycle

        self.machine = machine
        self.config = config or RuntimeConfig()
        self.engine = SimEngine()
        self.trace = Trace()
        self.directory = Directory(HOST_SPACE)
        self.resilience = ResilienceManager(plan=fault_plan, policy=recovery)
        self.transfer_engine = TransferEngine(
            self.engine, machine, trace=self.trace, host=HOST_SPACE,
            resilience=self.resilience,
        )
        self.cache = CacheManager(machine, self.directory, self.transfer_engine)
        self.graph = DependenceGraph(
            check_aliasing=self.config.check_aliasing,
            alias_policy=self.config.alias_policy,
        )
        self.recorder = None
        if self.config.record_accesses:
            from repro.sanitizer.races import AccessRecorder

            self.recorder = AccessRecorder()
        self.workers: list[Worker] = [Worker(d) for d in machine.devices]
        self._workers_by_name = {w.name: w for w in self.workers}

        #: cluster node layout, set via :meth:`enable_node_topology` by
        #: node-aware schedulers (typically during their ``bind``); None
        #: for ordinary single-node runs
        self.node_topology = None
        self._sorted_hosts: list[str] = []
        self._host_set: set[str] = set()
        if isinstance(scheduler, str):
            self.scheduler = create_scheduler(scheduler, **dict(scheduler_options or {}))
        else:
            if scheduler_options:
                raise ValueError("pass scheduler options to the scheduler instance directly")
            self.scheduler = scheduler
        self.scheduler.bind(self)
        self.resilience.bind(self)
        self.version_counts: dict[str, dict[str, int]] = {}
        self._finish_order: list[int] = []
        self._tasks_completed = 0
        self._tasks_submitted = 0
        # region rid -> {space -> completion time} of in-flight copies.
        # Nested rather than keyed by (rid, space): the cluster push
        # path scans every node host per pushed region, and one lookup
        # of the (usually tiny) per-region map replaces a tuple
        # allocation + dict probe per host
        self._inflight: dict[int, dict[str, float]] = {}
        # region rid -> uids of every task that wrote it, in finish
        # order: the recomputation lineage replayed when a node crash
        # destroys the only valid copies
        self._write_log: dict[int, list[int]] = {}
        # region rid -> simulated time its crash-recovery recomputation
        # completes; reads of these regions wait instead of sourcing a
        # copy (there is none anywhere)
        self._recovering: dict[int, float] = {}
        # task uid -> time its input transfers complete (prepared tasks)
        self._xfer_ready: dict[int, float] = {}
        # task uids whose regions are currently pinned in a space
        self._pinned: set[int] = set()
        # global uid -> run-local sequence number (for trace determinism)
        self._local_ids: dict[int, int] = {}
        # run-local uid allocator: submitted instances (and speculative
        # shadows) are renumbered from this counter, so two identical
        # runs expose identical uids — finish_order and serialized
        # results stay byte-identical no matter how many runtimes the
        # process ran before
        self._uid_alloc = itertools.count(1)
        # speculation bookkeeping: primary uid -> shadow instance and the
        # reverse (shadow uid -> primary instance)
        self._spec_shadow: dict[int, TaskInstance] = {}
        self._spec_primary: dict[int, TaskInstance] = {}
        self.progress_watchdog = None
        if self.config.progress_horizon is not None:
            from repro.resilience.watchdog import ProgressWatchdog

            self.progress_watchdog = ProgressWatchdog(
                self,
                self.config.progress_horizon,
                stall_limit=self.config.progress_stall_limit,
            )
        self._closed = False

    # ------------------------------------------------------------------
    # Master-thread interface
    # ------------------------------------------------------------------
    def __enter__(self) -> "OmpSsRuntime":
        if self._closed:
            raise RuntimeError("runtime already finished; create a new one")
        context.push_runtime(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        context.pop_runtime(self)
        if exc_type is None:
            self.wait_all()

    def submit(self, t: TaskInstance) -> None:
        """Submit one task instance (called by the ``@task`` wrapper).

        With ``max_in_flight_tasks`` set, the master blocks here (the
        simulation advances) until the in-flight count drops below the
        throttle — the Nanos++ task-creation throttle.
        """
        if self._closed:
            raise RuntimeError("runtime already finished; create a new one")
        limit = self.config.max_in_flight_tasks
        if limit is not None and self.graph.unfinished >= limit:
            graph = self.graph
            if not self.engine.run_while(lambda: graph.unfinished >= limit):
                raise RuntimeError(
                    "deadlock in throttled submit: in-flight tasks pending "
                    "but no events queued"
                )
        t.submit_time = self.engine.now
        self._tasks_submitted += 1
        # renumber to a run-local uid; the process-global uid the
        # instance was born with only guaranteed uniqueness up to here
        t.uid = next(self._uid_alloc)
        # run-local sequence number: traces use it instead of the uid so
        # two identical runs produce identical traces
        self._local_ids[t.uid] = self._tasks_submitted
        for region in t.regions():
            self.directory.register(region)
        ready = self.graph.add_task(t)
        # the scheduler sees the task (and its dependence edges) before
        # it can become ready — cluster sharding assigns the shard here
        self.scheduler.task_submitted(t)
        if ready:
            self._mark_ready(t)

    def taskwait(self, *, noflush: bool = False) -> None:
        """Block the master until all submitted tasks retire.

        ``noflush`` reproduces the extended ``taskwait noflush`` clause:
        synchronise tasks without copying device data back to the host.
        """
        graph = self.graph
        if not self.engine.run_while(
            lambda: graph.unfinished, guard=self.config.max_events
        ):
            raise RuntimeError(
                f"deadlock: {self.graph.unfinished} tasks pending but the event "
                "queue is empty (dependence cycle or dispatch bug)"
            )
        if self.config.flush_on_wait and not noflush:
            self._flush_to_host()

    def taskwait_on(self, *data: Any, noflush: bool = False) -> None:
        """``taskwait on(...)`` — block until the given data is produced.

        Unlike a plain :meth:`taskwait`, only the named regions gate the
        master, and only they are flushed back to the host; unrelated
        tasks keep running ("allows the encountering task to block until
        some data is produced", §III).
        """
        from repro.runtime.dataregion import region_of

        regions = [region_of(d) for d in data]
        graph = self.graph
        if not self.engine.run_while(
            lambda: any(graph.pending_writer(r) is not None for r in regions),
            guard=self.config.max_events,
        ):
            raise RuntimeError(
                "deadlock in taskwait_on: writers pending but no events queued"
            )
        if self.config.flush_on_wait and not noflush:
            last = self.engine.now
            for r in regions:
                req = self.directory.writeback_request(r)
                if req is not None:
                    last = max(last, self.transfer_engine.issue(req))
                    self.directory.note_writeback_done(r)
            if last > self.engine.now:
                self.engine.schedule(last, lambda: None, kind=EventKind.RUNTIME,
                                     label="flush-on")
                self.engine.run(until=last)

    def wait_all(self) -> "RunResult":
        """Final barrier: taskwait + flush, then freeze the run."""
        self.taskwait()
        self._closed = True
        return self.result()

    def result(self) -> RunResult:
        makespan = self.engine.now
        worker_stats = {
            w.name: {
                "tasks_run": float(w.tasks_run),
                "busy_time": w.busy_time,
                "utilisation": (w.busy_time / makespan) if makespan > 0 else 0.0,
            }
            for w in self.workers
        }
        return RunResult(
            scheduler=self.scheduler.name,
            machine=self.machine.name,
            makespan=makespan,
            tasks_completed=self._tasks_completed,
            transfer_stats=self.transfer_engine.stats,
            cache_stats=self.cache.stats,
            version_counts={k: dict(v) for k, v in self.version_counts.items()},
            worker_stats=worker_stats,
            trace=self.trace,
            finish_order=list(self._finish_order),
            resilience=self.resilience.stats,
            graph=self.graph,
            workers=list(self.workers),
            scheduler_state=self.scheduler,
            recorder=self.recorder,
            local_ids=dict(self._local_ids),
        )

    # ------------------------------------------------------------------
    # Scheduler-facing interface
    # ------------------------------------------------------------------
    def worker(self, name: str) -> Worker:
        return self._workers_by_name[name]

    def dispatch(self, t: TaskInstance, worker: Worker, version: TaskVersion) -> None:
        """Place a ready task, with its chosen version, in a worker queue."""
        if t.state is not TaskState.READY:
            raise RuntimeError(f"dispatch of non-ready task {t.label!r} ({t.state})")
        if not worker.alive:
            raise RuntimeError(
                f"dispatch of {t.label!r} to failed worker {worker.name!r}"
            )
        if version not in t.definition.versions:
            raise ValueError(
                f"version {version.name!r} does not belong to task {t.name!r}"
            )
        if not version.runs_on(worker.device.kind):
            raise ValueError(
                f"version {version.name!r} (devices "
                f"{[k.value for k in version.device_kinds]}) cannot run on worker "
                f"{worker.name!r} ({worker.device.kind.value})"
            )
        t.chosen_version = version
        t.chosen_worker = worker.name
        t.state = TaskState.QUEUED

        worker.enqueue(t)
        self._prepare_window(worker)
        self._try_start(worker)

    def enable_node_topology(self, layout) -> None:
        """Turn on cluster awareness (called by node-aware schedulers).

        The directory starts preferring same-node sources and spreading
        remote pulls across replica-holding hosts, and read transfers
        may chain off in-flight staging copies toward a node's host.
        """
        self.node_topology = layout
        host_spaces = set(layout.host_of_node.values())
        # sorted once: push_region scans the host list per pushed region
        self._sorted_hosts = sorted(host_spaces)
        self._host_set = set(host_spaces)
        self.directory.set_topology(layout.node_of_space, host_spaces)

    def push_region(self, region: DataRegion, space: str) -> tuple[float, bool]:
        """Proactively replicate ``region`` into ``space``.

        The cluster protocol layer pushes a predecessor's output toward
        the consuming shard's host overlapped with scheduling.  Returns
        ``(ready_time, issued)`` — ``issued`` is False when the space
        already holds (or is already receiving) a valid copy.
        """
        now = self.engine.now
        if self.directory.register_valid_in(region, space):
            return now, False
        rec = self._recovering.get(region.rid)
        if rec is not None:
            # every copy died with a crashed node; retry the push once
            # the recomputation has restored the home copy
            self.engine.schedule(
                max(rec, now),
                lambda: self.push_region(region, space),
                kind=EventKind.RETRY,
                label=f"push {region.label} after recovery",
            )
            return max(rec, now), False
        by_space = self._inflight.get(region.rid)
        if by_space is not None:
            inflight = by_space.get(space)
            if inflight is not None and inflight > now + _EPS:
                return inflight, False
        if self.node_topology is not None and by_space:
            # cooperative multicast: if the region is already on the wire
            # toward another node's host, chain this hop off that copy —
            # the broadcast pipelines across per-node NICs instead of
            # serialising every replica on the origin host's NIC.
            # Scanning the (tiny) in-flight map instead of every node
            # host, min over (time, host) replicates the sorted-host
            # scan's tie-break exactly
            best: Optional[tuple[float, str]] = None
            host_set = self._host_set
            threshold = now + _EPS
            for h, staged in by_space.items():
                if h == space or h not in host_set or staged <= threshold:
                    continue
                cand = (staged, h)
                if best is None or cand < best:
                    best = cand
            if best is not None:
                req = TransferRequest(region, best[1], space)
                done = self.transfer_engine.issue(
                    req, earliest=best[0], on_complete=self._make_transfer_done(req)
                )
                self._set_inflight(region.rid, space, done)
                return done, True
        req = self.directory.reads_needed(region, space)
        if req is None:  # pragma: no cover - raced with completion
            return now, False
        done = self.transfer_engine.issue(req, on_complete=self._make_transfer_done(req))
        self._set_inflight(region.rid, space, done)
        return done, True

    def missing_read_bytes(self, t: TaskInstance, space: str) -> int:
        """Bytes that would have to move for ``t``'s reads on ``space``.

        Used by the affinity policy and the locality-aware versioning
        variant; counts each needed region once, ignoring in-flight
        copies (the policy sees directory state, like Nanos++'s).
        """
        total = 0
        for region in {a.region.rid: a.region for a in t.accesses if a.reads}.values():
            if not self.directory.is_valid(region, space):
                total += region.nbytes
        return total

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _mark_ready(self, t: TaskInstance) -> None:
        # The scheduler may dispatch immediately (dep/affinity) or hold
        # the task in its own ready pool (versioning's bounded-queue
        # dispatch); an undispatched task that never moves will surface
        # as a deadlock in taskwait().
        t.state = TaskState.READY
        t.ready_time = self.engine.now
        self.scheduler.task_ready(t)

    def _prepare_window(self, worker: Worker) -> None:
        """Prepare the first ``prefetch_window`` queued tasks of a worker.

        Preparation = allocate + pin the task's regions in the worker's
        space and issue the input transfers.  Deferring preparation for
        deep queue positions bounds the pinned working set (a 6 GB GPU
        cannot pin a 16 GB backlog) while still overlapping transfers
        with the execution of the tasks ahead — the paper's prefetch
        configuration (§V-A2).
        """
        window = self.config.effective_window
        if not self.config.overlap_transfers and worker.current is not None:
            # overlap disabled: transfers may only start once the worker
            # is idle and about to run the task (strict serialisation)
            return
        space = worker.space
        for idx, t in enumerate(worker.queue):
            if idx >= window:
                break
            if t.uid in self._xfer_ready:
                continue
            for region in t.regions():
                self.cache.ensure_resident(space, region)
                self.cache.pin(space, region)
            self._pinned.add(t.uid)
            self._xfer_ready[t.uid] = self._issue_read_transfers(t, space)

    def _issue_read_transfers(self, t: TaskInstance, space: str) -> float:
        """Start copies for every read region not valid in ``space``.

        Returns the simulated time at which all inputs are valid there.
        Copies already in flight toward ``space`` are reused, never
        duplicated.
        """
        now = self.engine.now
        threshold = now + _EPS
        ready = now
        directory = self.directory
        inflight = self._inflight
        seen: set = set()
        for acc in t.accesses:
            region = acc.region
            rid = region.rid
            if not acc.reads or rid in seen:
                continue
            seen.add(rid)
            if directory.is_valid(region, space):
                continue
            rec = self._recovering.get(rid)
            if rec is not None:
                # no copy exists anywhere until the crash recovery
                # lands; re-issue this task's transfers at that point
                ready = max(ready, rec)
                self.engine.schedule(
                    max(rec, now),
                    lambda tt=t, sp=space: self._reissue_after_recovery(tt, sp),
                    kind=EventKind.RETRY,
                    label=f"reissue {t.name} after recovery",
                )
                continue
            by_space = inflight.get(rid)
            pending = by_space.get(space) if by_space is not None else None
            if pending is not None and pending > threshold:
                if pending > ready:
                    ready = pending
                continue
            # cluster staging: a copy toward this worker's node host is
            # already in flight — chain the final intra-node hop off it
            # instead of pulling across the network a second time
            if self.node_topology is not None:
                host = self.node_topology.host_of_space(space)
                if host is not None and host != space:
                    staged = by_space.get(host) if by_space is not None else None
                    if staged is not None and staged > threshold:
                        req = TransferRequest(region, host, space)
                        done = self.transfer_engine.issue(
                            req,
                            earliest=staged,
                            on_complete=self._make_transfer_done(req),
                        )
                        by_space[space] = done
                        if done > ready:
                            ready = done
                        continue
            req = directory.reads_needed(region, space)
            if req is None:  # pragma: no cover - raced with completion
                continue
            done = self.transfer_engine.issue(
                req,
                on_complete=self._make_transfer_done(req),
            )
            self._set_inflight(rid, space, done)
            if done > ready:
                ready = done
        return ready

    def _reissue_after_recovery(self, t: TaskInstance, space: str) -> None:
        """Re-run a prepared task's input transfers after crash recovery."""
        if t.uid not in self._xfer_ready:
            return  # requeued, cancelled or already running elsewhere
        done = self._issue_read_transfers(t, space)
        if done > self._xfer_ready[t.uid]:
            self._xfer_ready[t.uid] = done
        w = (
            self._workers_by_name.get(t.chosen_worker)
            if t.chosen_worker
            else None
        )
        if w is not None:
            self._try_start(w)

    def _set_inflight(self, rid: int, space: str, done: float) -> None:
        by_space = self._inflight.get(rid)
        if by_space is None:
            by_space = self._inflight[rid] = {}
        by_space[space] = done

    def _make_transfer_done(self, req: TransferRequest):
        def _done() -> None:
            if req.dst in self.transfer_engine.down_spaces:
                return  # the destination's node died while on the wire
            self.directory.mark_valid(req.region, req.dst)
            by_space = self._inflight.get(req.region.rid)
            if by_space is not None:
                by_space.pop(req.dst, None)

        return _done

    def _try_start(self, worker: Worker) -> None:
        if not worker.alive or worker.current is not None:
            return
        t = worker.peek()
        if t is None:
            return
        ready = self._xfer_ready.get(t.uid)
        if ready is None:
            self._prepare_window(worker)
            ready = self._xfer_ready[t.uid]
        now = self.engine.now
        if ready > now + _EPS:
            # schedule (or pull forward) the wake for this worker; a
            # priority task jumping to the head may need an earlier wake
            # than one already scheduled for the previous head
            if worker._wake_at is None or ready < worker._wake_at - _EPS:
                worker._wake_at = ready
                self.engine.schedule(
                    ready,
                    lambda: self._wake(worker),
                    kind=EventKind.WORKER_WAKE,
                    label=f"wake {worker.name}",
                )
            return
        worker.pop()
        del self._xfer_ready[t.uid]
        worker.current = t
        t.state = TaskState.RUNNING
        t.start_time = now
        # nominal duration (the device cost model's estimate) feeds the
        # watchdog deadline; the actual duration is stretched by any
        # active slowdown fault — the deadline deliberately is not, so a
        # degraded worker's executions overshoot it and are recovered
        nominal = worker.device.duration(t.chosen_version.kernel, t.data_bytes, t.params)
        duration = nominal * self.resilience.slowdown_factor(worker)
        if self.resilience.task_hang_at_start(t, worker):
            # hung execution: occupies the worker forever and never
            # fires a completion event — only the straggler watchdog
            # (or the progress watchdog) can resolve it
            worker.free_at = math.inf
            worker._end_event = None
        else:
            fail_fraction = self.resilience.task_fault_at_start(t, worker)
            if fail_fraction is not None:
                # the execution faults part-way: the worker is occupied
                # for the faulted fraction, then the task re-enters
                # recovery
                fail_at = now + duration * fail_fraction
                worker.free_at = fail_at
                worker._end_event = self.engine.schedule(
                    fail_at,
                    lambda: self._fail_running(t, worker),
                    kind=EventKind.TASK_FAIL,
                    label=t.label,
                )
            else:
                worker.free_at = now + duration
                worker._end_event = self.engine.schedule(
                    now + duration,
                    lambda: self._finish(t, worker),
                    kind=EventKind.TASK_END,
                    label=t.label,
                )
        # armed after the end event so a deadline landing on the exact
        # completion time loses the (time, seq) tie-break to it
        self.resilience.on_task_start(t, worker, nominal)
        # the pop promoted a task into the prefetch window
        self._prepare_window(worker)
        self.scheduler.task_started(t, worker)

    def _wake(self, worker: Worker) -> None:
        worker._wake_at = None
        self._try_start(worker)

    def _finish(self, t: TaskInstance, worker: Worker) -> None:
        primary = self._spec_primary.get(t.uid)
        if primary is not None:
            # a speculative copy finished first: it wins the race
            self._finish_speculation_win(t, primary, worker)
            return
        now = self.engine.now
        measured = now - t.start_time
        self.resilience.on_task_stop(t)
        shadow = self._spec_shadow.get(t.uid)
        if shadow is not None:
            # the straggling original beat its speculative copy after all
            self._cancel_speculation(shadow)
        worker.current = None
        worker._end_event = None
        worker.busy_time += measured
        worker.tasks_run += 1
        t.state = TaskState.FINISHED
        t.end_time = now
        if self.config.execute_bodies:
            if self.recorder is not None:
                self.recorder.run_task(t)
            else:
                t.execute_body()
        assert t.chosen_version is not None
        self.trace.add(
            t.start_time,
            now,
            worker.name,
            "task",
            t.chosen_version.name,
            meta=(self._local_ids[t.uid],),
        )

        space = worker.space
        directory = self.directory
        cache = self.cache
        for acc in t.accesses:
            if not acc.writes:
                continue
            region = acc.region
            directory.note_write(region, space)
            cache.invalidate_stale_everywhere(region, space)
            self._write_log.setdefault(region.rid, []).append(t.uid)
            self._recovering.pop(region.rid, None)  # overwrite supersedes
        if t.uid in self._pinned:
            self._pinned.discard(t.uid)
            for region in t.regions():
                cache.unpin(space, region)

        by_task = self.version_counts.get(t.name)
        if by_task is None:
            by_task = self.version_counts[t.name] = {}
        vname = t.chosen_version.name
        by_task[vname] = by_task.get(vname, 0) + 1
        self._finish_order.append(t.uid)
        self._tasks_completed += 1

        self.resilience.on_task_success(worker)
        self.scheduler.task_finished(t, worker, measured)
        for succ in self.graph.task_finished(t):
            self._mark_ready(succ)
        self._try_start(worker)

    # ------------------------------------------------------------------
    # Failure handling (driven by the resilience subsystem)
    # ------------------------------------------------------------------
    def _fail_running(self, t: TaskInstance, worker: Worker) -> None:
        """The running task faulted transiently (TASK_FAIL event).

        The partially-executed work still occupied the worker (busy
        time), but nothing else of the execution survives: the body was
        never run, no writes reached the directory, and no duration is
        reported to the scheduler — profile tables stay uncorrupted.
        """
        now = self.engine.now
        assert t.chosen_version is not None
        self.resilience.on_task_stop(t)
        if t.uid in self._spec_primary:
            # a speculative copy faulted: charge the worker's streak and
            # withdraw the copy — the original is still in flight
            worker.current = None
            worker._end_event = None
            worker.busy_time += now - t.start_time
            self.trace.add(
                t.start_time, now, worker.name, "fault",
                t.chosen_version.name,
                meta=(self._local_ids[t.uid], t.attempts + 1),
            )
            self.resilience.on_task_fault(t, worker, will_retry=False)
            self._cancel_speculation(t)
            return
        worker.current = None
        worker._end_event = None
        worker.busy_time += now - t.start_time
        self.trace.add(
            t.start_time,
            now,
            worker.name,
            "fault",
            t.chosen_version.name,
            meta=(self._local_ids[t.uid], t.attempts + 1),
        )
        # burns retry budget, records the failed pair, may quarantine the
        # worker (draining its queue); raises TaskRetryExceededError when
        # the budget is gone.  A primary with a live speculative copy
        # does not retry (the copy carries the task), so its budget is
        # spared too.
        self.resilience.on_task_fault(
            t, worker, will_retry=t.uid not in self._spec_shadow
        )
        self._requeue(t, worker)
        self._try_start(worker)

    def _requeue(self, t: TaskInstance, worker: Worker) -> None:
        """Pull a dispatched-but-unfinished task back to the ready pool."""
        if t.uid in self._spec_primary:
            # a speculative copy never re-enters the pool: losing its
            # worker (death, quarantine drain) just cancels the race
            self._cancel_speculation(t)
            return
        now = self.engine.now
        self.resilience.on_task_stop(t)
        self._xfer_ready.pop(t.uid, None)
        if t.uid in self._pinned:
            self._pinned.discard(t.uid)
            for region in t.regions():
                self.cache.unpin(worker.space, region)
        self.scheduler.task_requeued(t, worker)
        if t.uid in self._spec_shadow:
            # a primary with a live speculative copy is parked, not
            # retried: the copy carries the task to completion
            t.state = TaskState.READY
            return
        self.trace.add(
            now, now, worker.name, "retry", t.name,
            meta=(self._local_ids[t.uid], t.attempts),
        )
        t.chosen_version = None
        t.chosen_worker = None
        self._mark_ready(t)

    # ------------------------------------------------------------------
    # Speculative re-execution (straggler recovery)
    # ------------------------------------------------------------------
    def _launch_speculation(
        self, t: TaskInstance, worker: Worker, version: TaskVersion
    ) -> TaskInstance:
        """Duplicate a straggling running task on an alternate pair.

        The copy is a real :class:`TaskInstance` sharing the original's
        accesses/arguments (so transfers, pinning and coherence use the
        ordinary machinery) but it never enters the dependence graph:
        whichever execution finishes first retires the *original* in
        dependence order, and the loser is cancelled.  The copy gets a
        priority bump so it jumps ahead of queued work — a speculation
        stuck behind a backlog would defeat its purpose.
        """
        shadow = TaskInstance(
            t.definition,
            t.accesses,
            params=t.params,
            args=t.args,
            kwargs=t.kwargs,
            priority=t.priority + 1,
            label=f"{t.label}~spec",
        )
        shadow.uid = next(self._uid_alloc)  # run-local, like submitted tasks
        shadow.speculative_of = t.uid
        shadow.attempts = t.attempts
        shadow.failed_pairs = t.failed_pairs  # shared avoid-set, by design
        shadow.submit_time = t.submit_time
        shadow.state = TaskState.READY
        shadow.ready_time = self.engine.now
        # trace records of the copy carry the original's run-local id
        self._local_ids[shadow.uid] = self._local_ids[t.uid]
        self._spec_shadow[t.uid] = shadow
        self._spec_primary[shadow.uid] = t
        self.scheduler.task_speculated(shadow, worker, version)
        self.dispatch(shadow, worker, version)
        return shadow

    def _abort_straggler(self, t: TaskInstance, worker: Worker) -> None:
        """Cancel a straggling execution and retry it elsewhere.

        The no-speculation recovery path (no alternate pair, or the
        speculation budget is spent): the burned time stays on the
        worker, and the retry budget and quarantine streak are charged
        exactly as for a transient fault.
        """
        now = self.engine.now
        assert t.chosen_version is not None
        worker.current = None
        if worker._end_event is not None:
            worker._end_event.cancel()
            worker._end_event = None
        worker.free_at = now
        worker.busy_time += now - t.start_time
        self.trace.add(
            t.start_time, now, worker.name, "aborted",
            t.chosen_version.name, meta=(self._local_ids[t.uid],),
        )
        self.resilience.on_task_fault(t, worker)
        self._requeue(t, worker)
        self._try_start(worker)

    def _cancel_speculation(self, shadow: TaskInstance) -> None:
        """Withdraw a speculative copy (queued or running) for good.

        Called when the original finishes first, when the copy faults,
        or when the copy's worker is lost.  A withdrawn copy never
        re-enters any pool; its partial execution time (if it started)
        stays on the worker as busy time under a ``spec-abort`` record,
        while a copy still waiting in a queue burned no worker time and
        leaves only a non-busy ``spec-drop`` point record.
        """
        now = self.engine.now
        primary = self._spec_primary.pop(shadow.uid, None)
        if primary is not None:
            self._spec_shadow.pop(primary.uid, None)
        w = (
            self._workers_by_name.get(shadow.chosen_worker)
            if shadow.chosen_worker
            else None
        )
        version_name = (
            shadow.chosen_version.name if shadow.chosen_version else shadow.name
        )
        if w is not None:
            if w.current is shadow:
                w.current = None
                if w._end_event is not None:
                    w._end_event.cancel()
                    w._end_event = None
                w.free_at = now
                w.busy_time += now - shadow.start_time
                self.trace.add(
                    shadow.start_time, now, w.name, "spec-abort",
                    version_name, meta=(self._local_ids[shadow.uid],),
                )
            else:
                if shadow in w.queue:
                    w.queue.remove(shadow)
                self.trace.add(
                    now, now, w.name, "spec-drop", version_name,
                    meta=(self._local_ids[shadow.uid],),
                )
            self._xfer_ready.pop(shadow.uid, None)
            if shadow.uid in self._pinned:
                self._pinned.discard(shadow.uid)
                for region in shadow.regions():
                    self.cache.unpin(w.space, region)
            self.scheduler.task_requeued(shadow, w)
        shadow.state = TaskState.FINISHED  # retired, never re-dispatched
        if primary is not None:
            self.resilience.on_speculation_wasted(primary)
        if w is not None:
            self._try_start(w)

    def _finish_speculation_win(
        self, shadow: TaskInstance, primary: TaskInstance, worker: Worker
    ) -> None:
        """A speculative copy finished first: it is the execution of
        record.  The straggling original is cancelled, its worker freed,
        and its (never-completed) results discarded — the task retires
        under the copy's (version, worker) pair in dependence order.
        """
        now = self.engine.now
        measured = now - shadow.start_time
        assert shadow.chosen_version is not None
        self._spec_primary.pop(shadow.uid, None)
        self._spec_shadow.pop(primary.uid, None)
        self.resilience.on_task_stop(primary)

        worker.current = None
        worker._end_event = None
        worker.busy_time += measured
        worker.tasks_run += 1

        # cancel the straggling original — unless it already left its
        # worker (faulted away, or the worker died) and was parked
        loser: Optional[Worker] = None
        w1 = (
            self._workers_by_name.get(primary.chosen_worker)
            if primary.chosen_worker
            else None
        )
        if w1 is not None and w1.current is primary:
            assert primary.chosen_version is not None
            loser = w1
            w1.current = None
            if w1._end_event is not None:
                w1._end_event.cancel()
                w1._end_event = None
            w1.free_at = now
            w1.busy_time += now - primary.start_time
            self.trace.add(
                primary.start_time, now, w1.name, "spec-abort",
                primary.chosen_version.name,
                meta=(self._local_ids[primary.uid],),
            )
            if primary.uid in self._pinned:
                self._pinned.discard(primary.uid)
                for region in primary.regions():
                    self.cache.unpin(w1.space, region)
            self.scheduler.task_requeued(primary, w1)

        shadow.state = TaskState.FINISHED
        shadow.end_time = now
        if self.config.execute_bodies:
            if self.recorder is not None:
                self.recorder.run_task(shadow)
            else:
                shadow.execute_body()
        self.trace.add(
            shadow.start_time,
            now,
            worker.name,
            "task",
            shadow.chosen_version.name,
            meta=(self._local_ids[shadow.uid],),
        )
        space = worker.space
        for region in shadow.writes():
            self.directory.note_write(region, space)
            self.cache.invalidate_stale_everywhere(region, space)
            self._write_log.setdefault(region.rid, []).append(primary.uid)
            self._recovering.pop(region.rid, None)
        if shadow.uid in self._pinned:
            self._pinned.discard(shadow.uid)
            for region in shadow.regions():
                self.cache.unpin(space, region)

        # the original retires under the winning pair so dependence-
        # order analyses and traces agree on where the task really ran
        primary.chosen_version = shadow.chosen_version
        primary.chosen_worker = worker.name
        primary.start_time = shadow.start_time
        primary.end_time = now
        primary.state = TaskState.FINISHED
        counts = self.version_counts.setdefault(shadow.name, {})
        counts[shadow.chosen_version.name] = counts.get(shadow.chosen_version.name, 0) + 1
        self._finish_order.append(primary.uid)
        self._tasks_completed += 1

        self.resilience.on_task_success(worker)
        self.resilience.on_speculation_won(primary, loser)
        self.scheduler.task_finished(shadow, worker, measured)
        for succ in self.graph.task_finished(primary):
            self._mark_ready(succ)
        self._try_start(worker)
        if loser is not None and loser.alive:
            self._try_start(loser)

    def _drain_worker(self, worker: Worker) -> int:
        """Hand every queued task of ``worker`` back to the scheduler.

        Used when a worker dies or is quarantined.  Returns the number
        of tasks re-dispatched.
        """
        drained = list(worker.queue)
        worker.queue.clear()
        for t in drained:
            self._requeue(t, worker)
        return len(drained)

    def _worker_down(self, worker: Worker) -> None:
        """Permanent worker failure (WORKER_DOWN event).

        The worker leaves every scheduler's candidate set for good; its
        running task is aborted (without burning the task's retry
        budget — the fault is the worker's, not the task's) and, with
        all queued tasks, re-dispatched to the survivors.  Profile data
        recorded from its past executions is retained untouched.
        """
        if not worker.alive:
            return
        now = self.engine.now
        worker.alive = False
        worker.quarantined_until = None
        self.trace.add(now, now, worker.name, "worker-down", worker.device.name)
        redispatched = 0
        running = worker.current
        if running is not None:
            assert running.chosen_version is not None
            worker.current = None
            if worker._end_event is not None:
                worker._end_event.cancel()
                worker._end_event = None
            worker.busy_time += now - running.start_time
            self.trace.add(
                running.start_time, now, worker.name, "aborted",
                running.chosen_version.name,
                meta=(self._local_ids[running.uid],),
            )
            self._requeue(running, worker)
            redispatched += 1
        redispatched += self._drain_worker(worker)
        self.resilience.on_worker_down(worker, redispatched)
        self.scheduler.worker_down(worker)

    # ------------------------------------------------------------------
    # Whole-node crash / rejoin (cluster fault tolerance)
    # ------------------------------------------------------------------
    def _node_down(self, node: int) -> None:
        """A whole node dies (NODE_DOWN event): workers, NIC and shard.

        Order matters: the directory's lost regions are flagged (and
        their recomputations scheduled) *before* the node's workers are
        torn down, so the requeue-and-redispatch of their tasks finds
        every lost region already guarded by ``_recovering`` and waits
        instead of trying to source a copy that no longer exists.  The
        scheduler's ``node_down`` hook runs before the worker deaths so
        the shard map is repaired by the time requeued tasks re-enter
        ``task_ready``.
        """
        layout = self.node_topology
        if layout is None:
            raise RuntimeError(
                "node crash injected into a run without node topology"
            )
        now = self.engine.now
        spaces = {s for s, n in layout.node_of_space.items() if n == node}
        host = layout.host_of_node[node]
        self.trace.add(now, now, f"node:{host}", "node-down", f"node{node}")
        self.resilience.stats.node_crashes += 1
        self.transfer_engine.set_spaces_down(spaces)
        # copies headed into the dead node will never be marked valid
        for by_space in self._inflight.values():
            for sp in [s for s in by_space if s in spaces]:
                del by_space[sp]
        lost = self.directory.invalidate_spaces(spaces)
        self.resilience.stats.regions_lost += len(lost)
        for region in lost:
            self._schedule_recompute(region, node)
        node_down = getattr(self.scheduler, "node_down", None)
        if node_down is not None:
            node_down(node)
        for w in self.workers:
            if layout.node_of_space.get(w.space) == node:
                self._worker_down(w)
        for s in sorted(spaces):
            self.cache.purge_space(s)

    def _node_up(self, node: int) -> None:
        """A crashed node rejoins (NODE_UP event): cold caches, cold
        profile state, a new epoch — its workers become schedulable
        again but none of its pre-crash state survives."""
        layout = self.node_topology
        if layout is None:  # pragma: no cover - bind() validated this
            return
        now = self.engine.now
        spaces = {s for s, n in layout.node_of_space.items() if n == node}
        host = layout.host_of_node[node]
        self.transfer_engine.set_spaces_up(spaces)
        self.resilience.stats.node_rejoins += 1
        revived = []
        for w in self.workers:
            if layout.node_of_space.get(w.space) == node and not w.alive:
                w.alive = True
                w.free_at = now
                w.quarantined_until = None
                w.current = None
                w._end_event = None
                w._wake_at = None
                revived.append(w)
                self.trace.add(now, now, w.name, "worker-up", w.device.name)
        node_up = getattr(self.scheduler, "node_up", None)
        if node_up is not None:
            node_up(node)
        else:
            for w in revived:
                self.scheduler.worker_up(w)
        self.trace.add(now, now, f"node:{host}", "node-up", f"node{node}")

    def _schedule_recompute(self, region: DataRegion, dead_node: int) -> None:
        """Schedule the recomputation of a region lost to a node crash.

        The simulated cost is the region's write lineage replayed on the
        best surviving worker — every task that ever wrote it, at its
        nominal duration (accumulating writers must all be redone).  The
        recomputed copy materialises in the home space at the returned
        eta; readers queued meanwhile wait on ``_recovering``.
        """
        layout = self.node_topology
        now = self.engine.now
        writers = self._write_log.get(region.rid, [])
        total = 0.0
        for uid in writers:
            t = self.graph.task(uid)
            best: Optional[float] = None
            for w in self.workers:
                if not w.alive:
                    continue
                if layout is not None and layout.node_of_space.get(w.space) == dead_node:
                    continue  # this worker is about to die with the node
                for v in t.definition.versions:
                    if v.runs_on(w.device.kind):
                        d = w.device.duration(v.kernel, t.data_bytes, t.params)
                        if best is None or d < best:
                            best = d
            total += best if best is not None else 0.0
        eta = now + total
        self._recovering[region.rid] = eta
        self.resilience.stats.recompute_tasks += max(1, len(writers))
        self.trace.add(
            now, eta, "recovery", "recompute", region.label,
            meta=(len(writers),),
        )
        self.engine.schedule(
            eta,
            lambda r=region: self._recompute_done(r),
            kind=EventKind.RETRY,
            label=f"recompute {region.label}",
        )

    def _recompute_done(self, region: DataRegion) -> None:
        eta = self._recovering.get(region.rid)
        if eta is None or eta > self.engine.now + _EPS:
            return  # superseded by a fresh write (or rescheduled)
        self._recovering.pop(region.rid, None)
        self.directory.note_recovered(region, HOST_SPACE)

    def _flush_to_host(self) -> None:
        """Copy every dirty region back to the host (taskwait semantics)."""
        last = self.engine.now
        for req in self.directory.flush_requests():
            end = self.transfer_engine.issue(req)
            self.directory.note_writeback_done(req.region)
            last = max(last, end)
        if last > self.engine.now:
            # advance the master's clock to the final write-back; bounded
            # so pending fault-plan events past that time never fire
            self.engine.run(until=last)
