"""The OmpSs pragmas as Python decorators.

The paper's front end is the Mercurium compiler translating::

    #pragma omp target device(cuda) implements(matmul_tile) copy_deps
    #pragma omp task inout([BS*BS]C) input([BS*BS]A, [BS*BS]B)
    void matmul_tile_cublas(float *A, float *B, float *C, int BS) {...}

into a per-task version table.  Here the same program is written::

    @target(device="smp", copy_deps=True)
    @task(inputs=["A", "B"], inouts=["C"], work=tile_work)
    def matmul_tile(A, B, C):
        ...

    @target(device="cuda", implements=matmul_tile, copy_deps=True)
    @task(inputs=["A", "B"], inouts=["C"], work=tile_work)
    def matmul_tile_cublas(A, B, C):
        ...

Calling the decorated function inside an active
:class:`~repro.runtime.runtime.OmpSsRuntime` submits a task instance;
calling it with no runtime active simply runs the body (sequential
semantics, like compiling OmpSs code without the runtime).

Clause values are lists of parameter names (strings) or callables
mapping the bound arguments to a list of arrays/regions; ``work`` is an
optional callable producing the cost-model parameter dict consumed by
the simulated devices (e.g. ``{"n": 1024}`` for a gemm tile).

``@task`` alone registers an SMP-targeted main version; ``@target``
above it overrides device / implements / copy semantics by rebuilding
the registration, mirroring how the two pragmas combine in OmpSs.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.runtime import context
from repro.runtime.dataregion import AccessKind, DataAccess, region_of
from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion
from repro.sim.devices import DeviceKind

ClauseSpec = Union[Sequence[str], Callable[..., Iterable[Any]], None]

#: Global registry of task definitions, keyed by main-version name.
_REGISTRY: dict[str, TaskDefinition] = {}


def registered_tasks() -> dict[str, TaskDefinition]:
    """A snapshot of the global task registry."""
    return dict(_REGISTRY)


def clear_task_registry() -> None:
    """Drop all globally registered task definitions (test isolation)."""
    _REGISTRY.clear()


class _FastBound:
    """Duck-typed stand-in for :class:`inspect.BoundArguments`.

    The clause/work/priority evaluators only read ``.arguments``; for
    plain positional calls the mapping is built directly instead of
    going through ``Signature.bind`` (see ``TaskFunction._bind``).
    """

    __slots__ = ("arguments",)

    def __init__(self, arguments: dict) -> None:
        self.arguments = arguments


class TaskFunction:
    """A function annotated with ``@task`` (and optionally ``@target``).

    Behaves like the original callable outside a runtime; inside one,
    each call creates and submits a :class:`TaskInstance`.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        *,
        inputs: ClauseSpec = None,
        outputs: ClauseSpec = None,
        inouts: ClauseSpec = None,
        work: Optional[Callable[..., Mapping[str, float]]] = None,
        device: "str | DeviceKind | Sequence[str | DeviceKind]" = DeviceKind.SMP,
        implements: "TaskFunction | str | None" = None,
        copy_deps: bool = True,
        priority: "int | Callable[..., int]" = 0,
        name: Optional[str] = None,
        registry: Optional[dict[str, TaskDefinition]] = None,
    ) -> None:
        self.fn = fn
        self.__name__ = name or fn.__name__
        self.__doc__ = fn.__doc__
        self._signature = inspect.signature(fn)
        # fast-path binder: when every parameter is plain
        # positional-or-keyword, an exact-arity positional call binds to
        # dict(zip(names, args)) — inspect's bind machinery is
        # submit-path-hot and an order of magnitude slower
        params = self._signature.parameters
        self._fast_params: Optional[tuple[str, ...]] = (
            tuple(params)
            if all(
                p.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
                for p in params.values()
            )
            else None
        )
        self._inputs = inputs
        self._outputs = outputs
        self._inouts = inouts
        self._work = work
        self._priority = priority
        self._registry = _REGISTRY if registry is None else registry

        kinds = self._parse_device(device)
        main_name, is_main = self._resolve_implements(implements)

        self.version = TaskVersion(
            name=self.__name__,
            task_name=main_name,
            device_kinds=kinds,
            kernel=self.__name__,
            fn=fn,
            is_main=is_main,
            copy_deps=copy_deps,
            clauses=self._literal_clauses(inputs, outputs, inouts),
        )
        definition = self._registry.get(main_name)
        if definition is None:
            if not is_main:
                raise ValueError(
                    f"{self.__name__!r} declares implements({main_name!r}) but no task "
                    f"named {main_name!r} is registered"
                )
            definition = TaskDefinition(main_name)
            self._registry[main_name] = definition
        definition.add_version(self.version)
        self.definition = definition

    # ------------------------------------------------------------------
    @staticmethod
    def _literal_clauses(
        inputs: ClauseSpec, outputs: ClauseSpec, inouts: ClauseSpec
    ) -> "Optional[dict[str, tuple[str, ...]]]":
        """Clause name lists when every present clause is literal.

        Callable clause specs (lambdas computing region lists) are not
        statically analysable, so the whole declaration opts out of the
        static effect pre-flight by returning ``None``.
        """
        out: dict[str, tuple[str, ...]] = {}
        for kind, spec in (("inputs", inputs), ("outputs", outputs),
                           ("inouts", inouts)):
            if spec is None:
                out[kind] = ()
            elif callable(spec):
                return None
            else:
                out[kind] = tuple(str(p) for p in spec)
        return out

    @staticmethod
    def _parse_device(
        device: "str | DeviceKind | Sequence[str | DeviceKind]",
    ) -> tuple[DeviceKind, ...]:
        if isinstance(device, (str, DeviceKind)):
            device = [device]
        kinds = tuple(DeviceKind.parse(d) for d in device)
        if len(set(kinds)) != len(kinds):
            raise ValueError("duplicate device kinds in device clause")
        return kinds

    def _resolve_implements(
        self, implements: "TaskFunction | str | None"
    ) -> tuple[str, bool]:
        if implements is None:
            return self.__name__, True
        if isinstance(implements, TaskFunction):
            # implements must reference the *main* version (paper §IV-A):
            # "it is not possible to create an implementation of another
            # implementation".
            if not implements.version.is_main:
                raise ValueError(
                    f"{self.__name__!r}: implements({implements.__name__!r}) references "
                    "a version that is itself an implementation; implements must name "
                    "the main version"
                )
            return implements.definition.name, False
        if isinstance(implements, str):
            return implements, False
        raise TypeError("implements must be a TaskFunction, a task name, or None")

    def _unregister(self) -> None:
        """Undo this function's registration (used by @target's rebuild)."""
        definition = self._registry.get(self.definition.name)
        if definition is None:
            return
        definition._versions = [v for v in definition._versions if v.name != self.version.name]
        if not definition._versions:
            del self._registry[self.definition.name]

    # ------------------------------------------------------------------
    def _clause_regions(self, spec: ClauseSpec, bound: inspect.BoundArguments) -> list:
        if spec is None:
            return []
        if callable(spec):
            objs = spec(**bound.arguments)
        else:
            objs = []
            for pname in spec:
                if pname not in bound.arguments:
                    raise TypeError(
                        f"task {self.__name__!r}: clause names parameter {pname!r} "
                        f"which is not an argument of the function"
                    )
                objs.append(bound.arguments[pname])
        return [region_of(o) for o in objs]

    def _bind(self, args: tuple, kwargs: dict) -> "inspect.BoundArguments | _FastBound":
        names = self._fast_params
        if names is not None and not kwargs and len(args) == len(names):
            # exact positional arity: same arguments mapping (and order)
            # that signature.bind + apply_defaults would produce
            return _FastBound(dict(zip(names, args)))
        bound = self._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return bound

    def build_accesses(self, *args: Any, **kwargs: Any) -> list[DataAccess]:
        """Capture the dependence environment of one call (no submission)."""
        return self._accesses_of(self._bind(args, kwargs))

    def _accesses_of(self, bound: inspect.BoundArguments) -> list[DataAccess]:
        accesses: list[DataAccess] = []
        for spec, kind in (
            (self._inputs, AccessKind.INPUT),
            (self._outputs, AccessKind.OUTPUT),
            (self._inouts, AccessKind.INOUT),
        ):
            for reg in self._clause_regions(spec, bound):
                accesses.append(DataAccess(reg, kind))
        self._check_clause_consistency(accesses)
        return accesses

    @staticmethod
    def _check_clause_consistency(accesses: list[DataAccess]) -> None:
        seen: dict = {}
        for acc in accesses:
            prev = seen.get(acc.region.rid)
            if prev is not None and prev is not acc.kind:
                raise ValueError(
                    f"region {acc.region.label!r} named by two different clauses "
                    f"({prev.value} and {acc.kind.value}); use inout instead"
                )
            seen[acc.region.rid] = acc.kind

    def work_params(self, *args: Any, **kwargs: Any) -> dict[str, float]:
        if self._work is None:
            return {}
        return self._work_params_of(self._bind(args, kwargs))

    def _work_params_of(self, bound: inspect.BoundArguments) -> dict[str, float]:
        if self._work is None:
            return {}
        return dict(self._work(**bound.arguments))

    def priority_of(self, *args: Any, **kwargs: Any) -> int:
        """Evaluate the ``priority`` clause for one call."""
        if callable(self._priority):
            return int(self._priority(**self._bind(args, kwargs).arguments))
        return int(self._priority)

    def _priority_of_bound(self, bound: inspect.BoundArguments) -> int:
        if callable(self._priority):
            return int(self._priority(**bound.arguments))
        return int(self._priority)

    # ------------------------------------------------------------------
    def __call__(self, *args: Any, **kwargs: Any) -> Optional[TaskInstance]:
        rt = context.current_runtime()
        if rt is None:
            return self.fn(*args, **kwargs)
        # bind the call signature once and share it across the clause,
        # work and priority evaluations (binding is submit-path-hot)
        bound = self._bind(args, kwargs)
        instance = TaskInstance(
            self.definition,
            self._accesses_of(bound),
            params=self._work_params_of(bound),
            args=args,
            kwargs=kwargs,
            priority=self._priority_of_bound(bound),
        )
        rt.submit(instance)
        return instance

    def __repr__(self) -> str:
        kinds = ",".join(k.value for k in self.version.device_kinds)
        main = "" if self.version.is_main else f" implements {self.definition.name!r}"
        return f"<TaskFunction {self.__name__!r} device=[{kinds}]{main}>"


def task(
    fn: Optional[Callable[..., Any]] = None,
    *,
    inputs: ClauseSpec = None,
    outputs: ClauseSpec = None,
    inouts: ClauseSpec = None,
    work: Optional[Callable[..., Mapping[str, float]]] = None,
    device: "str | DeviceKind | Sequence[str | DeviceKind]" = DeviceKind.SMP,
    implements: "TaskFunction | str | None" = None,
    copy_deps: bool = True,
    priority: "int | Callable[..., int]" = 0,
    name: Optional[str] = None,
    registry: Optional[dict[str, TaskDefinition]] = None,
) -> Any:
    """``#pragma omp task`` — declare a function as a task.

    ``inputs`` / ``outputs`` / ``inouts`` mirror the StarSs dependence
    clauses.  ``device``, ``implements`` and ``copy_deps`` may be given
    here directly or via a wrapping :func:`target` decorator.
    ``registry`` selects a private task registry (applications that
    build their task set per run use one to stay isolated).
    """

    def wrap(f: Callable[..., Any]) -> TaskFunction:
        return TaskFunction(
            f,
            inputs=inputs,
            outputs=outputs,
            inouts=inouts,
            work=work,
            device=device,
            implements=implements,
            copy_deps=copy_deps,
            priority=priority,
            name=name,
            registry=registry,
        )

    return wrap(fn) if fn is not None else wrap


class _TargetSpec:
    """The ``target`` clauses, applied above an ``@task`` declaration.

    Rebuilds the inner :class:`TaskFunction`'s registration with the
    device / implements / copy_deps values from this clause — the same
    merge Mercurium performs when both pragmas annotate one function.
    """

    def __init__(
        self,
        device: "str | DeviceKind | Sequence[str | DeviceKind]",
        implements: "TaskFunction | str | None",
        copy_deps: bool,
    ) -> None:
        self.device = device
        self.implements = implements
        self.copy_deps = copy_deps

    def __call__(self, inner: Any) -> TaskFunction:
        if not isinstance(inner, TaskFunction):
            raise TypeError(
                "@target must wrap an @task-annotated function:\n"
                "    @target(device=...)\n    @task(...)\n    def f(...): ..."
            )
        inner._unregister()
        return TaskFunction(
            inner.fn,
            inputs=inner._inputs,
            outputs=inner._outputs,
            inouts=inner._inouts,
            work=inner._work,
            device=self.device,
            implements=self.implements,
            copy_deps=self.copy_deps,
            priority=inner._priority,
            name=inner.__name__,
            registry=inner._registry,
        )


def target(
    *,
    device: "str | DeviceKind | Sequence[str | DeviceKind]" = DeviceKind.SMP,
    implements: "TaskFunction | str | None" = None,
    copy_deps: bool = True,
) -> _TargetSpec:
    """``#pragma omp target`` — set device / implements / copy semantics.

    Use above ``@task``::

        @target(device="cuda", implements=matmul_tile)
        @task(inputs=["A", "B"], inouts=["C"])
        def matmul_tile_cublas(A, B, C): ...
    """
    return _TargetSpec(device, implements, copy_deps)
