"""Workers: one per device, each with its own task queue.

"Each OmpSs worker thread is currently devoted to only one device (SMP,
GPU, ...) and there can be as many workers as machine resources.  With
the versioning scheduler, each worker has its own task queue." (§IV-B)

The queue is FIFO; the runtime starts the head task once its input
transfers have completed.  Workers track busy time and execution counts
for the per-device utilisation reporting.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.runtime.task import TaskInstance
from repro.sim.devices import Device, DeviceStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event


class Worker:
    """A serial execution resource bound to one device."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self.name = f"w:{device.name}"
        self.queue: Deque[TaskInstance] = deque()
        self.current: Optional[TaskInstance] = None
        self.free_at: float = 0.0       # when the running task ends
        self.busy_time: float = 0.0
        self.tasks_run: int = 0
        #: False once the worker failed permanently (a dead worker never
        #: re-enters any scheduler's candidate set)
        self.alive: bool = True
        #: simulated time until which the worker is quarantined after
        #: repeated transient faults (None = not quarantined)
        self.quarantined_until: Optional[float] = None
        #: runtime bookkeeping: simulated time of the earliest pending
        #: wake event for this worker (None = no wake scheduled)
        self._wake_at: Optional[float] = None
        #: the pending TASK_END / TASK_FAIL event of the running task,
        #: cancelled if the worker dies mid-execution
        self._end_event: Optional["Event"] = None

    # ------------------------------------------------------------------
    @property
    def space(self) -> str:
        """The memory space this worker computes from."""
        return self.device.memory_space

    @property
    def is_idle(self) -> bool:
        return self.current is None

    def available(self, now: float) -> bool:
        """Whether the worker may accept dispatches at simulated ``now``."""
        return self.alive and (
            self.quarantined_until is None or now >= self.quarantined_until
        )

    def load(self) -> int:
        """Queued tasks (plus the running one) — the simple load metric."""
        return len(self.queue) + (0 if self.current is None else 1)

    def enqueue(self, t: TaskInstance) -> None:
        """Append to the queue, honouring the ``priority`` clause.

        A task with non-zero priority is inserted before the first
        queued task of strictly lower priority (stable within equal
        priorities); priority-0 tasks take the plain FIFO fast path.
        """
        if t.priority == 0 or not self.queue:
            self.queue.append(t)
            return
        for i, queued in enumerate(self.queue):
            if queued.priority < t.priority:
                self.queue.insert(i, t)
                return
        self.queue.append(t)

    def peek(self) -> Optional[TaskInstance]:
        return self.queue[0] if self.queue else None

    def pop(self) -> TaskInstance:
        return self.queue.popleft()

    def queued_tasks(self) -> list[TaskInstance]:
        """Snapshot of the queue contents (running task excluded)."""
        return list(self.queue)

    # ------------------------------------------------------------------
    def stats(self, total_time: float) -> DeviceStats:
        idle = max(total_time - self.busy_time, 0.0)
        return DeviceStats(
            device=self.device.name,
            tasks_run=self.tasks_run,
            busy_time=self.busy_time,
            idle_time=idle,
        )

    def __repr__(self) -> str:
        running = self.current.label if self.current else "-"
        return f"Worker({self.name}, running={running}, queued={len(self.queue)})"
