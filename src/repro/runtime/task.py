"""Task types, versions and instances.

A :class:`TaskDefinition` corresponds to a set of OmpSs task functions
tied together by the ``implements`` clause: one *main* implementation
plus any number of alternative versions.  As §IV-A of the paper states,
the main/alternative distinction is purely a front-end matter — "from
the runtime point of view, all task versions are treated equally".

A :class:`TaskInstance` is one invocation: the dependence accesses are
captured from the call's arguments, its data-set size computed (each
region counted once), and the instance flows through
``CREATED -> READY -> QUEUED -> RUNNING -> FINISHED``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.runtime.dataregion import DataAccess, DataRegion, unique_data_bytes
from repro.sim.devices import DeviceKind


class TaskState(Enum):
    CREATED = "created"     # submitted, waiting on dependences
    READY = "ready"         # dependences satisfied, waiting for the scheduler
    QUEUED = "queued"       # placed in a worker's queue
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class TaskVersion:
    """One implementation of a task (one ``#pragma omp target device(...)``).

    Parameters
    ----------
    name:
        Unique version name (the annotated function's name, e.g.
        ``"matmul_tile_cublas"``).
    task_name:
        Name of the owning :class:`TaskDefinition` (the main version).
    device_kinds:
        Architectures able to run this version — the ``device(...)``
        clause admits more than one.
    kernel:
        Cost-model key on the device (defaults to ``name``).
    fn:
        Optional Python callable executed on the host arrays for real
        numerical output.  ``None`` means timing-only simulation.
    is_main:
        Whether this was the version without an ``implements`` clause.
    """

    name: str
    task_name: str
    device_kinds: tuple[DeviceKind, ...]
    kernel: str
    fn: Optional[Callable[..., Any]] = None
    is_main: bool = False
    copy_deps: bool = True
    #: literal clause parameter names captured at declaration time
    #: (``{"inputs": (...), "outputs": (...), "inouts": (...)}``) when
    #: every clause was a plain name list; ``None`` for callable clause
    #: specs.  Consumed by the sanitizer's static effect pre-flight.
    clauses: Optional[Mapping[str, tuple[str, ...]]] = None

    def __post_init__(self) -> None:
        if not self.device_kinds:
            raise ValueError(f"task version {self.name!r} targets no device")
        # normalize: the clause admits bare strings ("smp") as well as
        # DeviceKind members; frozen dataclass, so set via object.__setattr__
        kinds = tuple(DeviceKind.parse(k) for k in self.device_kinds)
        object.__setattr__(self, "device_kinds", kinds)
        # bitmask membership for runs_on (called once per version ×
        # worker × dispatch)
        mask = 0
        for k in kinds:
            mask |= k.mask
        object.__setattr__(self, "_kind_mask", mask)

    def runs_on(self, kind: "str | DeviceKind") -> bool:
        if type(kind) is DeviceKind:
            return bool(kind.mask & self._kind_mask)  # type: ignore[attr-defined]
        return bool(DeviceKind.parse(kind).mask & self._kind_mask)  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        kinds = ",".join(k.value for k in self.device_kinds)
        return f"TaskVersion({self.name!r}, device=[{kinds}])"


class TaskDefinition:
    """A named task together with all its registered versions.

    The first version registered without ``implements`` is the main one;
    every other version must declare ``implements(<main>)`` — declaring
    an implementation of a non-main version is rejected, exactly as the
    paper's front end does (§IV-A).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._versions: list[TaskVersion] = []
        self._kind_union: Optional[frozenset[DeviceKind]] = None
        self._kind_mask: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def versions(self) -> tuple[TaskVersion, ...]:
        return tuple(self._versions)

    @property
    def main_version(self) -> TaskVersion:
        if not self._versions:
            raise RuntimeError(f"task {self.name!r} has no versions")
        return self._versions[0]

    def add_version(self, version: TaskVersion) -> None:
        if version.task_name != self.name:
            raise ValueError(
                f"version {version.name!r} implements {version.task_name!r}, "
                f"not {self.name!r}"
            )
        if any(v.name == version.name for v in self._versions):
            raise ValueError(f"duplicate version name {version.name!r} for task {self.name!r}")
        if version.is_main and self._versions:
            raise ValueError(f"task {self.name!r} already has a main version")
        if not version.is_main and not self._versions:
            raise ValueError(
                f"version {version.name!r}: implements({self.name!r}) declared before "
                "the main version was registered"
            )
        self._versions.append(version)
        self._kind_union = None
        self._kind_mask = None

    def version(self, name: str) -> TaskVersion:
        for v in self._versions:
            if v.name == name:
                return v
        raise KeyError(f"task {self.name!r} has no version {name!r}")

    def versions_for_kind(self, kind: "str | DeviceKind") -> list[TaskVersion]:
        kind = DeviceKind.parse(kind)
        return [v for v in self._versions if kind in v.device_kinds]

    def device_kinds(self) -> set[DeviceKind]:
        return set(self.device_kind_union)

    @property
    def device_kind_union(self) -> frozenset[DeviceKind]:
        """Kinds able to run *some* version (cached; capability checks
        reduce to one frozenset intersection per node)."""
        union = self._kind_union
        if union is None:
            out: set[DeviceKind] = set()
            for v in self._versions:
                out.update(v.device_kinds)
            union = self._kind_union = frozenset(out)
        return union

    @property
    def device_kind_mask(self) -> int:
        """Bit-OR of the versions' kind masks (cached; node-capability
        checks reduce to one integer AND)."""
        mask = self._kind_mask
        if mask is None:
            mask = 0
            for v in self._versions:
                mask |= v._kind_mask  # type: ignore[attr-defined]
            self._kind_mask = mask
        return mask

    def __repr__(self) -> str:
        return f"TaskDefinition({self.name!r}, {len(self._versions)} versions)"


class TaskInstance:
    """One invocation of a task.

    Instances are ordered by creation (``uid``), which the dependence
    analysis uses for program order and the schedulers use for
    deterministic tie-breaking.
    """

    _uid_counter = itertools.count()

    __slots__ = (
        "uid",
        "definition",
        "accesses",
        "params",
        "args",
        "kwargs",
        "state",
        "data_bytes",
        "priority",
        "predecessors",
        "successors",
        "chosen_version",
        "chosen_worker",
        "attempts",
        "failed_pairs",
        "speculative_of",
        "submit_time",
        "ready_time",
        "start_time",
        "end_time",
        "label",
        "_regions",
    )

    def __init__(
        self,
        definition: TaskDefinition,
        accesses: Sequence[DataAccess],
        *,
        params: Optional[Mapping[str, float]] = None,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        priority: int = 0,
        label: str = "",
    ) -> None:
        self.uid: int = next(TaskInstance._uid_counter)
        self.definition = definition
        self.accesses: tuple[DataAccess, ...] = tuple(accesses)
        self.params: dict[str, float] = dict(params or {})
        self.args = args
        self.kwargs = kwargs or {}
        self.state = TaskState.CREATED
        self.data_bytes = unique_data_bytes(list(self.accesses))
        self._regions: Optional[list[DataRegion]] = None
        #: OmpSs ``priority`` clause: higher values are scheduled first
        #: within ready pools and jump ahead of lower-priority queued
        #: tasks (they never preempt a running task).
        self.priority = int(priority)
        # dependence bookkeeping, owned by DependenceGraph
        self.predecessors: set[int] = set()
        self.successors: list["TaskInstance"] = []
        # scheduling outcome
        self.chosen_version: Optional[TaskVersion] = None
        self.chosen_worker: Optional[str] = None
        #: fault-recovery bookkeeping: failed executions so far, and the
        #: (version name, worker name) pairs they failed on — retries
        #: prefer a pair not in this set (graceful degradation via the
        #: paper's multi-version tables)
        self.attempts: int = 0
        self.failed_pairs: set[tuple[str, str]] = set()
        #: uid of the straggling original this instance is a speculative
        #: copy of (None for ordinary tasks).  Copies never enter the
        #: dependence graph; the first of the pair to finish retires the
        #: original, the other is cancelled.
        self.speculative_of: Optional[int] = None
        self.submit_time: float = 0.0
        self.ready_time: float = 0.0
        self.start_time: float = 0.0
        self.end_time: float = 0.0
        self.label = label or f"{definition.name}#{self.uid}"

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.definition.name

    def reads(self) -> list[DataRegion]:
        return [a.region for a in self.accesses if a.reads]

    def writes(self) -> list[DataRegion]:
        return [a.region for a in self.accesses if a.writes]

    def regions(self) -> list[DataRegion]:
        # cached: accesses are fixed at construction, and the prefetch
        # window asks for the deduped region list on every pin/unpin
        cached = self._regions
        if cached is None:
            seen: set = set()
            cached = []
            for a in self.accesses:
                rid = a.region.rid
                if rid not in seen:
                    seen.add(rid)
                    cached.append(a.region)
            self._regions = cached
        return cached

    def execute_body(self) -> None:
        """Run the chosen version's Python body on the host arrays.

        Only meaningful when the application supplied real kernels; the
        simulation's notion of time is independent of this call.
        """
        version = self.chosen_version
        if version is None:
            raise RuntimeError(f"{self.label}: no version chosen yet")
        if version.fn is not None:
            version.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:
        return f"TaskInstance({self.label!r}, state={self.state.value})"
