"""OmpSs-like task runtime (the Nanos++ substrate, rebuilt in Python).

* :mod:`repro.runtime.dataregion` — data regions named by the dependence
  clauses (``input``/``output``/``inout``),
* :mod:`repro.runtime.task` — task types, versions (``implements``) and
  task instances,
* :mod:`repro.runtime.directives` — the ``@task`` / ``@target``
  decorators mirroring the OmpSs pragmas,
* :mod:`repro.runtime.dependences` — dataflow dependence analysis,
* :mod:`repro.runtime.worker` — one worker per device, each with its own
  task queue,
* :mod:`repro.runtime.runtime` — the runtime core: submission, the
  event-driven execution loop, ``taskwait``.
"""

from repro.runtime.dataregion import AccessKind, DataAccess, DataRegion, region_of
from repro.runtime.task import TaskDefinition, TaskInstance, TaskState, TaskVersion
from repro.runtime.directives import task, target, clear_task_registry, registered_tasks
from repro.runtime.dependences import DependenceGraph
from repro.runtime.worker import Worker
from repro.runtime.runtime import OmpSsRuntime, RuntimeConfig, RunResult

__all__ = [
    "AccessKind",
    "DataAccess",
    "DataRegion",
    "region_of",
    "TaskDefinition",
    "TaskInstance",
    "TaskState",
    "TaskVersion",
    "task",
    "target",
    "clear_task_registry",
    "registered_tasks",
    "DependenceGraph",
    "Worker",
    "OmpSsRuntime",
    "RuntimeConfig",
    "RunResult",
]
