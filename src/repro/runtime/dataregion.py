"""Data regions and accesses.

OmpSs dependence clauses (``input([BS*BS]A)``, ``inout([BS*BS]C)``, ...)
name *regions* of user data.  A :class:`DataRegion` is the runtime's
handle for one such region: a stable key, a size in bytes, and an
optional reference to the backing NumPy array so task bodies can really
compute.

Regions are the unit of the coherence protocol: they are replicated
across memory spaces, invalidated on writes and transferred over links.
Following the paper's runtime, a region is atomic — two accesses either
name the same region or are independent — but regions constructed from
(base, length) intervals also support overlap queries, which the
dependence analysis uses to reject ill-formed programs that alias
distinct regions.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Hashable, Optional

import numpy as np


class AccessKind(Enum):
    """The three StarSs dependence clauses."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (AccessKind.INPUT, AccessKind.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessKind.OUTPUT, AccessKind.INOUT)


#: region-key intern table: key -> small dense int (the region id).
#: Region keys are structured tuples (``("ndarray", addr, nbytes)``,
#: ``("tile", i, j)``...); hashing them on every dependence/directory/
#: cache lookup was a top profile frame.  Each distinct key is hashed
#: once here; every hot dict is keyed by the resulting ``rid`` instead.
#: The table is process-global and append-only, mirroring OmpSs's
#: address-is-identity model; ids are assigned in first-seen order, so
#: they are only meaningful within a process and never serialized.
_KEY_INTERN: dict = {}


def intern_key(key: Hashable) -> int:
    """Return the stable per-process region id for ``key``."""
    rid = _KEY_INTERN.get(key)
    if rid is None:
        rid = _KEY_INTERN[key] = len(_KEY_INTERN)
    return rid


class DataRegion:
    """A contiguous region of user data tracked by the runtime.

    Parameters
    ----------
    key:
        Stable hashable identity.  Two :class:`DataRegion` objects with
        the same key denote the same data.
    nbytes:
        Region size; drives transfer cost and the scheduler's data-set
        size accounting.
    data:
        Optional backing :class:`numpy.ndarray` for real execution.
    base, length:
        Optional address interval for overlap queries; regions created
        from arrays get these from the array's memory layout.
    label:
        Human-readable name for traces.
    """

    __slots__ = ("key", "rid", "nbytes", "data", "base", "length", "label")

    def __init__(
        self,
        key: Hashable,
        nbytes: int,
        *,
        data: Optional[np.ndarray] = None,
        base: Optional[int] = None,
        length: Optional[int] = None,
        label: str = "",
    ) -> None:
        if nbytes < 0:
            raise ValueError("region size must be non-negative")
        self.key = key
        self.rid = intern_key(key)
        self.nbytes = int(nbytes)
        self.data = data
        self.base = base
        self.length = length if length is not None else (nbytes if base is not None else None)
        self.label = label or str(key)

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataRegion):
            return NotImplemented
        return self.rid == other.rid

    def __hash__(self) -> int:
        # the interned id hashes to itself — no tuple hashing on lookups
        return self.rid

    def __repr__(self) -> str:
        return f"DataRegion({self.label!r}, {self.nbytes}B)"

    # -- geometry ------------------------------------------------------
    def overlaps(self, other: "DataRegion") -> bool:
        """Whether the two regions' address intervals intersect.

        Regions without interval information only overlap when they are
        the *same* region (equal keys).
        """
        if self.key == other.key:
            return True
        if self.base is None or other.base is None:
            return False
        a0, a1 = self.base, self.base + (self.length or 0)
        b0, b1 = other.base, other.base + (other.length or 0)
        return a0 < b1 and b0 < a1


def region_of(obj: Any, *, label: str = "") -> DataRegion:
    """Build (or pass through) a region for a user object.

    * :class:`DataRegion` instances pass through unchanged,
    * NumPy arrays become regions keyed by their base allocation address
      and offset — two views of the same buffer at the same offset are
      the same region, matching OmpSs's address-based dependence
      computation,
    * anything else raises :class:`TypeError` (the clause syntax only
      admits data, never scalars-by-value).
    """
    if isinstance(obj, DataRegion):
        return obj
    if isinstance(obj, np.ndarray):
        iface = obj.__array_interface__
        addr = iface["data"][0]
        return DataRegion(
            key=("ndarray", addr, obj.nbytes),
            nbytes=obj.nbytes,
            data=obj,
            base=addr,
            length=obj.nbytes,
            label=label or f"array@{addr:#x}",
        )
    raise TypeError(
        f"dependence clauses accept DataRegion or numpy.ndarray, got {type(obj).__name__}"
    )


class DataAccess:
    """One dependence-clause entry of one task instance: region + kind.

    ``reads``/``writes`` are plain attributes computed once at
    construction — the transfer-staging and dependence paths test them
    per access per dispatch, and the former property chain
    (``DataAccess.reads`` -> ``AccessKind.reads``) was two Python-level
    calls per test.
    """

    __slots__ = ("region", "kind", "reads", "writes")

    def __init__(self, region: DataRegion, kind: AccessKind) -> None:
        self.region = region
        self.kind = kind
        self.reads = kind is not AccessKind.OUTPUT
        self.writes = kind is not AccessKind.INPUT

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataAccess):
            return NotImplemented
        return self.region == other.region and self.kind is other.kind

    def __hash__(self) -> int:
        return hash((self.region, self.kind))

    def __repr__(self) -> str:
        return f"DataAccess({self.kind.value}, {self.region.label!r})"


def unique_data_bytes(accesses: "list[DataAccess]") -> int:
    """Total data-set size of a task instance.

    Paper §IV-B footnote 2: *"Each task's parameter size is counted just
    once, even if it is an input/output parameter."*  Hence: the sum of
    region sizes over *distinct* regions.
    """
    seen: set = set()
    total = 0
    for acc in accesses:
        rid = acc.region.rid
        if rid not in seen:
            seen.add(rid)
            total += acc.region.nbytes
    return total
