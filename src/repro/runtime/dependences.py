"""Dataflow dependence analysis (the StarSs dependence support).

As tasks are submitted in program order, each dependence clause is
matched against the running history of accesses per region:

* a **read** depends on the last writer of the region (RAW),
* a **write** depends on the last writer (WAW) *and* on every reader
  since that writer (WAR),

after which the region history is updated.  This is exactly the
last-writer/reader-list algorithm of the Nanos++ dependence module, and
it yields a DAG whose edges the runtime uses to release ready tasks.

The graph also performs an optional aliasing check: two *distinct*
regions whose address intervals overlap would make dependence tracking
unsound.  ``alias_policy`` selects what happens then: ``"off"`` ignores
it, ``"report"`` records a sanitizer diagnostic (``SAN-R003``) carrying
the task names and region intervals, ``"reject"`` raises immediately
(OmpSs leaves this undefined; failing loudly is kinder).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable, Iterable, Optional

from repro.runtime.dataregion import DataRegion
from repro.runtime.task import TaskInstance


class DepKind(Enum):
    RAW = "raw"  # read after write (true dependence)
    WAR = "war"  # write after read (anti dependence)
    WAW = "waw"  # write after write (output dependence)


@dataclass(frozen=True)
class DepEdge:
    """A dependence edge: ``src`` must finish before ``dst`` may start."""

    src: int  # uid of the earlier task
    dst: int  # uid of the later task
    kind: DepKind
    region: DataRegion


@dataclass(slots=True)
class _RegionHistory:
    last_writer: Optional[TaskInstance] = None
    readers_since_write: list[TaskInstance] = field(default_factory=list)


#: edge-strength ranking for _note_dep (RAW > WAW > WAR)
_DEP_ORDER = {DepKind.RAW: 0, DepKind.WAW: 1, DepKind.WAR: 2}


class DependenceGraph:
    """Builds and tracks the task DAG as tasks are submitted and retire."""

    def __init__(
        self,
        *,
        check_aliasing: bool = False,
        alias_policy: Optional[str] = None,
    ) -> None:
        # keyed by the interned region id (DataRegion.rid), not the
        # structured key — dependence matching is per-submission × per-
        # clause, and int lookups skip tuple hashing entirely
        self._history: dict[int, _RegionHistory] = {}
        self._tasks: dict[int, TaskInstance] = {}
        self._edges: list[DepEdge] = []
        self._in_edges: dict[int, list[DepEdge]] = {}
        self._out_edges: dict[int, list[DepEdge]] = {}
        self._unfinished: set[int] = set()
        if alias_policy is None:
            alias_policy = "reject" if check_aliasing else "off"
        if alias_policy not in ("off", "report", "reject"):
            raise ValueError(f"unknown alias_policy {alias_policy!r}")
        self.alias_policy = alias_policy
        # interval index for the aliasing check: sorted list of
        # (base, end, key) for regions that carry address info, plus the
        # label of the task that introduced each region (for reporting).
        self._intervals: list[tuple[int, int, Hashable]] = []
        self._interval_owner: dict[Hashable, str] = {}
        #: SAN-R003 findings collected under ``alias_policy="report"``
        self.alias_diagnostics: list = []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def add_task(self, t: TaskInstance) -> bool:
        """Register a submitted task; returns ``True`` if it is ready.

        The task's ``predecessors`` set is filled with the uids of its
        not-yet-finished predecessors; each predecessor's ``successors``
        list gains the task.
        """
        if t.uid in self._tasks:
            raise ValueError(f"task {t.label!r} submitted twice")
        self._tasks[t.uid] = t
        self._unfinished.add(t.uid)

        preds: dict[int, DepEdge] = {}
        history = self._history
        check_alias = self.alias_policy != "off"
        for acc in t.accesses:
            region = acc.region
            if check_alias:
                self._check_alias(region, t)
            hist = history.get(region.rid)
            if hist is None:
                hist = history[region.rid] = _RegionHistory()

            last_writer = hist.last_writer
            if acc.reads and last_writer is not None:
                self._note_dep(preds, last_writer, t, DepKind.RAW, region)
            if acc.writes:
                if last_writer is not None:
                    self._note_dep(preds, last_writer, t, DepKind.WAW, region)
                for reader in hist.readers_since_write:
                    if reader.uid != t.uid:
                        self._note_dep(preds, reader, t, DepKind.WAR, region)

        # Update histories only after all clauses were matched, so a task
        # never depends on itself through an inout access.
        for acc in t.accesses:
            hist = history[acc.region.rid]
            if acc.writes:
                hist.last_writer = t
                hist.readers_since_write = []
            elif acc.reads:
                hist.readers_since_write.append(t)

        for edge in preds.values():
            self._edges.append(edge)
            self._out_edges.setdefault(edge.src, []).append(edge)
            self._in_edges.setdefault(edge.dst, []).append(edge)
            src = self._tasks[edge.src]
            if edge.src in self._unfinished:
                t.predecessors.add(edge.src)
                src.successors.append(t)

        return not t.predecessors

    def _note_dep(
        self,
        preds: dict[int, DepEdge],
        src: TaskInstance,
        dst: TaskInstance,
        kind: DepKind,
        region: DataRegion,
    ) -> None:
        # Keep one edge per predecessor; prefer the "strongest" kind for
        # reporting (RAW > WAW > WAR) but correctness only needs one.
        prev = preds.get(src.uid)
        if prev is None or _DEP_ORDER[kind] < _DEP_ORDER[prev.kind]:
            preds[src.uid] = DepEdge(src.uid, dst.uid, kind, region)

    def _check_alias(self, region: DataRegion, t: TaskInstance) -> None:
        if region.base is None or region.length is None:
            return
        if region.key in self._interval_owner:
            return
        start, end = region.base, region.base + region.length
        i = bisect.bisect_left(self._intervals, (start, start, None))
        # neighbours on both sides may overlap
        for j in (i - 1, i):
            if 0 <= j < len(self._intervals):
                b0, b1, key = self._intervals[j]
                if key != region.key and b0 < end and start < b1:
                    self._alias_found(region, t, (b0, b1, key))
        bisect.insort(self._intervals, (start, end, region.key))
        self._interval_owner[region.key] = t.label

    def _alias_found(
        self, region: DataRegion, t: TaskInstance, other: tuple[int, int, Hashable]
    ) -> None:
        b0, b1, key = other
        start, end = region.base, region.base + region.length  # type: ignore[operator]
        owner = self._interval_owner.get(key, "<unknown task>")
        message = (
            f"region {region.label!r} [{start:#x},{end:#x}) of task {t.label!r} "
            f"partially overlaps distinct region [{b0:#x},{b1:#x}) first used "
            f"by task {owner!r}; dependence tracking over aliased regions is "
            "unsound"
        )
        if self.alias_policy == "reject":
            raise ValueError(message)
        from repro.sanitizer.diagnostics import Diagnostic

        self.alias_diagnostics.append(
            Diagnostic(
                code="SAN-R003",
                message=message,
                task=t.label,
                region=region.label,
                meta=((start, end), (b0, b1), owner),
            )
        )

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def task_finished(self, t: TaskInstance) -> list[TaskInstance]:
        """Retire a task; returns successors that became ready."""
        if t.uid not in self._unfinished:
            raise ValueError(f"task {t.label!r} finished twice or never submitted")
        self._unfinished.discard(t.uid)
        released: list[TaskInstance] = []
        for succ in t.successors:
            succ.predecessors.discard(t.uid)
            if not succ.predecessors:
                released.append(succ)
        return released

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def edges(self) -> tuple[DepEdge, ...]:
        return tuple(self._edges)

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def unfinished(self) -> int:
        return len(self._unfinished)

    def task(self, uid: int) -> TaskInstance:
        return self._tasks[uid]

    def tasks(self) -> list[TaskInstance]:
        """All registered tasks in submission (uid) order."""
        return [self._tasks[uid] for uid in sorted(self._tasks)]

    def in_edges(self, uid: int) -> tuple[DepEdge, ...]:
        """All dependence edges into task ``uid`` (incl. finished preds).

        Unlike ``TaskInstance.predecessors`` — which only tracks
        *unfinished* predecessors — this is the full dependence record;
        the cluster partitioner uses it to find cross-shard edges at
        submit time.
        """
        return tuple(self._in_edges.get(uid, ()))

    def out_edges(self, uid: int) -> tuple[DepEdge, ...]:
        """All dependence edges out of task ``uid``."""
        return tuple(self._out_edges.get(uid, ()))

    def edge_counts(self) -> dict[DepKind, int]:
        out = {k: 0 for k in DepKind}
        for e in self._edges:
            out[e.kind] += 1
        return out

    def successors_of(self, t: TaskInstance) -> list[TaskInstance]:
        return list(t.successors)

    def pending_writer(self, region: DataRegion) -> Optional[TaskInstance]:
        """The unfinished task that will produce ``region``, if any.

        Supports the ``taskwait on`` clause: the master blocks until the
        data is produced, i.e. until the region's last writer retires.
        """
        hist = self._history.get(region.rid)
        if hist is None or hist.last_writer is None:
            return None
        writer = hist.last_writer
        return writer if writer.uid in self._unfinished else None

    def verify_schedule(self, order: Iterable[int]) -> None:
        """Assert that a completed execution order respects every edge.

        ``order`` is the sequence of task uids in *finish* order; used by
        tests to prove serialisability of simulated runs.
        """
        pos = {uid: i for i, uid in enumerate(order)}
        for e in self._edges:
            if e.src in pos and e.dst in pos and pos[e.src] >= pos[e.dst]:
                raise AssertionError(
                    f"dependence violated: task {e.src} ({e.kind.value} on "
                    f"{e.region.label!r}) finished after its dependent {e.dst}"
                )
