"""Canonical, process-stable task-graph fingerprints.

The service's result cache is keyed by *what was submitted*: two
submissions that build the same task graph must hash identically in any
process — independent of ``PYTHONHASHSEED``, dict iteration order, the
run-global ``TaskInstance.uid`` counter, and run-local artifacts such as
region labels derived from array addresses.  The canonicalization
therefore never hashes raw identifiers:

* tasks are numbered by **submission order** (position, not uid),
* regions are numbered by **first appearance** while walking the tasks'
  access lists in submission order; only that index plus the region's
  byte size enters the hash (keys are identity, not content),
* per task: definition name, version names in registration order, the
  access list (region index, clause kind), cost-model params (sorted),
  and the ``priority`` clause,
* dependence edges as (src position, dst position, kind, region index),
  in the deterministic order the dependence analysis discovered them.

The result is hashed as canonical JSON (sorted keys, fixed separators)
under SHA-256.  :class:`GraphCapture` runs an application's master body
against a recording stub — dependence analysis only, no simulation — so
a fingerprint costs graph construction, not a run.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.runtime import context
from repro.runtime.dependences import DependenceGraph
from repro.runtime.task import TaskInstance

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import Application


def canonical_graph_dict(
    tasks: Iterable[TaskInstance], edges: Iterable[Any]
) -> dict:
    """The canonical JSON-compatible form of a task graph.

    ``tasks`` must be in submission order; ``edges`` are
    :class:`~repro.runtime.dependences.DepEdge` objects between them.
    Raises :class:`KeyError` if an edge references an unknown task.
    """
    task_index: dict[int, int] = {}
    region_index: dict[Any, int] = {}
    region_sizes: list[int] = []
    out_tasks: list[list] = []

    for pos, t in enumerate(tasks):
        task_index[t.uid] = pos
        accesses = []
        for acc in t.accesses:
            rid = region_index.get(acc.region.key)
            if rid is None:
                rid = len(region_index)
                region_index[acc.region.key] = rid
                region_sizes.append(int(acc.region.nbytes))
            accesses.append([rid, acc.kind.value])
        out_tasks.append(
            [
                t.definition.name,
                [v.name for v in t.definition.versions],
                accesses,
                sorted((str(k), float(v)) for k, v in t.params.items()),
                int(t.priority),
            ]
        )

    out_edges = [
        [
            task_index[e.src],
            task_index[e.dst],
            e.kind.value,
            region_index[e.region.key],
        ]
        for e in edges
    ]
    return {
        "version": 1,
        "tasks": out_tasks,
        "regions": region_sizes,
        "edges": out_edges,
    }


def graph_fingerprint(graph: DependenceGraph) -> str:
    """SHA-256 digest (``gfp:`` prefixed, 16 hex chars) of a graph."""
    canonical = canonical_graph_dict(graph._tasks.values(), graph.edges)
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return "gfp:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class GraphCapture:
    """A stub runtime that records submissions without simulating.

    Exposes exactly the surface a master-thread body touches — ``submit``
    via the ``@task`` call protocol, plus no-op ``taskwait`` variants —
    and feeds every task through the real dependence analysis.  Use as a
    context manager, like the runtime it impersonates::

        cap = GraphCapture()
        with cap:
            app.master(cap)
        print(cap.fingerprint())
    """

    def __init__(self) -> None:
        self.graph = DependenceGraph()
        self.tasks: list[TaskInstance] = []

    # -- the surface @task and master bodies use -----------------------
    def submit(self, t: TaskInstance) -> None:
        self.tasks.append(t)
        self.graph.add_task(t)

    def taskwait(self, *, noflush: bool = False) -> None:
        """No-op: capture has no clock to advance."""

    def taskwait_on(self, *data: Any, noflush: bool = False) -> None:
        """No-op: capture has no clock to advance."""

    def __enter__(self) -> "GraphCapture":
        context.push_runtime(self)  # type: ignore[arg-type]
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        context.pop_runtime(self)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        return graph_fingerprint(self.graph)


def app_graph_fingerprint(app: "Application") -> str:
    """Fingerprint of the graph an application's master body submits.

    The application instance must be freshly constructed (masters may
    consume instance state); the capture does not simulate, so this is
    cheap relative to a run.
    """
    cap = GraphCapture()
    with cap:
        app.master(cap)  # type: ignore[arg-type]
    return cap.fingerprint()


__all__ = [
    "GraphCapture",
    "app_graph_fingerprint",
    "canonical_graph_dict",
    "graph_fingerprint",
]
