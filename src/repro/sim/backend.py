"""Event-core backend selection (``REPRO_SIM_BACKEND=pure|compiled|auto``).

The simulator's inner loop — push/pop on the event heap — has two
implementations:

``pure``
    :class:`repro.sim.engine.EventHeap`, the reference implementation.
    Always available; the golden-trace suite treats it as ground truth.

``compiled``
    A hand-written CPython extension (``sim/_evcore.c``) holding the
    heap in raw ``double``/``int64`` arrays, built on demand with the
    system C compiler (see :mod:`repro.sim.evcore_build`).  Selecting it
    when no compiler/headers are available raises at startup — silent
    fallback would make "I benchmarked the compiled backend" lies easy.

``auto``
    ``compiled`` when it builds/loads, else ``pure``.

The default is ``pure``: determinism bugs in an optional C path must
never be able to reach users who did not opt in.  Both backends are
pinned byte-identical by ``tests/sim/test_trace_golden.py``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

_VALID = ("pure", "compiled", "auto")

#: resolved backend name ("pure" or "compiled"); None until first use
_resolved: Optional[str] = None
_factory: Optional[Callable[[], object]] = None
_event_cls: Optional[type] = None


def requested_backend() -> str:
    """The raw ``REPRO_SIM_BACKEND`` request (default ``pure``)."""
    name = os.environ.get("REPRO_SIM_BACKEND", "pure").strip().lower() or "pure"
    if name not in _VALID:
        raise ValueError(
            f"REPRO_SIM_BACKEND={name!r} is not one of {'/'.join(_VALID)}"
        )
    return name


def _load_compiled() -> "tuple[Callable[[], object], type]":
    from repro.sim.evcore_build import load_evcore

    mod = load_evcore()
    return mod.EventHeap, mod.Event


def _load_pure() -> "tuple[Callable[[], object], type]":
    from repro.sim.engine import Event, EventHeap

    return EventHeap, Event


def resolve() -> str:
    """Resolve (and cache) the backend for this process."""
    global _resolved, _factory, _event_cls
    if _resolved is not None:
        return _resolved
    name = requested_backend()
    if name == "pure":
        _resolved, (_factory, _event_cls) = "pure", _load_pure()
    elif name == "compiled":
        _resolved, (_factory, _event_cls) = "compiled", _load_compiled()
    else:  # auto
        try:
            _resolved, (_factory, _event_cls) = "compiled", _load_compiled()
        except Exception:
            _resolved, (_factory, _event_cls) = "pure", _load_pure()
    return _resolved


def heap_factory() -> Callable[[], object]:
    """Constructor for the selected backend's event heap."""
    resolve()
    assert _factory is not None
    return _factory


def event_factory() -> type:
    """Constructor for the selected backend's event objects.

    The compiled backend pairs its heap with a C ``Event`` type so the
    push fast path reads struct fields instead of attributes; both types
    expose the identical attribute/compare/cancel protocol.
    """
    resolve()
    assert _event_cls is not None
    return _event_cls


def _reset_for_tests() -> None:
    """Forget the cached resolution (tests flip REPRO_SIM_BACKEND)."""
    global _resolved, _factory, _event_cls
    _resolved = None
    _factory = None
    _event_cls = None
