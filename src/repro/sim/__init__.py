"""Discrete-event simulation substrate.

This package models the hardware the paper ran on — a MinoTauro node with
two 6-core Intel Xeon E5649 CPUs and two NVIDIA M2090 GPUs — as a
deterministic discrete-event simulation:

* :mod:`repro.sim.engine` — the event queue and simulated clock,
* :mod:`repro.sim.devices` — compute devices (SMP cores, GPUs) with
  calibrated kernel cost models,
* :mod:`repro.sim.perfmodel` — the cost models themselves,
* :mod:`repro.sim.topology` — machine descriptions (devices + links),
* :mod:`repro.sim.trace` — execution traces for post-mortem analysis.

The simulation is deterministic for a given seed; the runtime layers on
top of it never consult wall-clock time.
"""

from repro.sim.engine import Event, EventKind, SimEngine
from repro.sim.devices import Device, DeviceKind, GPUDevice, SMPDevice
from repro.sim.perfmodel import (
    KernelCostModel,
    PerfModel,
    TableCostModel,
    AffineBytesCostModel,
    GemmCostModel,
)
from repro.sim.perturb import DriftCostModel, PhaseShiftCostModel, SpikeCostModel
from repro.sim.calibrate import (
    fit_affine_bytes,
    fit_fixed,
    fit_gemm,
    table_model_from_profile,
)
from repro.sim.topology import Link, Machine, MachineSpec, cluster_machine, minotauro_node
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Event",
    "EventKind",
    "SimEngine",
    "Device",
    "DeviceKind",
    "GPUDevice",
    "SMPDevice",
    "KernelCostModel",
    "PerfModel",
    "TableCostModel",
    "AffineBytesCostModel",
    "GemmCostModel",
    "PhaseShiftCostModel",
    "SpikeCostModel",
    "DriftCostModel",
    "fit_fixed",
    "fit_affine_bytes",
    "fit_gemm",
    "table_model_from_profile",
    "Link",
    "Machine",
    "MachineSpec",
    "cluster_machine",
    "minotauro_node",
    "Trace",
    "TraceRecord",
]
