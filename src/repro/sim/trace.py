"""Execution traces.

Nanos++ emits Paraver traces; we keep a light-weight equivalent: a list
of ``(start, end, worker, category, label)`` records that tests assert
on (no overlap per worker, dependence ordering) and that examples render
as ASCII Gantt charts.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Iterator, Optional


class TraceRecord:
    """One closed interval of activity on one worker or DMA channel.

    A ``__slots__`` value class (traces at cluster scale hold tens of
    thousands of records, appended on the hot path): worker/category/
    label strings are interned so the per-worker and per-category
    filters compare by pointer and duplicated names share storage.
    Equality and ordering match the frozen-dataclass semantics this
    class replaced — field-by-field tuples.
    """

    __slots__ = ("start", "end", "worker", "category", "label", "meta")

    def __init__(
        self,
        start: float,
        end: float,
        worker: str,
        category: str,  # "task" | "transfer" | "idle" ...
        label: str,
        meta: tuple = (),
    ) -> None:
        if end < start:
            raise ValueError(
                f"trace record ends before it starts: "
                f"({start}, {end}, {worker!r}, {category!r}, {label!r})"
            )
        self.start = start
        self.end = end
        self.worker = _intern(worker)
        self.category = _intern(category)
        self.label = _intern(label)
        self.meta = meta

    def _astuple(self) -> tuple:
        return (self.start, self.end, self.worker, self.category, self.label, self.meta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"TraceRecord(start={self.start!r}, end={self.end!r}, "
            f"worker={self.worker!r}, category={self.category!r}, "
            f"label={self.label!r}, meta={self.meta!r})"
        )

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Append-only collection of :class:`TraceRecord`.

    Records are stored in append order; :meth:`sorted` returns them by
    start time (stable).  Traces compare equal record-for-record, which
    is how determinism tests verify that two seeded runs are identical.
    """

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def add(
        self,
        start: float,
        end: float,
        worker: str,
        category: str,
        label: str,
        meta: tuple = (),
    ) -> TraceRecord:
        rec = TraceRecord(start, end, worker, category, label, meta)
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._records == other._records

    def sorted(self) -> list[TraceRecord]:
        return sorted(self._records, key=lambda r: (r.start, r.end, r.worker))

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a versioned JSON string (see
        :mod:`repro.runtime.serialize`); floats round-trip exactly, so
        two equal traces serialize to the same bytes and vice versa."""
        import json

        from repro.runtime.serialize import trace_to_dict

        return json.dumps(trace_to_dict(self), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "Trace":
        """Rebuild a trace serialized with :meth:`to_json`."""
        import json

        from repro.runtime.serialize import trace_from_dict

        return trace_from_dict(json.loads(payload))

    def for_worker(self, worker: str) -> list[TraceRecord]:
        return [r for r in self._records if r.worker == worker]

    def by_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self._records if r.category == category]

    def workers(self) -> list[str]:
        return sorted({r.worker for r in self._records})

    def makespan(self) -> float:
        """Latest end time across all records (0.0 for an empty trace)."""
        return max((r.end for r in self._records), default=0.0)

    # ------------------------------------------------------------------
    def busy_time(self, worker: str, category: Optional[str] = "task") -> float:
        """Total recorded time on ``worker`` (optionally one category)."""
        return sum(
            r.duration
            for r in self._records
            if r.worker == worker and (category is None or r.category == category)
        )

    def overlap_pairs(
        self, category: str = "task"
    ) -> list[tuple[TraceRecord, TraceRecord]]:
        """All pairs of same-worker records of ``category`` that overlap
        in time.  A worker is a serial resource, so a non-empty result
        means the trace is broken; the sanitizer reports each pair as
        ``SAN-T001``."""
        out: list[tuple[TraceRecord, TraceRecord]] = []
        for worker in self.workers():
            recs = sorted(
                (r for r in self._records if r.worker == worker and r.category == category),
                key=lambda r: (r.start, r.end),
            )
            for a, b in zip(recs, recs[1:], strict=False):
                if b.start < a.end - 1e-12:
                    out.append((a, b))
        return out

    def check_no_overlap(self, category: str = "task") -> None:
        """Raise :class:`AssertionError` if any worker runs two records
        of ``category`` at once — a worker is a serial resource."""
        pairs = self.overlap_pairs(category)
        if pairs:
            a, b = pairs[0]
            raise AssertionError(
                f"overlapping {category} records on {a.worker}: {a} overlaps {b}"
            )

    # ------------------------------------------------------------------
    def gantt(self, width: int = 80, category: str = "task") -> str:
        """Render an ASCII Gantt chart, one row per worker."""
        span = self.makespan()
        if span <= 0:
            return "(empty trace)"
        lines = []
        for worker in self.workers():
            row = [" "] * width
            for r in self._records:
                if r.worker != worker or r.category != category:
                    continue
                i0 = min(width - 1, int(r.start / span * width))
                i1 = min(width - 1, max(i0, int(r.end / span * width) - 1))
                ch = (r.label[:1] or "#") if r.label else "#"
                for i in range(i0, i1 + 1):
                    row[i] = ch
            lines.append(f"{worker:>8} |{''.join(row)}|")
        lines.append(f"{'':>8}  0{'':{width - 2}}{span:.3f}s")
        return "\n".join(lines)
