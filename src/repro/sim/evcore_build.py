"""On-demand build of the compiled event core (``sim/_evcore.c``).

The repository ships no prebuilt binaries and must not depend on build
backends that may be absent (Cython, mypyc, setuptools plugins).  The
compiled backend is therefore a single hand-written C file compiled
straight with the system C compiler the first time it is requested:

* artifacts land in a per-user cache directory keyed by a hash of the
  C source and the CPython version tag, so editing ``_evcore.c`` or
  switching interpreters rebuilds automatically and CI can cache the
  directory between runs;
* the build is atomic (compile to a unique temp name, ``os.replace``)
  so concurrent test workers never load a half-written extension;
* failure raises :class:`EvcoreBuildError` carrying the compiler's
  stderr — the backend selector turns that into a hard startup error
  for ``REPRO_SIM_BACKEND=compiled`` and a silent fallback for ``auto``.

``python -m repro.sim --build`` is the human/CI entry point.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sys
import sysconfig
from importlib.machinery import ExtensionFileLoader
from types import ModuleType

__all__ = ["EvcoreBuildError", "build_evcore", "load_evcore", "cache_dir"]

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_evcore.c")


class EvcoreBuildError(RuntimeError):
    """The compiled event core could not be built or loaded."""


def cache_dir() -> str:
    """Directory holding built extension artifacts.

    Overridable with ``REPRO_EVCORE_CACHE`` (CI points this at its
    cross-run cache); defaults to ``$XDG_CACHE_HOME/repro-evcore``.
    """
    override = os.environ.get("REPRO_EVCORE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-evcore")


def _artifact_path() -> str:
    with open(_SOURCE, "rb") as fh:
        src_hash = hashlib.sha256(fh.read()).hexdigest()[:16]
    tag = f"cp{sys.version_info[0]}{sys.version_info[1]}"
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(cache_dir(), f"_evcore-{src_hash}-{tag}{suffix}")


def _compiler() -> list[str]:
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    # sysconfig's CC may carry flags ("gcc -pthread"); keep them
    return cc.split()


def build_evcore(verbose: bool = False) -> str:
    """Build (if needed) and return the path to the extension binary."""
    if not os.path.exists(_SOURCE):
        raise EvcoreBuildError(f"missing C source: {_SOURCE}")
    out = _artifact_path()
    if os.path.exists(out):
        return out
    os.makedirs(cache_dir(), exist_ok=True)
    include = sysconfig.get_paths()["include"]
    if not os.path.exists(os.path.join(include, "Python.h")):
        raise EvcoreBuildError(
            f"Python.h not found under {include}; install the CPython "
            "headers or use REPRO_SIM_BACKEND=pure"
        )
    tmp = f"{out}.tmp.{os.getpid()}"
    cmd = _compiler() + [
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{include}",
        _SOURCE,
        "-o",
        tmp,
    ]
    if verbose:
        print("+", " ".join(cmd), file=sys.stderr)
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise EvcoreBuildError(f"compiler invocation failed: {exc}") from exc
    if proc.returncode != 0:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise EvcoreBuildError(
            f"C compiler exited with {proc.returncode}:\n{proc.stderr.strip()}"
        )
    os.replace(tmp, out)
    return out


def load_evcore() -> ModuleType:
    """Build if needed, then import and return the ``_evcore`` module."""
    path = build_evcore()
    name = "repro.sim._evcore"
    cached = sys.modules.get(name)
    if cached is not None and getattr(cached, "__file__", None) == path:
        return cached
    loader = ExtensionFileLoader(name, path)
    spec = importlib.util.spec_from_file_location(name, path, loader=loader)
    if spec is None:  # pragma: no cover - spec construction is static
        raise EvcoreBuildError(f"could not create import spec for {path}")
    mod = importlib.util.module_from_spec(spec)
    try:
        loader.exec_module(mod)
    except ImportError as exc:  # pragma: no cover - ABI mismatch etc.
        raise EvcoreBuildError(f"built extension failed to load: {exc}") from exc
    sys.modules[name] = mod
    return mod
