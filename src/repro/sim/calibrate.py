"""Cost-model calibration from measured samples.

The simulated machine's fidelity hangs on its cost models.  This module
fits the standard model shapes to measurement samples — pairs of
(work description, observed seconds) — so machines can be built from
real profiling data (or from a previous simulated run's profile table,
closing the same loop as the §VII hints file but on the *machine* side).

All fits are least squares with physical constraints (non-negative
overheads, positive rates); they only need NumPy.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.profile import TaskVersionSet
    from repro.sim.topology import Machine

from repro.sim.perfmodel import (
    AffineBytesCostModel,
    FixedCostModel,
    GemmCostModel,
    TableCostModel,
)


def machine_fingerprint(machine: "Machine") -> str:
    """Deterministic digest of a machine's device calibration.

    Learned execution-time profiles are only transferable between runs
    whose devices behave identically, so the profile store tags its
    contents with this fingerprint and invalidates them when it changes.
    The digest covers the machine name, every device's name / kind /
    memory space / noise level and the repr of each registered kernel
    cost model (all models are frozen dataclasses with stable reprs).
    The RNG seed is deliberately excluded: two runs that differ only in
    the jitter sample sequence draw from the same distribution, so their
    profiles remain comparable.
    """
    parts = [f"machine={machine.name}"]
    for d in machine.devices:
        parts.append(
            f"device={d.name}|{d.kind.value}|{d.memory_space}"
            f"|noise_cv={d.perf.noise_cv!r}"
        )
        for kernel in d.perf.kernels():
            parts.append(f"  kernel={kernel}:{d.perf.model(kernel)!r}")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return f"fp:{digest[:16]}"


def _check_samples(samples: Sequence[tuple[float, float]], minimum: int) -> None:
    if len(samples) < minimum:
        raise ValueError(f"need at least {minimum} samples, got {len(samples)}")
    for x, t in samples:
        if t < 0:
            raise ValueError(f"negative duration sample: {t}")


def fit_fixed(durations: Iterable[float]) -> FixedCostModel:
    """Fit a constant-cost model: the sample mean."""
    xs = np.asarray(list(durations), dtype=float)
    if xs.size == 0:
        raise ValueError("need at least 1 sample")
    if np.any(xs < 0):
        raise ValueError("negative duration sample")
    return FixedCostModel(float(xs.mean()))


def fit_affine_bytes(samples: Sequence[tuple[int, float]]) -> AffineBytesCostModel:
    """Fit ``t = base + bytes / bandwidth`` to (bytes, seconds) samples.

    The slope is clamped positive (a kernel cannot get faster with more
    data under this model); the base is clamped non-negative.
    """
    _check_samples(samples, 2)
    nbytes = np.array([s[0] for s in samples], dtype=float)
    times = np.array([s[1] for s in samples], dtype=float)
    if np.ptp(nbytes) == 0:
        raise ValueError("samples must span more than one size to fit a slope")
    A = np.vstack([np.ones_like(nbytes), nbytes]).T
    (base, slope), *_ = np.linalg.lstsq(A, times, rcond=None)
    base = max(float(base), 0.0)
    slope = max(float(slope), 1e-18)
    return AffineBytesCostModel(base=base, bandwidth=1.0 / slope)


def fit_gemm(samples: Sequence[tuple[int, float]]) -> GemmCostModel:
    """Fit ``t = overhead + 2 n^3 / rate`` to (tile dimension, seconds)."""
    _check_samples(samples, 2)
    ns = np.array([s[0] for s in samples], dtype=float)
    times = np.array([s[1] for s in samples], dtype=float)
    flops = 2.0 * ns**3
    if np.ptp(flops) == 0:
        raise ValueError("samples must span more than one tile size")
    A = np.vstack([np.ones_like(flops), flops]).T
    (overhead, slope), *_ = np.linalg.lstsq(A, times, rcond=None)
    overhead = max(float(overhead), 0.0)
    slope = max(float(slope), 1e-21)
    return GemmCostModel(gflops=1.0 / slope / 1e9, launch_overhead=overhead)


def table_model_from_profile(
    vset: "TaskVersionSet", version_name: str
) -> TableCostModel:
    """Replay a learned profile as a size-keyed cost model.

    Takes a :class:`~repro.core.profile.TaskVersionSet` (e.g. loaded
    from a §VII hints file) and builds a :class:`TableCostModel` mapping
    each observed data-set size to that version's mean time — a machine
    description distilled from execution history.
    """
    table: dict[int, float] = {}
    for grp in vset.groups():
        mean = grp.mean_time(version_name)
        if mean is not None:
            table[int(grp.representative_bytes)] = float(mean)
    if not table:
        raise ValueError(
            f"profile has no executions of version {version_name!r} to replay"
        )
    return TableCostModel(table)
