"""Machine descriptions: devices plus the links between memory spaces.

The reference machine is one node of the MinoTauro cluster used in the
paper's evaluation: two Intel Xeon E5649 6-core CPUs (12 cores, 24 GB,
one shared host memory space) and two NVIDIA Tesla M2090 GPUs (6 GB
each, private memory spaces) on PCIe 2.0.

Calibration
-----------
The constants below are chosen so that the *relationships* the paper
reports hold on the simulated machine:

* one SMP core sustains ~5 GFLOP/s on dgemm while one GPU sustains
  ~305 GFLOP/s with CUBLAS — the paper's "SMP task duration is about 60
  times the GPU task duration" for 1024x1024 double tiles;
* one GPU is ~45% of node peak, one core <1% (paper §V-B1);
* PCIe 2.0 x16 moves ~6 GB/s with ~15 us latency; peer-to-peer GPU
  copies run slightly slower.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.sim.devices import Device, DeviceKind, GPUDevice, SMPDevice
from repro.sim.perfmodel import KernelCostModel, PerfModel

HOST_SPACE = "host"

#: Calibrated sustained rates (GFLOP/s) and bandwidths (bytes/s).
SMP_DGEMM_GFLOPS = 5.1
GPU_CUBLAS_DGEMM_GFLOPS = 305.0
GPU_HANDCODED_DGEMM_GFLOPS = 150.0
PCIE_BANDWIDTH = 6.0e9
PCIE_LATENCY = 15e-6
P2P_BANDWIDTH = 5.0e9
P2P_LATENCY = 20e-6


@dataclass(frozen=True)
class Link:
    """A directed link between two memory spaces.

    ``transfer_time`` is the classic latency + size/bandwidth model.
    ``channels`` models parallel DMA engines on the link: up to that
    many transfers proceed concurrently, each at full link bandwidth
    (engine-limited, not wire-limited — the Fermi copy-engine model);
    further transfers queue on the earliest-free channel.

    ``group`` optionally names a *shared channel group*: links carrying
    the same group contend for one pool of channels instead of each
    owning their own.  Cluster machines use this to model a node's NIC —
    all network links leaving one host share the NIC's egress engines,
    so fanning out to many destinations does not multiply bandwidth.
    """

    src: str
    dst: str
    bandwidth: float
    latency: float = 0.0
    channels: int = 1
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")
        if self.src == self.dst:
            raise ValueError("a link must connect two distinct memory spaces")
        if self.channels < 1:
            raise ValueError("a link needs at least one channel")

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class MachineSpec:
    """Parameters for building a simulated node.

    ``n_smp`` counts SMP *worker* cores (the x-axis of the paper's
    plots); ``n_gpus`` counts GPUs.  ``noise_cv`` adds deterministic
    per-device duration jitter so the learning scheduler has something
    real to average over.
    """

    n_smp: int = 12
    n_gpus: int = 2
    gpu_memory_bytes: int = 6 * 1024**3
    pcie_bandwidth: float = PCIE_BANDWIDTH
    pcie_latency: float = PCIE_LATENCY
    p2p_bandwidth: float = P2P_BANDWIDTH
    p2p_latency: float = P2P_LATENCY
    noise_cv: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_smp < 0 or self.n_gpus < 0:
            raise ValueError("device counts must be non-negative")
        if self.n_smp == 0 and self.n_gpus == 0:
            raise ValueError("a machine needs at least one device")


@dataclass(frozen=True)
class ClusterLayout:
    """Which node of a cluster machine owns each device and memory space.

    Built by :func:`cluster_machine`; :meth:`Machine.cluster_layout`
    synthesizes a trivial single-node layout for machines that were not
    built as clusters, so node-aware code works uniformly.
    """

    node_of_space: Mapping[str, int]
    node_of_device: Mapping[str, int]
    host_of_node: Mapping[int, str] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.host_of_node)

    def nodes(self) -> list[int]:
        return sorted(self.host_of_node)

    def host_of_space(self, space: str) -> Optional[str]:
        """The host memory space of the node owning ``space`` (or None)."""
        node = self.node_of_space.get(space)
        if node is None:
            return None
        return self.host_of_node.get(node)


class Machine:
    """A set of devices plus the link matrix between their memory spaces."""

    def __init__(
        self,
        name: str,
        devices: Iterable[Device],
        links: Iterable[Link],
        *,
        layout: Optional[ClusterLayout] = None,
    ) -> None:
        self.name = name
        self.layout = layout
        #: build provenance (factory name, args, seed) recorded by the
        #: machine factories; the scheduler service uses it to rebuild
        #: an equivalent machine from a submission spec.  ``None`` for
        #: hand-assembled machines (they are not service-routable).
        self.provenance: Optional[dict] = None
        self.devices: list[Device] = list(devices)
        if not self.devices:
            raise ValueError("a machine needs at least one device")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names: {names}")
        self._links: dict[tuple[str, str], Link] = {}
        for link in links:
            key = (link.src, link.dst)
            if key in self._links:
                raise ValueError(f"duplicate link {key}")
            self._links[key] = link
        self._routes: dict[tuple[str, str], list[Link]] = {}

    # ------------------------------------------------------------------
    def device(self, name: str) -> Device:
        for d in self.devices:
            if d.name == name:
                return d
        raise KeyError(f"no device named {name!r}")

    def devices_of_kind(self, kind: "str | DeviceKind") -> list[Device]:
        kind = DeviceKind.parse(kind)
        return [d for d in self.devices if d.kind is kind]

    def spaces(self) -> list[str]:
        """All memory-space identifiers, host space first if present."""
        seen: dict[str, None] = {}
        for d in self.devices:
            seen.setdefault(d.memory_space, None)
        out = sorted(seen, key=lambda s: (s != HOST_SPACE, s))
        return out

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link from {src!r} to {dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        return self.link(src, dst).transfer_time(nbytes)

    # ------------------------------------------------------------------
    # Routing (multi-hop transfers, for cluster machines whose GPUs have
    # no direct link to a remote node's memory)
    # ------------------------------------------------------------------
    def route(self, src: str, dst: str) -> list[Link]:
        """Shortest-hop path of links from ``src`` to ``dst``.

        Single-node machines always route in one hop; on a cluster a
        GPU-to-remote-GPU copy stages through the two host memories,
        exactly like OmpSs@cluster's data movement.  Paths are cached.
        Raises :class:`KeyError` when no path exists.
        """
        if src == dst:
            raise ValueError("route with identical endpoints")
        cached = self._routes.get((src, dst))
        if cached is not None:
            return cached
        direct = self._links.get((src, dst))
        if direct is not None:
            self._routes[(src, dst)] = [direct]
            return [direct]
        # BFS over the link graph
        prev: dict[str, Link] = {}
        frontier = [src]
        seen = {src}
        while frontier and dst not in seen:
            nxt: list[str] = []
            for node in frontier:
                for (a, b), link in self._links.items():
                    if a == node and b not in seen:
                        seen.add(b)
                        prev[b] = link
                        nxt.append(b)
            frontier = nxt
        if dst not in prev:
            raise KeyError(f"no route from {src!r} to {dst!r}")
        path: list[Link] = []
        node = dst
        while node != src:
            link = prev[node]
            path.append(link)
            node = link.src
        path.reverse()
        self._routes[(src, dst)] = path
        return path

    def path_transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Wire time of a (possibly multi-hop) copy, ignoring queueing."""
        return sum(link.transfer_time(nbytes) for link in self.route(src, dst))

    def cluster_layout(self) -> ClusterLayout:
        """The node layout of this machine (single-node if not a cluster)."""
        if self.layout is not None:
            return self.layout
        node_of_space = {s: 0 for s in self.spaces()}
        node_of_device = {d.name: 0 for d in self.devices}
        host = HOST_SPACE if HOST_SPACE in node_of_space else self.spaces()[0]
        return ClusterLayout(node_of_space, node_of_device, {0: host})

    # ------------------------------------------------------------------
    def register_kernel_for_kind(
        self, kind: "str | DeviceKind", kernel: str, model: KernelCostModel
    ) -> None:
        """Register a cost model on every device of the given kind.

        Applications use this to teach the machine what their kernels
        cost per architecture before a run.
        """
        targets = self.devices_of_kind(kind)
        if not targets:
            raise ValueError(f"machine {self.name!r} has no {DeviceKind.parse(kind).value} devices")
        for d in targets:
            d.register_kernel(kernel, model)

    def __repr__(self) -> str:
        kinds: dict[str, int] = {}
        for d in self.devices:
            kinds[d.kind.value] = kinds.get(d.kind.value, 0) + 1
        desc = ", ".join(f"{n}x {k}" for k, n in sorted(kinds.items()))
        return f"Machine({self.name!r}: {desc})"


#: Default interconnect rates for cluster machines (QDR InfiniBand-ish).
NETWORK_BANDWIDTH = 3.0e9
NETWORK_LATENCY = 2e-6


def cluster_machine(
    n_nodes: int = 2,
    smp_per_node: int = 6,
    gpus_per_node: int = 2,
    *,
    network_bandwidth: float = NETWORK_BANDWIDTH,
    network_latency: float = NETWORK_LATENCY,
    nic_channels: int = 1,
    gpu_memory_bytes: int = 6 * 1024**3,
    noise_cv: float = 0.03,
    seed: int = 0,
) -> Machine:
    """A cluster of MinoTauro-like nodes (the OmpSs@cluster setting).

    Node 0's host memory is the home space (``"host"``, where the
    application's data lives); remote nodes contribute their own host
    spaces (``"node1"``, ...) and GPUs.  Intra-node links are PCIe;
    host-to-host links model the interconnect.  A copy between two GPUs
    on different nodes has no direct link and is *routed* through both
    host memories — three hops, each accounted separately.

    Every network link leaving a host shares that host's NIC: the
    ``nic:<host>`` channel group gives each node ``nic_channels`` egress
    engines *total*, not per destination, so a node pushing data to many
    peers serialises on its own NIC exactly like a real cluster.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be at least 1")
    devices: list[Device] = []
    links: list[Link] = []
    host_spaces: list[str] = []
    node_of_space: dict[str, int] = {}
    node_of_device: dict[str, int] = {}
    host_of_node: dict[int, str] = {}
    for node in range(n_nodes):
        host = HOST_SPACE if node == 0 else f"node{node}"
        host_spaces.append(host)
        node_of_space[host] = node
        host_of_node[node] = host
        for i in range(smp_per_node):
            name = f"n{node}smp{i}"
            node_of_device[name] = node
            devices.append(
                SMPDevice(
                    name,
                    PerfModel(noise_cv=noise_cv, seed=seed * 10000 + node * 100 + i),
                    memory_space=host,
                )
            )
        for i in range(gpus_per_node):
            space = f"{host}.gpu{i}" if node else f"gpu{i}"
            name = f"n{node}gpu{i}"
            node_of_space[space] = node
            node_of_device[name] = node
            devices.append(
                GPUDevice(
                    name,
                    PerfModel(
                        noise_cv=noise_cv, seed=seed * 10000 + node * 100 + 50 + i
                    ),
                    memory_space=space,
                    memory_bytes=gpu_memory_bytes,
                )
            )
            links.append(Link(host, space, PCIE_BANDWIDTH, PCIE_LATENCY))
            links.append(Link(space, host, PCIE_BANDWIDTH, PCIE_LATENCY))
        # same-node GPU peer links
        spaces = [
            (f"{host}.gpu{i}" if node else f"gpu{i}") for i in range(gpus_per_node)
        ]
        for a in spaces:
            for b in spaces:
                if a != b:
                    links.append(Link(a, b, P2P_BANDWIDTH, P2P_LATENCY))
    for a in host_spaces:
        for b in host_spaces:
            if a != b:
                links.append(
                    Link(
                        a,
                        b,
                        network_bandwidth,
                        network_latency,
                        channels=nic_channels,
                        group=f"nic:{a}",
                    )
                )
    name = f"cluster[{n_nodes}x({smp_per_node}smp+{gpus_per_node}gpu)]"
    layout = ClusterLayout(node_of_space, node_of_device, host_of_node)
    machine = Machine(name, devices, links, layout=layout)
    machine.provenance = {
        "factory": "cluster",
        "args": {
            "n_nodes": n_nodes,
            "smp_per_node": smp_per_node,
            "gpus_per_node": gpus_per_node,
            "network_bandwidth": network_bandwidth,
            "network_latency": network_latency,
            "nic_channels": nic_channels,
            "gpu_memory_bytes": gpu_memory_bytes,
            "noise_cv": noise_cv,
        },
        "seed": seed,
    }
    return machine


def minotauro_node(
    n_smp: int = 12,
    n_gpus: int = 2,
    *,
    noise_cv: float = 0.03,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
) -> Machine:
    """Build a simulated MinoTauro node.

    Each SMP core and each GPU becomes one device (one OmpSs worker will
    be attached to each).  All SMP cores share the ``host`` memory
    space; GPU ``i`` owns space ``gpu<i>``.  Links: host<->each GPU at
    PCIe rates plus GPU<->GPU peer links.
    """
    if spec is None:
        spec = MachineSpec(n_smp=n_smp, n_gpus=n_gpus, noise_cv=noise_cv, seed=seed)

    devices: list[Device] = []
    for i in range(spec.n_smp):
        devices.append(
            SMPDevice(f"smp{i}", PerfModel(noise_cv=spec.noise_cv, seed=spec.seed * 1000 + i))
        )
    for i in range(spec.n_gpus):
        devices.append(
            GPUDevice(
                f"gpu{i}",
                PerfModel(noise_cv=spec.noise_cv, seed=spec.seed * 1000 + 500 + i),
                memory_space=f"gpu{i}",
                memory_bytes=spec.gpu_memory_bytes,
            )
        )

    links: list[Link] = []
    gpu_spaces = [f"gpu{i}" for i in range(spec.n_gpus)]
    for g in gpu_spaces:
        links.append(Link(HOST_SPACE, g, spec.pcie_bandwidth, spec.pcie_latency))
        links.append(Link(g, HOST_SPACE, spec.pcie_bandwidth, spec.pcie_latency))
    for a in gpu_spaces:
        for b in gpu_spaces:
            if a != b:
                links.append(Link(a, b, spec.p2p_bandwidth, spec.p2p_latency))

    machine = Machine(f"minotauro[{spec.n_smp}smp+{spec.n_gpus}gpu]", devices, links)
    args = dataclasses.asdict(spec)
    machine.provenance = {
        "factory": "minotauro",
        "args": {k: v for k, v in args.items() if k != "seed"},
        "seed": spec.seed,
    }
    return machine
