"""Deterministic discrete-event simulation engine.

The engine is a priority queue of timestamped events plus a simulated
clock.  Everything above it (workers, transfer engines, the scheduler's
notion of "busy time") is driven by callbacks fired in timestamp order.

Determinism
-----------
Two runs with the same inputs must produce *identical* traces, so ties in
timestamps are broken by a monotonically increasing sequence number — the
insertion order — never by object identity or hash order.  No wall-clock
time is ever consulted.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional


class WallDeadlineExceededError(RuntimeError):
    """The engine's cooperative wall-clock deadline passed mid-run.

    Raised from :meth:`SimEngine.step` when :attr:`SimEngine.wall_deadline`
    is set and the host clock (``time.perf_counter``) moves past it.  The
    check is cooperative — sampled every
    :data:`WALL_DEADLINE_CHECK_EVERY` events, so a run overshoots its
    deadline by at most one check window — and costs one attribute test
    per event when no deadline is armed.
    """

    def __init__(self, deadline: float, now: float, events: int) -> None:
        super().__init__(
            f"simulation exceeded its wall-clock deadline by {now - deadline:.3f}s "
            f"after {events} events"
        )
        self.deadline = deadline
        self.overshoot = now - deadline


#: How many events elapse between wall-clock samples when a deadline is armed.
WALL_DEADLINE_CHECK_EVERY = 256


class EventKind(Enum):
    """Classification of simulation events, used for tracing and debugging."""

    GENERIC = "generic"
    TASK_START = "task-start"
    TASK_END = "task-end"
    TASK_FAIL = "task-fail"
    TRANSFER_START = "transfer-start"
    TRANSFER_END = "transfer-end"
    WORKER_WAKE = "worker-wake"
    WORKER_DOWN = "worker-down"
    RETRY = "retry"
    RUNTIME = "runtime"
    WATCHDOG = "watchdog"
    NOTIFY = "notify"
    STEAL = "steal"
    NODE_DOWN = "node-down"
    NODE_UP = "node-up"
    RETRANSMIT = "retransmit"


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` where ``seq`` is the insertion
    order; this makes the event queue fully deterministic.
    """

    time: float
    seq: int
    kind: EventKind
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimEngine:
    """Discrete-event simulation core.

    Usage::

        eng = SimEngine()
        eng.schedule(1.5, lambda: print("fires at t=1.5"))
        eng.run()
        assert eng.now == 1.5

    The engine may be driven either to completion (:meth:`run`) or event
    by event (:meth:`step`), and supports bounded runs (``until=``).
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running = False
        #: Absolute ``time.perf_counter`` deadline; ``None`` disables the
        #: cooperative check (see :class:`WallDeadlineExceededError`).
        self.wall_deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute simulated ``time``.

        ``time`` must not be in the past.  Returns the :class:`Event`,
        which the caller may later :meth:`Event.cancel`.
        """
        if math.isnan(time):
            raise ValueError("cannot schedule an event at NaN time")
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        ev = Event(time=time, seq=next(self._seq), kind=kind, callback=callback, label=label)
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback, kind=kind, label=label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], object],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        first: Optional[float] = None,
    ) -> "RecurringEvent":
        """Fire ``callback`` every ``interval`` simulated seconds.

        The first firing is ``first`` seconds from now (default
        ``interval``).  The callback may return ``False`` to stop the
        series; the returned :class:`RecurringEvent` handle also stops it
        via :meth:`RecurringEvent.cancel`.  Used by periodic services
        (profile-store checkpointing) that piggyback on the event loop.
        """
        if interval <= 0:
            raise ValueError(f"recurring interval must be positive, got {interval}")
        if first is not None and first < 0:
            raise ValueError(f"negative first delay: {first}")
        return RecurringEvent(self, interval, callback, kind=kind, label=label,
                              first=first)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        is exhausted.
        """
        if (
            self.wall_deadline is not None
            and self._events_processed % WALL_DEADLINE_CHECK_EVERY == 0
        ):
            now = _time.perf_counter()
            if now > self.wall_deadline:
                raise WallDeadlineExceededError(
                    self.wall_deadline, now, self._events_processed
                )
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self._now:  # pragma: no cover - defensive
                raise RuntimeError("event queue yielded an event in the past")
            self._now = ev.time
            self._events_processed += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            ``until``.  A bounded run always lands the clock exactly on
            ``until`` (unless it is already past it), even when the
            queue is empty or drains early.
        max_events:
            Safety valve; execute at most this many events, raising
            :class:`RuntimeError` if another would follow (catches
            accidental infinite loops).

        Returns the number of events executed by this call.
        """
        if self._running:
            raise RuntimeError("SimEngine.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"SimEngine exceeded max_events={max_events}; "
                        "likely an event loop that never terminates"
                    )
                if not self.step():
                    break
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return executed

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without executing it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    # ------------------------------------------------------------------
    # Introspection / reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimEngine(now={self._now:.6f}, pending={len(self._queue)}, "
            f"processed={self._events_processed})"
        )


class RecurringEvent:
    """A self-rescheduling event series on a :class:`SimEngine`.

    At most one underlying :class:`Event` is pending at a time; each
    firing schedules the next one ``interval`` later unless the callback
    returned ``False`` or :meth:`cancel` was called.  ``fired`` counts
    completed firings.
    """

    def __init__(
        self,
        engine: SimEngine,
        interval: float,
        callback: Callable[[], object],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        first: Optional[float] = None,
    ) -> None:
        self._engine = engine
        self.interval = interval
        self._callback = callback
        self._kind = kind
        self._label = label
        self.fired = 0
        self._active = True
        self._pending: Optional[Event] = None
        self._schedule_next(interval if first is None else first)

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        """Stop the series; the pending occurrence (if any) is cancelled."""
        self._active = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self, delay: float) -> None:
        self._pending = self._engine.schedule_after(
            delay, self._fire, kind=self._kind, label=self._label
        )

    def _fire(self) -> None:
        self._pending = None
        if not self._active:
            return
        keep = self._callback()
        self.fired += 1
        if keep is False or not self._active:
            self._active = False
            return
        self._schedule_next(self.interval)
